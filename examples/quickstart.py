#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 example, end to end.

Runs the three contributions on the 7-node DBLP subset the paper works its
equations on:

1. ObjectRank2 ranks "Data Cube" first for the query "OLAP" even though the
   paper does not contain the keyword;
2. the explaining subgraph shows *why* "Range Queries in OLAP Data Cubes"
   received its score;
3. marking that paper as relevant reformulates the query (expanded terms +
   adjusted authority transfer rates).

Usage:  python examples/quickstart.py
"""

from repro import ObjectRankSystem, SystemConfig
from repro.datasets import dblp_edge_order
from repro.datasets.figure1 import figure1_dataset
from repro.explain import to_text


def main() -> None:
    dataset = figure1_dataset()
    system = ObjectRankSystem(
        dataset.data_graph,
        dataset.transfer_schema,
        SystemConfig(top_k=7, radius=None, tolerance=1e-8),
    )

    print("=== 1. ObjectRank2 for Q=['OLAP'] ===")
    result = system.query("OLAP")
    for rank, (node_id, score) in enumerate(result.top, start=1):
        node = dataset.data_graph.node(node_id)
        title = node.attributes.get("title") or node.attributes.get("name", node_id)
        print(f"  {rank}. [{score:.4f}] {node.label}: {title[:60]}")
    print(f"  (converged in {result.iterations} iterations)")

    print("\n=== 2. Explaining the 'Range Queries' paper (v4) ===")
    explanation = system.explain("v4")
    print(to_text(explanation))

    print("\n=== 3. Feedback: mark v4 relevant and reformulate ===")
    outcome = system.feedback(["v4"])
    vector = outcome.reformulated.query_vector
    print("  reformulated query vector:")
    for term in vector.terms:
        print(f"    {term}: {vector.weight(term):.3f}")
    order = dblp_edge_order(dataset.schema)
    names = ["PP", "PPb", "PA", "AP", "CY", "YC", "YP", "PY"]
    before = dataset.transfer_schema.as_vector(order)
    after = outcome.reformulated.transfer_schema.as_vector(order)
    print("  transfer rates (before -> after):")
    for name, b, a in zip(names, before, after):
        print(f"    {name}: {b:.3f} -> {a:.3f}")
    print(f"  reformulated query ran in {outcome.result.iterations} iterations "
          f"(warm start)")


if __name__ == "__main__":
    main()
