#!/usr/bin/env python3
"""Training authority transfer rates from user feedback (Figure 11).

ObjectRank's transfer rates were set "manually by a domain expert on a trial
and error basis" [BHP04].  This example shows the paper's alternative: start
every rate at 0.3, let a (simulated) user mark relevant results, and let
structure-based reformulation learn the rates.  It prints the cosine
similarity to the expert ground truth after each feedback iteration, for
several values of the adjustment factor C_f — reproducing the rise-then-
overfit shape of Figure 11.

Usage:  python examples/train_transfer_rates.py
"""

from repro.bench import format_series
from repro.datasets import dblp_edge_order, load_dataset
from repro.feedback import train_transfer_rates


def main() -> None:
    dataset = load_dataset("dblp_tiny")
    order = dblp_edge_order(dataset.schema)
    queries = ["olap", "mining", "xml"]
    iterations = 5

    print("Training curves: cosine(UserVector, ObjVector) per iteration")
    print(f"  queries: {queries}, {iterations} feedback iterations each\n")
    curves = []
    for adjustment_factor in (0.1, 0.3, 0.5, 0.7, 0.9):
        curve = train_transfer_rates(
            dataset,
            queries,
            adjustment_factor=adjustment_factor,
            iterations=iterations,
            edge_order=order,
        )
        curves.append(curve)
        print(
            format_series(
                f"Cf={adjustment_factor}",
                range(len(curve.similarities)),
                curve.similarities,
            )
            + f"   (peak at iteration {curve.peak_iteration})"
        )

    best = max(curves, key=lambda c: max(c.similarities))
    print(f"\nBest run: Cf={best.adjustment_factor}")
    names = ["PP", "PPb", "PA", "AP", "CY", "YC", "YP", "PY"]
    learned = best.rate_vectors[best.peak_iteration]
    truth = dataset.ground_truth_rates.as_vector(order)
    print("  edge type | learned | expert")
    for name, l, t in zip(names, learned, truth):
        print(f"     {name:4s}   |  {l:.3f}  | {t:.3f}")


if __name__ == "__main__":
    main()
