#!/usr/bin/env python3
"""Implicit and active feedback: the paper's Section 5 side notes, working.

Two extensions the paper sketches but does not evaluate:

* "the user's click-through could be used to implicitly derive such
  markings" — we simulate a position-biased clicker browsing result pages,
  convert the click log into feedback objects, and reformulate from them;
* active feedback [SZ05] — instead of reformulating from whatever the user
  clicked, the system *chooses* diverse feedback candidates (by the edge-type
  profiles of their explaining subgraphs) to learn the transfer rates faster.

Usage:  python examples/implicit_feedback.py
"""

from repro.core import ObjectRankSystem, SystemConfig
from repro.datasets import dblp_edge_order, load_dataset
from repro.feedback import (
    ActiveFeedbackSelector,
    ClickLog,
    SimulatedClicker,
    SimulatedUser,
    cosine_similarity,
    implicit_feedback,
)
from repro.graph import AuthorityTransferSchemaGraph
from repro.query import SearchEngine


def main() -> None:
    dataset = load_dataset("dblp_tiny")
    flat = AuthorityTransferSchemaGraph(dataset.schema, default_rate=0.3)
    engine = SearchEngine(dataset.data_graph, flat)
    oracle = SimulatedUser(engine, dataset.ground_truth_rates, relevance_depth=40)
    order = dblp_edge_order(dataset.schema)
    truth = dataset.ground_truth_rates.as_vector(order)

    print("=== 1. Click-through as implicit feedback ===")
    system = ObjectRankSystem(
        dataset.data_graph, flat, SystemConfig.structure_only(top_k=10), engine=engine
    )
    result = system.query("olap")
    clicker = SimulatedClicker(oracle.relevant_set("olap"), seed=1)
    log = ClickLog()
    for browse_round in range(3):
        clicker.browse(result.hit_ids(), log)
    marks = implicit_feedback(log, threshold=0.3, limit=3)
    print(f"  clicks: {len(log.clicks)}, implied feedback objects: {marks}")
    outcome = system.feedback(marks)
    learned = system.current_rates.as_vector(order)
    print(f"  cosine to expert rates after one implicit round: "
          f"{cosine_similarity(learned, truth):.4f} "
          f"(untrained: {cosine_similarity(flat.as_vector(order), truth):.4f})")

    print("\n=== 2. Active feedback: choosing which marks to learn from ===")

    def train(strategy: str, rounds: int = 4) -> list[float]:
        system = ObjectRankSystem(
            dataset.data_graph, flat, SystemConfig.structure_only(top_k=10),
            engine=engine,
        )
        result = system.query("olap")
        seen: set[str] = set()
        curve = []
        for _ in range(rounds):
            presented = [n for n in result.ranked.ranking() if n not in seen][:10]
            seen.update(presented)
            marked = oracle.judge(presented, "olap")
            if strategy == "active" and len(marked) > 3:
                selector = ActiveFeedbackSelector()
                candidates = [(nid, system.explain(nid)) for nid in marked]
                marked = selector.select(candidates, 3)
            elif strategy == "top3":
                marked = marked[:3]
            result = system.feedback(marked).result
            curve.append(
                cosine_similarity(system.current_rates.as_vector(order), truth)
            )
        return curve

    top3 = train("top3")
    active = train("active")
    print(f"  top-3 marks per round:    {[round(s, 3) for s in top3]}")
    print(f"  diverse (active) marks:   {[round(s, 3) for s in active]}")
    print(
        "  Honest finding: for *rate learning* the top-ranked relevant papers"
        " beat profile-diverse\n  selections — diversity pulls in structural"
        " hubs (years, venues) whose flow profiles\n  drag the rates away"
        " from the citation-dominated ground truth.  Active selection is\n"
        "  a tool for exploring under-observed edge types, not a free win."
    )


if __name__ == "__main__":
    main()
