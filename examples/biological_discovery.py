#!/usr/bin/env python3
"""Biological discovery: explaining non-obvious query answers.

The paper motivates explanation with biological databases, "where objects
(e.g., a protein) with no obvious connection to the query (e.g., gene 'TNF')
are returned."  This example runs a disease-keyword query over a synthetic
Figure-4-style graph (Entrez Gene/Protein/Nucleotide, PubMed, OMIM), surfaces
the top *non-publication* entities — which typically do not contain the
keyword at all — and prints the explaining subgraph showing the chain of
authority that connected them to the query.

Usage:  python examples/biological_discovery.py [keyword]
        (default keyword: "cancer")
"""

import sys

from repro import ObjectRankSystem, SystemConfig
from repro.datasets import keyword_subset, load_dataset
from repro.explain import to_dot, to_text


def main() -> None:
    keyword = sys.argv[1] if len(sys.argv) > 1 else "cancer"
    print(f"Loading synthetic biological dataset (bio_tiny) ... keyword = {keyword!r}")
    dataset = load_dataset("bio_tiny")
    system = ObjectRankSystem(
        dataset.data_graph, dataset.transfer_schema, SystemConfig(top_k=30)
    )

    result = system.query(keyword)
    print(f"\nTop entities for {keyword!r} (ObjectRank2, {result.iterations} iters):")
    interesting = None
    shown = 0
    for node_id, score in result.top:
        node = dataset.data_graph.node(node_id)
        contains = keyword.lower() in node.text().lower()
        if shown < 8:
            name = node.attributes.get("title") or node.attributes.get(
                "symbol", node_id
            )
            marker = " " if contains else "!"  # ! = keyword NOT in the object
            print(f"  {marker} [{score:.4f}] {node.label}: {name[:58]}")
            shown += 1
        if interesting is None and not contains and node.label != "PubMed":
            interesting = node_id
    print("  ('!' marks objects that do not contain the keyword)")

    if interesting is None:
        print("\nEvery top entity contains the keyword; nothing to explain.")
        return

    node = dataset.data_graph.node(interesting)
    print(f"\nWhy is {node.label} {interesting!r} relevant to {keyword!r}?")
    explanation = system.explain(interesting)
    print(to_text(explanation, max_paths=5))

    dot_path = "biological_explanation.dot"
    with open(dot_path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(explanation, min_flow=0.0))
    print(f"\nGraphviz rendering written to {dot_path} (dot -Tpng -O {dot_path})")

    print(f"\nDeriving the focused '{keyword}' subset (the DS7cancer recipe):")
    subset = keyword_subset(dataset, keyword, hops=1, seed_labels=("PubMed",))
    print(
        f"  {subset.name}: {subset.num_nodes} nodes, {subset.num_edges} edges "
        f"(from {dataset.num_nodes}/{dataset.num_edges})"
    )


if __name__ == "__main__":
    main()
