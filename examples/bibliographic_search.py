#!/usr/bin/env python3
"""Bibliographic search with relevance feedback on a synthetic DBLP corpus.

Plays the paper's internal-survey scenario (Section 6.1.1): a researcher
searches a bibliographic database, marks relevant results, and the system
learns — both new query terms and better authority transfer rates — across
feedback iterations.  Precision is scored by a simulated expert whose hidden
relevance model uses the [BHP04] ground-truth rates.

Usage:  python examples/bibliographic_search.py [query ...]
        (default query: "olap warehouse")
"""

import sys

from repro import ObjectRankSystem, SystemConfig
from repro.datasets import load_dataset
from repro.feedback import ResidualCollection, SimulatedUser
from repro.graph import AuthorityTransferSchemaGraph
from repro.query import SearchEngine


def main() -> None:
    query = " ".join(sys.argv[1:]) or "olap warehouse"
    print(f"Loading synthetic DBLP dataset (dblp_tiny) ... query = {query!r}")
    dataset = load_dataset("dblp_tiny")

    # The session starts from *untrained* uniform rates, like the survey.
    flat_rates = AuthorityTransferSchemaGraph(dataset.schema, default_rate=0.3)
    engine = SearchEngine(dataset.data_graph, flat_rates)
    user = SimulatedUser(engine, dataset.ground_truth_rates, relevance_depth=40)
    system = ObjectRankSystem(
        dataset.data_graph,
        flat_rates,
        SystemConfig.structure_only(top_k=10),
        engine=engine,
    )

    residual = ResidualCollection()
    result = system.query(query)
    for iteration in range(4):
        presented = residual.present(result.ranked.ranking(), 10)
        marked = user.judge(presented, query)
        precision = len(marked) / 10
        print(f"\n--- iteration {iteration} (precision@10 = {precision:.2f}) ---")
        for node_id in presented[:5]:
            node = dataset.data_graph.node(node_id)
            title = node.attributes.get("title", node_id)
            flag = "*" if node_id in marked else " "
            print(f"  {flag} {node.label}: {title[:64]}")
        residual.mark_seen(presented)
        if not marked:
            print("  (no relevant results presented; keeping query unchanged)")
        outcome = system.feedback(marked)
        result = outcome.result
        print(
            f"  reformulated: {len(outcome.explanations)} explanations, "
            f"ObjectRank2 re-ran in {result.iterations} iterations (warm start)"
        )

    print("\nLearned transfer rates vs. expert ground truth:")
    from repro.datasets import dblp_edge_order
    from repro.feedback import cosine_similarity

    order = dblp_edge_order(dataset.schema)
    learned = system.current_rates.as_vector(order)
    truth = dataset.ground_truth_rates.as_vector(order)
    names = ["PP", "PPb", "PA", "AP", "CY", "YC", "YP", "PY"]
    for name, l, t in zip(names, learned, truth):
        print(f"  {name}: learned {l:.3f}   expert {t:.3f}")
    print(f"  cosine similarity: {cosine_similarity(learned, truth):.4f}")


if __name__ == "__main__":
    main()
