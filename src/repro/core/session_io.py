"""Saving and restoring feedback-session state.

A personalization session is valuable state: the learned authority transfer
rates and the expanded query vector represent real user effort (the paper's
whole point is accumulating it).  This module persists that state as JSON so
a session can be resumed later — or a *learned rate profile* can be shipped
to other users of the same schema, turning one expert's feedback into
everyone's defaults (the paper's "personalized authority flow search").
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.system import ObjectRankSystem
from repro.errors import ReproError
from repro.graph.serialization import (
    transfer_schema_from_dict,
    transfer_schema_to_dict,
)
from repro.query.query import QueryVector

_FORMAT_VERSION = 1


def session_state(system: ObjectRankSystem) -> dict[str, Any]:
    """The resumable state of a session as a plain dict."""
    return {
        "version": _FORMAT_VERSION,
        "query_vector": system.current_vector.weights if system.current_vector else None,
        "rates": transfer_schema_to_dict(system.current_rates),
    }


def save_session(system: ObjectRankSystem, path: str | Path) -> None:
    """Write the session's learned state (vector + rates) to JSON."""
    Path(path).write_text(json.dumps(session_state(system)), encoding="utf-8")


def restore_session(system: ObjectRankSystem, path: str | Path) -> None:
    """Load previously saved state into a (fresh or used) session.

    The saved rates must be over the same schema as the system's dataset;
    restoring replaces the current rates and query vector, and the next
    :meth:`~repro.core.system.ObjectRankSystem.rerun`-style search — i.e.
    ``system.query`` with ``rates=system.current_rates`` or a
    :meth:`feedback` call — continues from the restored state.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ReproError(f"unsupported session format version: {version!r}")
    rates = transfer_schema_from_dict(payload["rates"])
    if rates.edge_types() != system.current_rates.edge_types():
        raise ReproError("saved session is over a different schema")
    system.current_rates = rates
    weights = payload.get("query_vector")
    system.current_vector = QueryVector(weights) if weights is not None else None
