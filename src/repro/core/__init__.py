"""The paper's contribution surface: configuration and the full
query / explain / reformulate system facade."""

from repro.core.config import DEFAULT_RADIUS, SystemConfig
from repro.core.session_io import restore_session, save_session, session_state
from repro.core.system import FeedbackOutcome, ObjectRankSystem

__all__ = [
    "DEFAULT_RADIUS",
    "FeedbackOutcome",
    "ObjectRankSystem",
    "SystemConfig",
    "restore_session",
    "save_session",
    "session_state",
]
