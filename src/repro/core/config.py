"""System-wide configuration: the paper's calibration parameters in one place."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
)
from repro.reformulate.content import (
    DEFAULT_DECAY,
    DEFAULT_EXPANSION_FACTOR,
    DEFAULT_NUM_TERMS,
)
from repro.reformulate.structure import DEFAULT_ADJUSTMENT_FACTOR

DEFAULT_RADIUS = 3  # L; "a relatively small L (e.g., L=3) is adequate" (Section 4)

RETRIEVAL_MODES = ("full", "two_stage")


@dataclass(frozen=True)
class SystemConfig:
    """All tunables of an ObjectRank2 system instance.

    The defaults are the values the paper states it uses: damping d = 0.85,
    convergence threshold 0.0001 (Section 6.2), explaining-subgraph radius
    L = 3, decay C_d = 0.5, expansion factor C_e = 0.5 and rate adjustment
    factor C_f = 0.5 (Sections 4-5).  The survey settings of Figure 10 are
    provided as constructors.
    """

    damping: float = DEFAULT_DAMPING
    tolerance: float = DEFAULT_TOLERANCE
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    radius: int | None = DEFAULT_RADIUS
    top_k: int = 10
    decay: float = DEFAULT_DECAY
    expansion_factor: float = DEFAULT_EXPANSION_FACTOR
    adjustment_factor: float = DEFAULT_ADJUSTMENT_FACTOR
    num_expansion_terms: int = DEFAULT_NUM_TERMS
    warm_start: bool = True
    # Section 6.2: "for the initial user query, we initialize every node in
    # D^A with their global ObjectRank values, to achieve faster convergence."
    global_warm_start: bool = True
    #: Threads for batched explaining-subgraph extraction (None = in-process);
    #: feedback rounds and ``explain_many`` batch their targets either way.
    explain_workers: int | None = None
    #: "full" runs ObjectRank2 over the whole graph; "two_stage" runs pruned
    #: BM25 candidate generation + focused authority reranking
    #: (:mod:`repro.retrieval`), whose cost scales with the result page.
    retrieval_mode: str = "full"
    #: Two-stage stage-1 candidate-set size N.
    candidates: int = 200
    #: Two-stage fusion mode ("weighted", "multiplicative" or "rrf") and the
    #: authority share of the weighted combination (1.0 = authority only).
    fusion: str = "weighted"
    fusion_weight: float = 1.0
    #: Hops of neighborhood expanded around the candidates for reranking.
    rerank_horizon: int = 2
    #: Stop the rerank fixpoint once the top-k sequence is stable (None =
    #: iterate to tolerance; required for exact focused equivalence).
    rerank_early_k: int | None = None
    #: Hub-expansion cap and adaptive-deepening budget of the rerank
    #: neighborhood (see :func:`repro.ranking.focused.focused_neighborhood`);
    #: ``None`` keeps the exact uncapped, fixed-horizon expansion.
    rerank_expand_cap: int | None = None
    rerank_node_budget: int | None = None
    rerank_max_horizon: int | None = None

    @classmethod
    def content_only(cls, expansion_factor: float = 0.2, **overrides) -> "SystemConfig":
        """Figure 10's Content-Only setting: C_f = 0, C_e = 0.2."""
        return cls(expansion_factor=expansion_factor, adjustment_factor=0.0, **overrides)

    @classmethod
    def structure_only(cls, adjustment_factor: float = 0.5, **overrides) -> "SystemConfig":
        """Figure 10's Structure-Only setting: C_f = 0.5, C_e = 0."""
        return cls(expansion_factor=0.0, adjustment_factor=adjustment_factor, **overrides)

    @classmethod
    def content_and_structure(
        cls, expansion_factor: float = 0.2, adjustment_factor: float = 0.5, **overrides
    ) -> "SystemConfig":
        """Figure 10's Content & Structure setting: C_f = 0.5, C_e = 0.2."""
        return cls(
            expansion_factor=expansion_factor,
            adjustment_factor=adjustment_factor,
            **overrides,
        )
