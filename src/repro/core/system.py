"""The ObjectRank2 query-and-reformulation system (the paper's deployed demo).

:class:`ObjectRankSystem` ties every component together into the interactive
loop of Section 5's "Overview of process":

1. :meth:`query` computes the top-k objects by ObjectRank2;
2. :meth:`explain` builds the explaining subgraph of any result and runs the
   flow-adjustment fixpoint;
3. :meth:`feedback` takes the objects the user marked relevant, reformulates
   the query (content and/or structure) from their explanations, and re-runs
   the reformulated query — warm-started from the previous scores, the
   Section 6.2 optimization.

The system records per-stage timings (:class:`repro.bench.IterationTiming`)
for every iteration, which is exactly what Figures 14-17 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.timing import (
    STAGE_ADJUST,
    STAGE_REFORMULATE,
    STAGE_SEARCH,
    STAGE_SUBGRAPH,
    IterationTiming,
    StageClock,
)
from repro.core.config import RETRIEVAL_MODES, SystemConfig
from repro.errors import ReproError
from repro.explain.adjustment import FlowExplanation, adjust_flows
from repro.explain.batch import (
    batched_adjust_flows,
    batched_build_explaining_subgraphs,
)
from repro.explain.subgraph import build_explaining_subgraph
from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.graph.data_graph import DataGraph
from repro.query.engine import SearchEngine, SearchResult
from repro.query.query import KeywordQuery, QueryVector
from repro.ranking.objectrank import global_objectrank
from repro.reformulate.combined import ReformulatedQuery, Reformulator
from repro.retrieval.engine import TwoStageEngine, TwoStageSearchResult


@dataclass
class FeedbackOutcome:
    """Everything produced by one feedback-and-reformulate iteration."""

    explanations: list[FlowExplanation]
    reformulated: ReformulatedQuery
    result: SearchResult
    timing: IterationTiming


class ObjectRankSystem:
    """A stateful ObjectRank2 session over one dataset.

    The session tracks the current query vector, the current (possibly
    learned) authority transfer rates, and the previous score vector used to
    warm-start reformulated queries.
    """

    def __init__(
        self,
        data_graph: DataGraph,
        transfer_schema: AuthorityTransferSchemaGraph,
        config: SystemConfig | None = None,
        engine: SearchEngine | None = None,
    ) -> None:
        self.config = config or SystemConfig()
        if self.config.retrieval_mode not in RETRIEVAL_MODES:
            raise ReproError(
                f"unknown retrieval mode: {self.config.retrieval_mode!r} "
                f"(choose from {RETRIEVAL_MODES})"
            )
        self.engine = engine or SearchEngine(
            data_graph,
            transfer_schema,
            damping=self.config.damping,
            tolerance=self.config.tolerance,
            max_iterations=self.config.max_iterations,
        )
        self.reformulator = Reformulator.with_factors(
            self.config.expansion_factor,
            self.config.adjustment_factor,
            self.config.decay,
            self.config.num_expansion_terms,
        )
        self._initial_schema = transfer_schema
        self.current_rates: AuthorityTransferSchemaGraph = transfer_schema
        self.current_vector: QueryVector | None = None
        self.last_result: SearchResult | None = None
        self.timings: list[IterationTiming] = []
        self._iteration = 0
        self._explaining_iterations: list[int] = []
        self._global_scores: np.ndarray | None = None
        self._two_stage: TwoStageEngine | None = None

    # -- querying ------------------------------------------------------------

    def query(
        self, query: KeywordQuery | QueryVector | str, rates=None
    ) -> SearchResult:
        """Run a fresh query; resets session state (rates, warm start)."""
        self.current_rates = rates if rates is not None else self._initial_schema
        self.current_vector = self.engine.query_vector(query)
        self.last_result = None
        self.timings = []
        self._iteration = 0
        self._explaining_iterations = []
        return self._run(label="initial")

    def adopt_initial(
        self,
        query: KeywordQuery | QueryVector | str,
        result: SearchResult,
        rates=None,
    ) -> SearchResult:
        """Seed the session with an externally computed initial result.

        Batched evaluation (``repro.ranking.batch``) computes many sessions'
        initial fixpoints in one blocked run; this installs one such result
        exactly as if :meth:`query` had produced it — feedback iterations and
        warm starts continue from it unchanged.
        """
        self.current_rates = rates if rates is not None else self._initial_schema
        self.current_vector = self.engine.query_vector(query)
        self.last_result = result
        self.timings = [
            IterationTiming(
                label="initial",
                search_seconds=result.elapsed_seconds,
                subgraph_seconds=0.0,
                adjust_seconds=0.0,
                reformulate_seconds=0.0,
                objectrank_iterations=result.iterations,
            )
        ]
        self._iteration = 0
        self._explaining_iterations = []
        return result

    def _search(self, init: np.ndarray | None) -> SearchResult:
        """One retrieval run under the session's configured mode.

        Two-stage retrieval builds its own restart from the candidates'
        focused subgraph, so the warm-start vector only applies to full runs.
        """
        if self.config.retrieval_mode == "two_stage":
            return self.two_stage_engine.search(
                self.current_vector,
                top_k=self.config.top_k,
                rates=self.current_rates,
            )
        return self.engine.search(
            self.current_vector,
            top_k=self.config.top_k,
            rates=self.current_rates,
            init=init,
        )

    @property
    def two_stage_engine(self) -> TwoStageEngine:
        """The session's two-stage engine (built lazily from the config)."""
        if self._two_stage is None:
            self._two_stage = TwoStageEngine(
                self.engine,
                candidates=self.config.candidates,
                fusion=self.config.fusion,
                fusion_weight=self.config.fusion_weight,
                horizon=self.config.rerank_horizon,
                early_k=self.config.rerank_early_k,
                expand_cap=self.config.rerank_expand_cap,
                node_budget=self.config.rerank_node_budget,
                max_horizon=self.config.rerank_max_horizon,
            )
        return self._two_stage

    def _explain_within(self) -> np.ndarray | None:
        """Two-stage results explain within the candidate neighborhood only."""
        if isinstance(self.last_result, TwoStageSearchResult):
            stages = self.last_result.stages
            if stages is not None:
                return stages.neighborhood
        return None

    def _run(self, label: str) -> SearchResult:
        if self.current_vector is None:
            raise ReproError("no query has been issued yet")
        clock = StageClock()
        init = self._warm_start()
        with clock.stage(STAGE_SEARCH):
            result = self._search(init)
        self.last_result = result
        self.timings.append(
            IterationTiming(
                label=label,
                search_seconds=clock.total(STAGE_SEARCH),
                subgraph_seconds=0.0,
                adjust_seconds=0.0,
                reformulate_seconds=0.0,
                objectrank_iterations=result.iterations,
            )
        )
        return result

    def _warm_start(self) -> np.ndarray | None:
        """The Section 6.2 warm-start chain.

        Reformulated queries start from the previous query's scores; the
        *initial* query starts from the global (query-independent)
        ObjectRank values, computed lazily once per session under the
        system's initial rates.
        """
        if not self.config.warm_start:
            return None
        if self.last_result is not None:
            return self.last_result.scores
        if self.config.global_warm_start:
            return self._global_warm_start()
        return None

    def _session_graph(self):
        """The transfer graph under this session's (possibly learned) rates.

        A shared, cached view from the engine — never a mutation of the
        engine's graph, so concurrent sessions over one engine stay isolated.
        """
        return self.engine.transfer_view(self.current_rates)

    def _global_warm_start(self) -> np.ndarray:
        if self._global_scores is None:
            self._global_scores = global_objectrank(
                self.engine.transfer_view(self._initial_schema),
                self.config.damping,
                self.config.tolerance,
                self.config.max_iterations,
            ).scores
        return self._global_scores

    # -- explanation -----------------------------------------------------------

    def explain(self, node_id: str) -> FlowExplanation:
        """Build and adjust the explaining subgraph for one result object."""
        if self.last_result is None:
            raise ReproError("query before explaining a result")
        base_ids = list(self.last_result.ranked.base_weights)
        subgraph = build_explaining_subgraph(
            self._session_graph(),
            base_ids,
            node_id,
            self.config.radius,
            within=self._explain_within(),
        )
        return adjust_flows(
            subgraph,
            self.last_result.scores,
            self.config.damping,
            self.config.tolerance,
        )

    def explain_many(
        self, node_ids: list[str], workers: int | None = None
    ) -> list[FlowExplanation]:
        """Explain several results in one batched pass (bit-identical to
        calling :meth:`explain` per id, see :mod:`repro.explain.batch`)."""
        if self.last_result is None:
            raise ReproError("query before explaining a result")
        base_ids = list(self.last_result.ranked.base_weights)
        subgraphs = self._build_subgraphs(
            base_ids,
            node_ids,
            workers if workers is not None else self.config.explain_workers,
        )
        return batched_adjust_flows(
            subgraphs,
            self.last_result.scores,
            self.config.damping,
            self.config.tolerance,
        )

    def _build_subgraphs(
        self, base_ids: list[str], node_ids: list[str], workers: int | None
    ):
        """Explaining subgraphs for many targets, honoring two-stage scope.

        A two-stage result's explanations are confined to the candidate
        neighborhood; the restricted extraction runs per target (the batched
        frontier engine has no node filter), which is fine because the
        neighborhood keeps each subgraph small.
        """
        within = self._explain_within()
        if within is not None:
            graph = self._session_graph()
            return [
                build_explaining_subgraph(
                    graph, base_ids, node_id, self.config.radius, within=within
                )
                for node_id in node_ids
            ]
        return batched_build_explaining_subgraphs(
            self._session_graph(),
            base_ids,
            node_ids,
            self.config.radius,
            workers=workers,
        )

    # -- feedback loop ------------------------------------------------------------

    def feedback(self, relevant_ids: list[str]) -> FeedbackOutcome:
        """Reformulate from the user's marked-relevant objects and re-run.

        Implements the full loop: explain each feedback object, reformulate
        query vector and transfer rates from the explanations (Section 5.3
        aggregation for multiple objects), then execute the reformulated
        query warm-started from the previous scores.
        """
        if self.last_result is None or self.current_vector is None:
            raise ReproError("query before giving feedback")
        clock = StageClock()
        base_ids = list(self.last_result.ranked.base_weights)
        scores = self.last_result.scores

        # One batched pass over all feedback objects: shared positive-rate
        # adjacency for the subgraphs, one multi-target fixpoint for the
        # adjustment — per object bit-identical to the serial loop.
        with clock.stage(STAGE_SUBGRAPH):
            subgraphs = self._build_subgraphs(
                base_ids, relevant_ids, self.config.explain_workers
            )
        with clock.stage(STAGE_ADJUST):
            explanations = batched_adjust_flows(
                subgraphs, scores, self.config.damping, self.config.tolerance
            )
        for explanation in explanations:
            self._explaining_iterations.append(explanation.iterations)

        with clock.stage(STAGE_REFORMULATE):
            reformulated = self.reformulator.reformulate(
                self.current_vector, self.current_rates, explanations
            )
        self.current_vector = reformulated.query_vector
        self.current_rates = reformulated.transfer_schema

        self._iteration += 1
        init = self._warm_start()
        with clock.stage(STAGE_SEARCH):
            result = self._search(init)
        self.last_result = result

        timing = IterationTiming(
            label=f"reformulated-{self._iteration}",
            search_seconds=clock.total(STAGE_SEARCH),
            subgraph_seconds=clock.total(STAGE_SUBGRAPH),
            adjust_seconds=clock.total(STAGE_ADJUST),
            reformulate_seconds=clock.total(STAGE_REFORMULATE),
            objectrank_iterations=result.iterations,
        )
        self.timings.append(timing)
        return FeedbackOutcome(explanations, reformulated, result, timing)

    # -- accounting ----------------------------------------------------------------

    @property
    def explaining_iterations(self) -> list[int]:
        """Flow-adjustment iteration counts seen so far (Table 3's metric)."""
        return list(self._explaining_iterations)
