"""Top authority-flow paths through an explanation.

The explaining subgraph can be large; the paper's online demo "only keep[s]
the paths with high authority flow" when displaying it.  This module extracts
the strongest base-set-to-target paths, ranking a path by its *bottleneck*
flow (the smallest adjusted edge flow along it) — the intuitive "weakest link"
of the chain of authority the user is shown.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.explain.adjustment import FlowExplanation


@dataclass(frozen=True)
class FlowPath:
    """One base-set-to-target path with its bottleneck flow."""

    node_ids: tuple[str, ...]
    bottleneck: float

    @property
    def length(self) -> int:
        return len(self.node_ids) - 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " -> ".join(self.node_ids) + f"  [flow {self.bottleneck:.3g}]"


def top_paths(
    explanation: FlowExplanation,
    k: int = 5,
    max_length: int | None = None,
) -> list[FlowPath]:
    """The ``k`` strongest simple paths from the base set to the target.

    Uses a best-first search over (bottleneck, path) states: states are
    expanded in decreasing bottleneck order, so the first ``k`` target hits
    are the strongest paths.  ``max_length`` bounds path length in edges
    (defaults to the subgraph radius when one was used, since "longer paths
    are generally unintuitive" [CQ69]).
    """
    subgraph = explanation.subgraph
    graph = subgraph.graph
    if subgraph.is_empty or k <= 0:
        return []
    if max_length is None:
        max_length = subgraph.radius if subgraph.radius is not None else subgraph.num_nodes

    # Adjacency restricted to subgraph edges, with adjusted flows.
    adjacency: dict[int, list[tuple[int, float]]] = {}
    for edge_id, flow in zip(subgraph.edge_ids, explanation.flows):
        if flow <= 0:
            continue
        source = int(graph.edge_source[edge_id])
        dest = int(graph.edge_target[edge_id])
        adjacency.setdefault(source, []).append((dest, float(flow)))

    # Max-heap keyed on bottleneck; tie-broken deterministically by path.
    heap: list[tuple[float, tuple[int, ...]]] = []
    for base in subgraph.base_nodes:
        heapq.heappush(heap, (-float("inf"), (base,)))

    results: list[FlowPath] = []
    seen_paths: set[tuple[int, ...]] = set()
    target = subgraph.target
    while heap and len(results) < k:
        negative_bottleneck, path = heapq.heappop(heap)
        if path in seen_paths:
            continue
        seen_paths.add(path)
        head = path[-1]
        if head == target and len(path) > 1:
            results.append(
                FlowPath(
                    tuple(graph.node_id_of(n) for n in path),
                    -negative_bottleneck,
                )
            )
            continue
        if len(path) - 1 >= max_length:
            continue
        for dest, flow in adjacency.get(head, ()):
            # Simple paths only — except that a path may *end* at the target
            # even when the target is also its base-set start (a cycle back
            # into the target is genuine authority flow into it).
            if dest in path and dest != target:
                continue
            bottleneck = min(-negative_bottleneck, flow)
            heapq.heappush(heap, (-bottleneck, path + (dest,)))
    return results
