"""Rendering explaining subgraphs for display (Section 4).

The paper generates and *displays* the explaining subgraph to the user
(Figure 9); here we render it as plain text (for terminals and tests) and as
Graphviz DOT (for actual display).
"""

from __future__ import annotations

from repro.explain.adjustment import FlowExplanation
from repro.explain.paths import top_paths


def _node_caption(explanation: FlowExplanation, index: int) -> str:
    graph = explanation.graph
    node = graph.data_graph.node(graph.node_id_of(index))
    title = node.attributes.get("title") or node.attributes.get("name") or node.node_id
    if len(title) > 40:
        title = title[:37] + "..."
    return f"{node.label}:{title}"


def to_text(explanation: FlowExplanation, max_paths: int = 5) -> str:
    """A human-readable explanation: target inflow plus the strongest paths."""
    subgraph = explanation.subgraph
    lines = [
        f"Explanation for {subgraph.target_id}",
        f"  subgraph: {subgraph.num_nodes} nodes, {subgraph.num_edges} edges"
        + (f" (radius {subgraph.radius})" if subgraph.radius is not None else ""),
        f"  total authority reaching target: {explanation.target_inflow():.6g}",
        f"  flow adjustment converged in {explanation.iterations} iterations",
    ]
    if subgraph.is_empty:
        lines.append("  (no authority path from the base set reaches this object)")
        return "\n".join(lines)
    lines.append(f"  top {max_paths} authority paths:")
    for path in top_paths(explanation, max_paths):
        captions = " -> ".join(
            _node_caption(explanation, explanation.graph.index_of(node_id))
            for node_id in path.node_ids
        )
        lines.append(f"    [{path.bottleneck:.3g}] {captions}")
    return "\n".join(lines)


def to_dot(explanation: FlowExplanation, min_flow: float = 0.0) -> str:
    """Graphviz DOT of the explaining subgraph with flow-annotated edges.

    ``min_flow`` drops edges below a threshold, the paper's "only keep the
    paths with high authority flow" display rule.
    """
    subgraph = explanation.subgraph
    graph = subgraph.graph
    lines = ["digraph explanation {", "  rankdir=LR;"]
    base = set(subgraph.base_nodes)
    shown: set[int] = set()
    edges: list[str] = []
    for edge_id, flow in zip(subgraph.edge_ids, explanation.flows):
        if flow < min_flow:
            continue
        source = int(graph.edge_source[edge_id])
        dest = int(graph.edge_target[edge_id])
        shown.update((source, dest))
        role = graph.edge_type_of(int(edge_id)).role
        edges.append(
            f'  "{graph.node_id_of(source)}" -> "{graph.node_id_of(dest)}"'
            f' [label="{role}\\n{flow:.3g}"];'
        )
    shown.add(subgraph.target)
    for index in sorted(shown):
        caption = _node_caption(explanation, index).replace('"', "'")
        shape = "doubleoctagon" if index == subgraph.target else (
            "box" if index in base else "ellipse"
        )
        lines.append(f'  "{graph.node_id_of(index)}" [label="{caption}", shape={shape}];')
    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines)
