"""Self-contained SVG rendering of explaining subgraphs.

The paper "generates and displays the explaining subgraph" in its Web demo.
:func:`to_svg` produces a dependency-free SVG string with a layered layout:
nodes arranged in columns by their distance to the target (the subgraph's
``depth_to_target``), edges drawn with stroke width proportional to their
adjusted authority flow, the target highlighted on the right.
"""

from __future__ import annotations

import html
import math

from repro.explain.adjustment import FlowExplanation

_COLUMN_WIDTH = 220
_ROW_HEIGHT = 64
_MARGIN = 48
_NODE_RX = 90
_NODE_RY = 20


def _node_caption(explanation: FlowExplanation, index: int, limit: int = 24) -> str:
    graph = explanation.graph
    node = graph.data_graph.node(graph.node_id_of(index))
    title = (
        node.attributes.get("title")
        or node.attributes.get("name")
        or node.attributes.get("symbol")
        or node.node_id
    )
    if len(title) > limit:
        title = title[: limit - 3] + "..."
    return f"{node.label}: {title}"


def _layout(explanation: FlowExplanation) -> dict[int, tuple[float, float]]:
    """Columns by depth-to-target (target rightmost), rows stacked."""
    subgraph = explanation.subgraph
    depths = subgraph.depth_to_target
    max_depth = max(depths.values(), default=0)
    columns: dict[int, list[int]] = {}
    for node in subgraph.nodes:
        columns.setdefault(depths.get(node, max_depth), []).append(node)
    positions: dict[int, tuple[float, float]] = {}
    for depth, nodes in columns.items():
        x = _MARGIN + (max_depth - depth) * _COLUMN_WIDTH + _NODE_RX
        for row, node in enumerate(sorted(nodes)):
            y = _MARGIN + row * _ROW_HEIGHT + _NODE_RY
            positions[node] = (x, y)
    return positions


def to_svg(explanation: FlowExplanation, min_flow: float = 0.0) -> str:
    """Render the explanation as a standalone SVG document string.

    ``min_flow`` hides edges below the threshold (the paper's "only keep the
    paths with high authority flow" display rule).
    """
    subgraph = explanation.subgraph
    graph = explanation.graph
    positions = _layout(explanation)
    width = max(x for x, _ in positions.values()) + _NODE_RX + _MARGIN
    height = max(y for _, y in positions.values()) + _NODE_RY + _MARGIN

    flows = [f for f in explanation.flows if f >= min_flow]
    max_flow = max(flows, default=1.0) or 1.0

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        '<style>text{font:11px sans-serif}</style>',
        '<defs><marker id="arrow" markerWidth="8" markerHeight="8" refX="7" '
        'refY="3" orient="auto"><path d="M0,0 L7,3 L0,6 z" fill="#666"/>'
        "</marker></defs>",
    ]

    for edge_id, flow in zip(subgraph.edge_ids, explanation.flows):
        if flow < min_flow:
            continue
        source = int(graph.edge_source[edge_id])
        dest = int(graph.edge_target[edge_id])
        x1, y1 = positions[source]
        x2, y2 = positions[dest]
        stroke = 0.75 + 3.0 * math.sqrt(flow / max_flow)
        label = f"{flow:.2e}"
        parts.append(
            f'<line x1="{x1:.0f}" y1="{y1:.0f}" x2="{x2:.0f}" y2="{y2:.0f}" '
            f'stroke="#666" stroke-width="{stroke:.2f}" marker-end="url(#arrow)">'
            f"<title>{html.escape(graph.edge_type_of(int(edge_id)).role)}: {label}"
            "</title></line>"
        )

    base = set(subgraph.base_nodes)
    for node, (x, y) in positions.items():
        if node == subgraph.target:
            fill = "#ffd27f"  # target: highlighted
        elif node in base:
            fill = "#bfe3bf"  # base set: where authority starts
        else:
            fill = "#dde6f0"
        caption = html.escape(_node_caption(explanation, node))
        parts.append(
            f'<g><ellipse cx="{x:.0f}" cy="{y:.0f}" rx="{_NODE_RX}" ry="{_NODE_RY}" '
            f'fill="{fill}" stroke="#445"/>'
            f'<text x="{x:.0f}" y="{y + 4:.0f}" text-anchor="middle">{caption}</text></g>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
