"""Batched explanation engine: many targets, one pass (Section 4 at scale).

Explaining a single result is cheap; the serving paths never explain just
one.  ``/explain`` explains members of a top-k list, and one reformulation
round (Equations 14-15) explains every feedback object before aggregating.
The serial pipeline re-runs a Python BFS and a small numpy fixpoint per
target; for subgraphs of a few hundred edges the per-call interpreter and
numpy-dispatch overhead dominates the arithmetic.

This module amortizes that overhead across a batch of targets:

* **Shared positive-rate adjacency.**  Subgraph construction only ever
  traverses edges with a strictly positive transfer rate.
  :class:`SubgraphExtractor` filters the graph's in/out incidence indices
  down to those edges once per rate setting, so every target's two BFS
  passes skip the rate test entirely and the mask is shared by the whole
  batch.

* **Vectorized frontier expansion.**  Each BFS processes whole frontiers as
  index arrays — one ragged CSR gather per level instead of one Python loop
  iteration per node — with epoch-tagged visited/depth stamps reused across
  targets so per-target cost scales with the subgraph, not the graph.
  Level-synchronous expansion discovers exactly the FIFO BFS's node set at
  exactly its depths, so the resulting :class:`ExplainingSubgraph` equals
  the serial one field for field.

* **Multi-target flow-adjustment fixpoint.**  The per-target iterations of
  Equation 10 are independent, so their edge lists are concatenated (with
  per-target local-node offsets) into one shared edge list and advanced
  together: one ``gather·rates`` + one ``np.add.at`` scatter per iteration
  for the whole batch, mirroring ``repro.ranking.batch``.  Targets converge
  independently: a converged target's factors are *frozen* (captured
  immediately, then the segment coasts harmlessly) and amortized
  *compaction* rebuilds the shared edge list without finished segments once
  a quarter of the batch is done.

This is a performance change, not an approximation: each target's additions
occupy a contiguous run of the shared edge list in serial edge order, so the
scatter accumulates bit-for-bit the same sums as the serial fixpoint, and
the per-segment residual is an exact max — flows, node reduction factors,
iteration counts (Table 3) and residual traces are all identical to
:func:`repro.explain.adjust_flows` per target.

``workers`` optionally spreads subgraph extraction over a thread pool
(default — extraction is numpy-bound and the results alias the shared
graph) or a process pool (each chunk re-pickles the graph; only worth it
for very large graphs with many targets).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConvergenceError, ExplanationError
from repro.explain.adjustment import (
    DEFAULT_ADJUSTMENT_MAX_ITERATIONS,
    FlowExplanation,
)
from repro.explain.flows import original_edge_flows
from repro.explain.subgraph import ExplainingSubgraph
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ranking.pagerank import DEFAULT_DAMPING, DEFAULT_TOLERANCE

#: Compaction threshold: rebuild the shared edge list once this fraction of
#: the still-packed targets has converged.  Rebuilding is O(remaining edges);
#: amortizing it keeps total compaction cost linear in the batch size.
_COMPACT_FRACTION = 4


def _positive_incidence(
    endpoint: np.ndarray, positive: np.ndarray, num_nodes: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style (indptr, edge_ids) over positive-rate edges only."""
    edge_ids = np.flatnonzero(positive)
    endpoints = endpoint[edge_ids]
    order = np.argsort(endpoints, kind="stable")
    counts = (
        np.bincount(endpoints, minlength=num_nodes)
        if edge_ids.size
        else np.zeros(num_nodes, dtype=np.int64)
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, edge_ids[order]


def _gather_ragged(
    indptr: np.ndarray, data: np.ndarray, nodes: np.ndarray
) -> np.ndarray:
    """Concatenation of ``data[indptr[v]:indptr[v+1]]`` for every frontier node.

    The vectorized equivalent of the serial BFS's per-node adjacency loop:
    one fancy-indexing pass gathers every frontier node's edge ids at once.
    """
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype)
    boundaries = np.cumsum(counts)
    index = np.arange(total, dtype=np.int64)
    index += np.repeat(starts - boundaries + counts, counts)
    return data[index]


class _WorkArrays:
    """Epoch-tagged per-extraction scratch, reused across targets.

    ``tag[v] == epoch`` marks membership of the current target's backward
    set, ``reach[v] == epoch`` of its forward set; bumping the epoch resets
    both in O(1).  One instance per worker thread — instances are never
    shared concurrently.
    """

    def __init__(self, num_nodes: int) -> None:
        self.tag = np.zeros(num_nodes, dtype=np.int64)
        self.depth = np.zeros(num_nodes, dtype=np.int64)
        self.reach = np.zeros(num_nodes, dtype=np.int64)
        self.epoch = 0


class SubgraphExtractor:
    """Vectorized explaining-subgraph construction over one rate setting.

    Holds the positive-rate in/out incidence shared by every extraction;
    build one per (graph, rates) and reuse it for the whole batch.  The
    extractor itself is immutable after construction, so concurrent threads
    may extract through it as long as each brings its own work arrays (the
    public entry point :func:`batched_build_explaining_subgraphs` does).
    """

    def __init__(self, graph: AuthorityTransferDataGraph) -> None:
        self.graph = graph
        positive = graph.edge_rate > 0.0
        self._in_indptr, self._in_edges = _positive_incidence(
            graph.edge_target, positive, graph.num_nodes
        )
        self._out_indptr, self._out_edges = _positive_incidence(
            graph.edge_source, positive, graph.num_nodes
        )

    def extract(
        self,
        base_indices: np.ndarray,
        target: int,
        radius: int | None,
        work: _WorkArrays,
    ) -> ExplainingSubgraph:
        """One target's ``G_v^Q``, identical to the serial two-pass build."""
        graph = self.graph
        work.epoch += 1
        epoch = work.epoch
        tag, depth, reach = work.tag, work.depth, work.reach

        # Backward pass, level-synchronous: frontier ``L`` holds exactly the
        # nodes at BFS depth ``L``, so the depths equal the serial FIFO BFS's.
        tag[target] = epoch
        depth[target] = 0
        frontier = np.asarray([target], dtype=np.int64)
        level = 0
        while frontier.size and (radius is None or level < radius):
            sources = graph.edge_source[
                _gather_ragged(self._in_indptr, self._in_edges, frontier)
            ]
            fresh = np.unique(sources[tag[sources] != epoch])
            if fresh.size == 0:
                break
            level += 1
            tag[fresh] = epoch
            depth[fresh] = level
            frontier = fresh

        # Forward pass from the base-set nodes inside the backward set.  The
        # first frontier keeps the base list's order and multiplicity (the
        # serial pass seeds its queue the same way), later frontiers are the
        # deduplicated newly-reached nodes.
        roots = (
            base_indices[tag[base_indices] == epoch]
            if base_indices.size
            else base_indices
        )
        reach[roots] = epoch
        kept: list[np.ndarray] = []
        reached: list[np.ndarray] = [np.unique(roots)]
        frontier = roots
        while frontier.size:
            eids = _gather_ragged(self._out_indptr, self._out_edges, frontier)
            dests = graph.edge_target[eids]
            inside = tag[dests] == epoch
            eids, dests = eids[inside], dests[inside]
            kept.append(eids)
            fresh = np.unique(dests[reach[dests] != epoch])
            reach[fresh] = epoch
            reached.append(fresh)
            frontier = fresh

        # The target belongs to the subgraph even when nothing reaches it.
        reached.append(np.asarray([target], dtype=np.int64))
        nodes_array = np.unique(np.concatenate(reached))
        edge_ids = np.sort(np.concatenate(kept)) if kept else np.empty(0, np.int64)
        nodes = [int(n) for n in nodes_array]
        return ExplainingSubgraph(
            graph=graph,
            target=target,
            nodes=nodes,
            edge_ids=edge_ids.astype(np.int64, copy=False),
            base_nodes=[int(b) for b in roots],
            depth_to_target={n: int(depth[n]) for n in nodes},
            radius=radius,
            _nodes_array=nodes_array,
        )

    def extract_many(
        self,
        base_indices: np.ndarray,
        targets: Sequence[int],
        radius: int | None,
        work: _WorkArrays | None = None,
    ) -> list[ExplainingSubgraph]:
        """Extract a run of targets sequentially with shared work arrays."""
        work = work or _WorkArrays(self.graph.num_nodes)
        return [self.extract(base_indices, t, radius, work) for t in targets]


def _extract_parts(
    graph: AuthorityTransferDataGraph,
    base_node_ids: list[str],
    target_ids: list[str],
    radius: int | None,
) -> list[tuple]:
    """Process-pool task: extract a chunk, return graph-free subgraph parts.

    Shipping :class:`ExplainingSubgraph` back would re-pickle the graph once
    per subgraph; the parent reattaches its own graph reference instead.
    """
    extractor = SubgraphExtractor(graph)
    base_indices = graph.indices_of(base_node_ids)
    subgraphs = extractor.extract_many(
        base_indices, [graph.index_of(t) for t in target_ids], radius
    )
    return [
        (sg.target, sg.nodes, sg.edge_ids, sg.base_nodes, sg.depth_to_target)
        for sg in subgraphs
    ]


def batched_build_explaining_subgraphs(
    graph: AuthorityTransferDataGraph,
    base_node_ids: list[str],
    target_ids: Sequence[str],
    radius: int | None = None,
    workers: int | None = None,
    pool: str = "thread",
    extractor: SubgraphExtractor | None = None,
) -> list[ExplainingSubgraph]:
    """``G_v^Q`` for every target, sharing one positive-rate adjacency.

    Field-for-field identical to calling
    :func:`repro.explain.build_explaining_subgraph` per target.  ``workers``
    splits the targets across a ``pool`` of threads (default) or processes;
    a pool that cannot start degrades to the in-process loop.  Pass a
    prebuilt ``extractor`` to reuse the filtered adjacency across batches
    under an unchanged rate setting.
    """
    if radius is not None and radius < 1:
        raise ExplanationError(f"radius must be at least 1, got {radius}")
    if pool not in ("thread", "process"):
        raise ValueError(f"pool must be 'thread' or 'process', got {pool!r}")
    targets = [graph.index_of(t) for t in target_ids]
    base_indices = graph.indices_of(list(base_node_ids))
    if not targets:
        return []

    chunk_count = min(workers, len(targets)) if workers and workers > 1 else 1
    if chunk_count <= 1:
        extractor = extractor or SubgraphExtractor(graph)
        return extractor.extract_many(base_indices, targets, radius)

    bounds = np.linspace(0, len(targets), chunk_count + 1).astype(int)
    chunks = [
        (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]
    if pool == "process":
        tasks = [
            (graph, list(base_node_ids), list(target_ids[lo:hi]), radius)
            for lo, hi in chunks
        ]
        try:
            with ProcessPoolExecutor(max_workers=len(tasks)) as executor:
                futures = [executor.submit(_extract_parts, *task) for task in tasks]
                parts = [p for future in futures for p in future.result()]
            return [
                ExplainingSubgraph(
                    graph=graph,
                    target=target,
                    nodes=nodes,
                    edge_ids=edge_ids,
                    base_nodes=base_nodes,
                    depth_to_target=depths,
                    radius=radius,
                )
                for target, nodes, edge_ids, base_nodes, depths in parts
            ]
        except (OSError, PermissionError, RuntimeError):
            pass  # restricted environments forbid fork/spawn; run with threads

    extractor = extractor or SubgraphExtractor(graph)

    def run_chunk(lo: int, hi: int) -> list[ExplainingSubgraph]:
        # One work-array set per chunk: extractor state is shared read-only,
        # the epoch-tagged scratch is what must stay thread-private.
        return extractor.extract_many(
            base_indices, targets[lo:hi], radius, _WorkArrays(graph.num_nodes)
        )

    try:
        with ThreadPoolExecutor(max_workers=len(chunks)) as executor:
            futures = [executor.submit(run_chunk, lo, hi) for lo, hi in chunks]
            return [sg for future in futures for sg in future.result()]
    except (OSError, PermissionError, RuntimeError):
        return extractor.extract_many(base_indices, targets, radius)


# -- multi-target flow adjustment -------------------------------------------


@dataclass
class _Segment:
    """One target's slice of the shared fixpoint state."""

    position: int  # index into the caller's subgraph list
    subgraph: ExplainingSubgraph
    flow0: np.ndarray
    src_local: np.ndarray
    dst_local: np.ndarray
    rates: np.ndarray
    num_local: int
    target_local: int
    residuals: list[float]
    h: np.ndarray | None = None  # captured factors (at convergence or cutoff)
    iterations: int = 0
    converged: bool = False


@dataclass
class _Packed:
    """The concatenated ("shared") edge list over the still-active segments."""

    src: np.ndarray
    dst: np.ndarray
    rates: np.ndarray
    node_starts: np.ndarray  # segment boundaries, for per-segment residuals
    target_pos: np.ndarray
    total_nodes: int


def _pack(segments: list[_Segment]) -> _Packed:
    """Concatenate segment edge lists with per-segment local-node offsets."""
    sizes = np.asarray([s.num_local for s in segments], dtype=np.int64)
    node_starts = np.zeros(len(segments), dtype=np.int64)
    np.cumsum(sizes[:-1], out=node_starts[1:])
    src = np.concatenate(
        [s.src_local + off for s, off in zip(segments, node_starts)]
    )
    dst = np.concatenate(
        [s.dst_local + off for s, off in zip(segments, node_starts)]
    )
    rates = np.concatenate([s.rates for s in segments])
    target_pos = node_starts + np.asarray(
        [s.target_local for s in segments], dtype=np.int64
    )
    return _Packed(src, dst, rates, node_starts, target_pos, int(sizes.sum()))


def batched_adjust_flows(
    subgraphs: Sequence[ExplainingSubgraph],
    scores: np.ndarray,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_ADJUSTMENT_MAX_ITERATIONS,
    raise_on_divergence: bool = False,
    compact: bool = True,
) -> list[FlowExplanation]:
    """Run the Equation 10 fixpoint for every subgraph in one shared iteration.

    Per target, the returned :class:`FlowExplanation` is bit-identical to
    :func:`repro.explain.adjust_flows` — flows, reduction factors, iteration
    counts, convergence flags and residual traces.  All subgraphs must be
    over the same graph and the same converged ``scores`` vector.

    ``compact`` drops converged segments from the shared edge list (they
    coast otherwise); ``raise_on_divergence`` raises for the first target
    that fails to converge within ``max_iterations``, like the serial path
    does for its single target.
    """
    explanations: list[FlowExplanation | None] = [None] * len(subgraphs)
    segments: list[_Segment] = []
    for position, subgraph in enumerate(subgraphs):
        flow0 = original_edge_flows(
            subgraph.graph, scores, damping, subgraph.edge_ids
        )
        if subgraph.is_empty:
            explanations[position] = FlowExplanation(
                subgraph,
                damping,
                flow0,
                flow0.copy(),
                {subgraph.target: 1.0},
                0,
                True,
            )
            continue
        segments.append(
            _Segment(
                position=position,
                subgraph=subgraph,
                flow0=flow0,
                src_local=subgraph.edge_src_local,
                dst_local=subgraph.edge_dst_local,
                rates=subgraph.graph.edge_rate[subgraph.edge_ids],
                num_local=subgraph.num_nodes,
                target_local=int(
                    np.searchsorted(subgraph.nodes_array, subgraph.target)
                ),
                residuals=[],
            )
        )

    if segments:
        _iterate_segments(segments, tolerance, max_iterations, compact)

    for segment in segments:
        if not segment.converged and raise_on_divergence:
            raise ConvergenceError(
                "explaining flow adjustment",
                segment.iterations,
                segment.residuals[-1],
            )
        flows = segment.h[segment.dst_local] * segment.flow0  # Equation 7
        reduction = {
            node: float(segment.h[i])
            for i, node in enumerate(segment.subgraph.nodes)
        }
        explanations[segment.position] = FlowExplanation(
            segment.subgraph,
            damping,
            segment.flow0,
            flows,
            reduction,
            segment.iterations,
            segment.converged,
            segment.residuals,
        )
    return explanations


def _iterate_segments(
    segments: list[_Segment],
    tolerance: float,
    max_iterations: int,
    compact: bool,
) -> None:
    """Advance every segment's fixpoint together until all converge.

    Each segment's edges form a contiguous run of the shared list in serial
    edge order, so the single ``np.add.at`` scatter performs, per segment,
    exactly the serial accumulation; the per-segment residual is an exact
    ``max`` (order-insensitive), so convergence decisions — and therefore
    iteration counts — match the serial engine bit for bit.  A converged
    segment's factors are captured immediately; the segment coasts in the
    shared list until amortized compaction rebuilds it without finished
    segments (at least a quarter dead), keeping total compaction cost linear.
    """
    packed = _pack(segments)
    active = list(segments)
    h = np.ones(packed.total_nodes)
    live = len(active)
    iteration = 0
    while live and iteration < max_iterations:
        iteration += 1
        contributions = h[packed.dst] * packed.rates
        new_h = np.zeros(packed.total_nodes)
        np.add.at(new_h, packed.src, contributions)
        new_h[packed.target_pos] = 1.0
        diff = np.abs(new_h - h)
        seg_residuals = np.maximum.reduceat(diff, packed.node_starts)
        h = new_h
        finished = False
        for local, segment in enumerate(active):
            if segment.converged:
                continue  # coasting until compaction
            residual = float(seg_residuals[local])
            segment.residuals.append(residual)
            if residual < tolerance:
                start = packed.node_starts[local]
                segment.h = h[start : start + segment.num_local].copy()
                segment.iterations = iteration
                segment.converged = True
                live -= 1
                finished = True
        if (
            compact
            and finished
            and live
            and _COMPACT_FRACTION * (len(active) - live) >= len(active)
        ):
            survivors = [s for s in active if not s.converged]
            h = np.concatenate(
                [
                    h[packed.node_starts[i] : packed.node_starts[i] + s.num_local]
                    for i, s in enumerate(active)
                    if not s.converged
                ]
            )
            active = survivors
            packed = _pack(active)

    for local, segment in enumerate(active):
        if not segment.converged:
            start = packed.node_starts[local]
            segment.h = h[start : start + segment.num_local].copy()
            segment.iterations = iteration


def batched_explain(
    graph: AuthorityTransferDataGraph,
    base_node_ids: list[str],
    target_ids: Sequence[str],
    scores: np.ndarray,
    damping: float = DEFAULT_DAMPING,
    radius: int | None = 3,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_ADJUSTMENT_MAX_ITERATIONS,
    workers: int | None = None,
    pool: str = "thread",
    compact: bool = True,
) -> list[FlowExplanation]:
    """The full Figure 8 pipeline for many targets in one batched pass.

    The batched counterpart of :func:`repro.explain.explain`: one shared
    subgraph extraction (optionally across ``workers``) followed by one
    multi-target flow-adjustment fixpoint.  Per target, the result is
    bit-identical to the serial pipeline.
    """
    subgraphs = batched_build_explaining_subgraphs(
        graph, base_node_ids, target_ids, radius, workers=workers, pool=pool
    )
    return batched_adjust_flows(
        subgraphs,
        scores,
        damping,
        tolerance,
        max_iterations,
        compact=compact,
    )
