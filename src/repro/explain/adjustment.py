"""Flow adjustment on the explaining subgraph (Section 4, Equations 6-10).

The original flows ``Flow_0`` overcount: part of the authority entering a node
leaks out of the explaining subgraph and never reaches the target.  The paper
reduces each node's *incoming* flows by a factor ``h(v_k)`` satisfying the
fixpoint

    h(v_k) = sum over subgraph edges (v_k -> v_j) of  h(v_j) * alpha(v_k -> v_j)
                                                              (Equation 10)

with ``h(target) = 1`` fixed (the target's incoming flows are exactly what we
want to explain).  Theorem 1 shows the iteration converges — it is a PageRank
computation with in/out edges swapped and no damping.  The adjusted flows are

    Flow(v_i -> v_k) = h(v_k) * Flow_0(v_i -> v_k)            (Equation 7)

Note (Observation 2) that the converged ObjectRank2 scores are *not* needed to
compute ``h``; they only enter through ``Flow_0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError
from repro.explain.flows import local_node_outgoing_flow, original_edge_flows
from repro.explain.subgraph import ExplainingSubgraph
from repro.graph.authority import EdgeType
from repro.ranking.pagerank import DEFAULT_DAMPING, DEFAULT_TOLERANCE

DEFAULT_ADJUSTMENT_MAX_ITERATIONS = 1000


@dataclass
class FlowExplanation:
    """The fully adjusted explanation for one target object.

    ``edge_ids`` are ids into the underlying transfer graph's edge arrays;
    ``flows`` / ``original_flows`` are aligned with them.  ``reduction`` holds
    the converged ``h`` factors for every graph node in the subgraph.
    """

    subgraph: ExplainingSubgraph
    damping: float
    original_flows: np.ndarray
    flows: np.ndarray
    reduction: dict[int, float]
    iterations: int
    converged: bool
    residuals: list[float] = field(default_factory=list)

    # -- per-node aggregates -------------------------------------------------

    @property
    def graph(self):
        return self.subgraph.graph

    @property
    def edge_ids(self) -> np.ndarray:
        return self.subgraph.edge_ids

    def incoming_flow(self, node_index: int) -> float:
        """``I(v_k)`` (Equation 6a) under the adjusted flows."""
        mask = self.graph.edge_target[self.edge_ids] == node_index
        return float(self.flows[mask].sum())

    def outgoing_flow(self, node_index: int) -> float:
        """``O(v_k)`` (Equation 6b) under the adjusted flows."""
        mask = self.graph.edge_source[self.edge_ids] == node_index
        return float(self.flows[mask].sum())

    def outgoing_flow_by_node(self) -> dict[int, float]:
        """Adjusted outgoing flow for every subgraph node (one pass).

        Accumulates over subgraph-local indices — same edge-order summation
        as the per-edge loop it replaced, without the per-edge Python cost.
        """
        totals = local_node_outgoing_flow(self.subgraph, self.flows)
        return {
            node: float(total) for node, total in zip(self.subgraph.nodes, totals)
        }

    def target_inflow(self) -> float:
        """Total adjusted authority reaching the target — the explanation's
        headline number ("the total authority that v receives")."""
        return self.incoming_flow(self.subgraph.target)

    def adjusted_scores(self) -> dict[int, float]:
        """Adjusted node scores ``r~(v_k) = O(v_k) / d`` (Equation 8).

        The target keeps its original semantics (its incoming flows are
        unadjusted), so it is reported as its adjusted *inflow* divided by the
        damping factor.
        """
        scores = {
            node: total / self.damping
            for node, total in self.outgoing_flow_by_node().items()
        }
        scores[self.subgraph.target] = self.target_inflow() / self.damping
        return scores

    def flow_by_edge_type(self) -> dict[EdgeType, float]:
        """``F(e_S)``: total adjusted flow per edge type (Section 5.2)."""
        totals: dict[EdgeType, float] = {}
        for edge_id, flow in zip(self.edge_ids, self.flows):
            edge_type = self.graph.edge_type_of(int(edge_id))
            totals[edge_type] = totals.get(edge_type, 0.0) + float(flow)
        return totals

    def edge_flow_items(self) -> list[tuple[str, str, float]]:
        """Adjusted flows as ``(source_id, target_id, flow)`` triples."""
        return [
            (
                self.graph.node_id_of(int(self.graph.edge_source[e])),
                self.graph.node_id_of(int(self.graph.edge_target[e])),
                float(f),
            )
            for e, f in zip(self.edge_ids, self.flows)
        ]


def adjust_flows(
    subgraph: ExplainingSubgraph,
    scores: np.ndarray,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_ADJUSTMENT_MAX_ITERATIONS,
    raise_on_divergence: bool = False,
) -> FlowExplanation:
    """Run the Explaining-ObjectRank2 fixpoint (Figure 8, steps 3-7).

    ``scores`` is the converged ObjectRank2 vector for the query.  Returns a
    :class:`FlowExplanation` with the adjusted flows; ``iterations`` is the
    count reported in Table 3 of the paper.
    """
    graph = subgraph.graph
    edge_ids = subgraph.edge_ids
    flow0 = original_edge_flows(graph, scores, damping, edge_ids)

    if subgraph.is_empty:
        return FlowExplanation(
            subgraph, damping, flow0, flow0.copy(), {subgraph.target: 1.0}, 0, True
        )

    # Dense working arrays over the subgraph's local node numbering.
    # ``nodes`` is sorted, so local indices are one searchsorted per endpoint
    # array instead of a per-edge Python loop over a dict.
    num_local = subgraph.num_nodes
    target_local = int(np.searchsorted(subgraph.nodes_array, subgraph.target))
    edge_src_local = subgraph.edge_src_local
    edge_dst_local = subgraph.edge_dst_local
    rates = graph.edge_rate[edge_ids]

    h = np.ones(num_local)
    residuals: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        contributions = h[edge_dst_local] * rates
        new_h = np.zeros(num_local)
        np.add.at(new_h, edge_src_local, contributions)
        new_h[target_local] = 1.0
        residual = float(np.abs(new_h - h).max())
        residuals.append(residual)
        h = new_h
        if residual < tolerance:
            converged = True
            break
    if not converged and raise_on_divergence:
        raise ConvergenceError("explaining flow adjustment", iterations, residuals[-1])

    flows = h[edge_dst_local] * flow0  # Equation 7
    reduction = {node: float(h[i]) for i, node in enumerate(subgraph.nodes)}
    return FlowExplanation(
        subgraph, damping, flow0, flows, reduction, iterations, converged, residuals
    )
