"""Original (unadjusted) authority flows on edges (Section 4, Equation 5).

At the convergence state of ObjectRank2 for query ``Q``, the authority flow
on an edge ``v_i -> v_j`` of the authority transfer data graph is

    Flow_0(v_i -> v_j) = d * alpha(v_i -> v_j) * r^Q(v_i)       (Equation 5)

i.e. the damped share of ``v_i``'s converged score that the edge's transfer
rate sends onward.  The flow-adjustment stage of :mod:`repro.explain.adjustment`
then reduces these flows to the part that eventually reaches the target.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graph.transfer_graph import AuthorityTransferDataGraph

if TYPE_CHECKING:  # subgraph imports nothing from here; annotation only
    from repro.explain.subgraph import ExplainingSubgraph


def original_edge_flows(
    graph: AuthorityTransferDataGraph,
    scores: np.ndarray,
    damping: float,
    edge_ids: np.ndarray | None = None,
) -> np.ndarray:
    """``Flow_0`` for the given transfer edges (default: all edges).

    ``scores`` is the converged ObjectRank2 vector ``r^Q`` over all nodes.
    """
    if edge_ids is None:
        edge_ids = np.arange(graph.num_edges, dtype=np.int64)
    sources = graph.edge_source[edge_ids]
    return damping * graph.edge_rate[edge_ids] * scores[sources]


def node_outgoing_flow(
    graph: AuthorityTransferDataGraph,
    edge_ids: np.ndarray,
    flows: np.ndarray,
) -> np.ndarray:
    """Sum of ``flows`` grouped by edge source, over all graph nodes."""
    totals = np.zeros(graph.num_nodes)
    np.add.at(totals, graph.edge_source[edge_ids], flows)
    return totals


def node_incoming_flow(
    graph: AuthorityTransferDataGraph,
    edge_ids: np.ndarray,
    flows: np.ndarray,
) -> np.ndarray:
    """Sum of ``flows`` grouped by edge target, over all graph nodes."""
    totals = np.zeros(graph.num_nodes)
    np.add.at(totals, graph.edge_target[edge_ids], flows)
    return totals


def local_node_outgoing_flow(
    subgraph: "ExplainingSubgraph", flows: np.ndarray
) -> np.ndarray:
    """Per-node outgoing flow over *subgraph-local* indices.

    Aligned with ``subgraph.nodes``; allocates ``num_local`` floats instead of
    a dense ``graph.num_nodes`` array, which matters when content
    reformulation aggregates a small explanation per feedback object over a
    large graph.  Accumulation runs in edge order, so totals are bit-identical
    to a sequential per-edge sum.
    """
    totals = np.zeros(subgraph.num_nodes)
    np.add.at(totals, subgraph.edge_src_local, flows)
    return totals


def local_node_incoming_flow(
    subgraph: "ExplainingSubgraph", flows: np.ndarray
) -> np.ndarray:
    """Per-node incoming flow over *subgraph-local* indices (see above)."""
    totals = np.zeros(subgraph.num_nodes)
    np.add.at(totals, subgraph.edge_dst_local, flows)
    return totals
