"""Explaining-subgraph construction (Section 4, construction stage).

For a query ``Q`` and a target object ``v``, the explaining subgraph
``G_v^Q`` contains all nodes and edges of the authority transfer data graph
that lie on a directed path from the base set ``S(Q)`` to ``v`` — i.e. all
edges that can potentially carry authority flow to ``v``.  It is built in two
breadth-first passes:

1. *backward*: from ``v`` against edge direction, collecting the temporary
   subgraph ``D_1`` of nodes with a path to ``v`` (optionally limited to a
   radius ``L``; the paper finds ``L = 3`` adequate);
2. *forward*: from the base-set nodes inside ``D_1``, following edges whose
   endpoints both lie in ``D_1``; every node and edge traversed enters
   ``G_v^Q``.

Only edges with a strictly positive transfer rate are traversed — zero-rate
edges (e.g. DBLP's "cited" direction with rate 0.0) carry no authority.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExplanationError
from repro.graph.transfer_graph import AuthorityTransferDataGraph


@dataclass
class ExplainingSubgraph:
    """The explaining subgraph ``G_v^Q`` over dense node indices.

    ``depth_to_target`` maps each node to its shortest-path distance (in
    edges) to the target inside the subgraph — the ``D(v_k)`` of the
    content-based reformulation (Equation 11).
    """

    graph: AuthorityTransferDataGraph
    target: int
    nodes: list[int]
    edge_ids: np.ndarray
    base_nodes: list[int]
    depth_to_target: dict[int, int]
    radius: int | None = None
    _node_set: set[int] = field(default_factory=set, repr=False)
    _nodes_array: np.ndarray | None = field(default=None, repr=False, compare=False)
    _edge_src_local: np.ndarray | None = field(default=None, repr=False, compare=False)
    _edge_dst_local: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._node_set = set(self.nodes)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edge_ids)

    @property
    def is_empty(self) -> bool:
        """True when no authority can reach the target (no base-set path)."""
        return self.num_edges == 0

    def contains_node(self, index: int) -> bool:
        return index in self._node_set

    @property
    def nodes_array(self) -> np.ndarray:
        """``nodes`` as a sorted int64 array (cached; backs local indexing)."""
        if self._nodes_array is None:
            self._nodes_array = np.asarray(self.nodes, dtype=np.int64)
        return self._nodes_array

    def local_indices_of(self, global_indices: np.ndarray) -> np.ndarray:
        """Positions of graph node indices inside the sorted ``nodes`` array.

        Callers must pass indices of subgraph members; ``nodes`` is sorted by
        construction, so this is one ``searchsorted`` instead of a dict build.
        """
        return np.searchsorted(self.nodes_array, global_indices)

    @property
    def edge_src_local(self) -> np.ndarray:
        """Subgraph-local source index of every subgraph edge (cached)."""
        if self._edge_src_local is None:
            self._edge_src_local = self.local_indices_of(
                self.graph.edge_source[self.edge_ids]
            )
        return self._edge_src_local

    @property
    def edge_dst_local(self) -> np.ndarray:
        """Subgraph-local target index of every subgraph edge (cached)."""
        if self._edge_dst_local is None:
            self._edge_dst_local = self.local_indices_of(
                self.graph.edge_target[self.edge_ids]
            )
        return self._edge_dst_local

    @property
    def target_id(self) -> str:
        return self.graph.node_id_of(self.target)

    def node_ids(self) -> list[str]:
        return [self.graph.node_id_of(i) for i in self.nodes]


def build_explaining_subgraph(
    graph: AuthorityTransferDataGraph,
    base_node_ids: list[str],
    target_id: str,
    radius: int | None = None,
    within: np.ndarray | None = None,
) -> ExplainingSubgraph:
    """Build ``G_v^Q`` for ``target_id`` given the query's base set.

    ``radius`` limits the backward pass to paths of at most that many edges
    (the paper's ``L``); ``None`` means unbounded.  ``within`` (node indices)
    confines both passes to the given nodes — two-stage results explain flow
    through the candidate neighborhood only, matching the subgraph their
    scores were actually computed on.
    """
    if radius is not None and radius < 1:
        raise ExplanationError(f"radius must be at least 1, got {radius}")
    target = graph.index_of(target_id)
    base_indices = [graph.index_of(nid) for nid in base_node_ids]
    allowed: set[int] | None = None
    if within is not None:
        allowed = {int(index) for index in within}
        # The target always belongs to its own explanation, even when it
        # fell outside the restriction (an empty explanation still names it).
        allowed.add(target)

    # Stage 1: backward BFS from the target; record depth-to-target.
    depth: dict[int, int] = {target: 0}
    frontier: deque[int] = deque([target])
    while frontier:
        node = frontier.popleft()
        node_depth = depth[node]
        if radius is not None and node_depth >= radius:
            continue
        for edge_id in graph.in_edge_ids(node):
            if graph.edge_rate[edge_id] <= 0.0:
                continue
            source = int(graph.edge_source[edge_id])
            if source not in depth and (allowed is None or source in allowed):
                depth[source] = node_depth + 1
                frontier.append(source)

    # Stage 2: forward BFS from base-set nodes within the temporary subgraph.
    roots = [b for b in base_indices if b in depth]
    reached: set[int] = set(roots)
    kept_edges: list[int] = []
    frontier = deque(roots)
    while frontier:
        node = frontier.popleft()
        for edge_id in graph.out_edge_ids(node):
            if graph.edge_rate[edge_id] <= 0.0:
                continue
            dest = int(graph.edge_target[edge_id])
            if dest not in depth:
                continue
            kept_edges.append(int(edge_id))
            if dest not in reached:
                reached.add(dest)
                frontier.append(dest)

    # The target belongs to the subgraph even when nothing reaches it, so an
    # "empty explanation" still names the object being explained.
    reached.add(target)
    nodes = sorted(reached)
    return ExplainingSubgraph(
        graph=graph,
        target=target,
        nodes=nodes,
        edge_ids=np.asarray(sorted(kept_edges), dtype=np.int64),
        base_nodes=[b for b in roots if b in reached],
        depth_to_target={n: depth[n] for n in nodes},
        radius=radius,
    )
