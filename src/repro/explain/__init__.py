"""Result explanation: explaining subgraphs and flow adjustment
(Section 4, Equations 5-10, Figure 8)."""

from repro.explain.adjustment import FlowExplanation, adjust_flows
from repro.explain.batch import (
    SubgraphExtractor,
    batched_adjust_flows,
    batched_build_explaining_subgraphs,
    batched_explain,
)
from repro.explain.flows import (
    local_node_incoming_flow,
    local_node_outgoing_flow,
    node_incoming_flow,
    node_outgoing_flow,
    original_edge_flows,
)
from repro.explain.paths import FlowPath, top_paths
from repro.explain.render import to_dot, to_text
from repro.explain.svg import to_svg
from repro.explain.subgraph import ExplainingSubgraph, build_explaining_subgraph

__all__ = [
    "ExplainingSubgraph",
    "FlowExplanation",
    "FlowPath",
    "SubgraphExtractor",
    "adjust_flows",
    "batched_adjust_flows",
    "batched_build_explaining_subgraphs",
    "batched_explain",
    "build_explaining_subgraph",
    "local_node_incoming_flow",
    "local_node_outgoing_flow",
    "node_incoming_flow",
    "node_outgoing_flow",
    "original_edge_flows",
    "to_dot",
    "to_svg",
    "to_text",
    "top_paths",
]


def explain(
    graph,
    base_node_ids,
    target_id,
    scores,
    damping=0.85,
    radius=3,
    tolerance=0.0001,
):
    """Convenience one-shot: build the explaining subgraph and adjust flows.

    This is the full Explain-ObjectRank algorithm of Figure 8.  ``scores`` is
    the converged ObjectRank2 vector for the query whose result is being
    explained; ``radius`` is the paper's ``L`` (default 3).
    """
    subgraph = build_explaining_subgraph(graph, base_node_ids, target_id, radius)
    return adjust_flows(subgraph, scores, damping, tolerance)
