"""Interactive search-explain-feedback shell (the paper's Web-demo analogue).

Started via ``repro repl <dataset>``.  Commands:

    query <keywords...>     run a fresh ObjectRank2 query
    explain <rank>          explain the result at the given 1-based rank
    mark <rank> [rank...]   mark results relevant and reformulate
    rates                   show the current (possibly learned) transfer rates
    vector                  show the current query vector
    help                    this list
    quit                    leave

The shell is a thin, testable layer: it reads commands from any iterable and
writes through a callable, so tests drive it without a terminal.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.config import SystemConfig
from repro.core.system import ObjectRankSystem
from repro.datasets.base import Dataset
from repro.errors import ReproError
from repro.explain.render import to_text
from repro.ranking.compare import ranking_delta

PROMPT = "repro> "


class ReplSession:
    """One interactive session over a dataset."""

    def __init__(self, dataset: Dataset, config: SystemConfig | None = None):
        self.dataset = dataset
        self.system = ObjectRankSystem(
            dataset.data_graph, dataset.transfer_schema, config or SystemConfig()
        )
        self._last_top: list[str] = []

    # -- command handlers -----------------------------------------------------

    def handle(self, line: str) -> list[str]:
        """Execute one command line; returns output lines."""
        parts = line.strip().split()
        if not parts:
            return []
        command, arguments = parts[0].lower(), parts[1:]
        handlers: dict[str, Callable[[list[str]], list[str]]] = {
            "query": self._cmd_query,
            "explain": self._cmd_explain,
            "mark": self._cmd_mark,
            "rates": self._cmd_rates,
            "vector": self._cmd_vector,
            "help": self._cmd_help,
        }
        handler = handlers.get(command)
        if handler is None:
            return [f"unknown command {command!r}; try 'help'"]
        try:
            return handler(arguments)
        except ReproError as error:
            return [f"error: {error}"]

    def _caption(self, node_id: str) -> str:
        node = self.dataset.data_graph.node(node_id)
        name = (
            node.attributes.get("title")
            or node.attributes.get("name")
            or node.attributes.get("symbol")
            or node_id
        )
        return f"{node.label}: {name[:64]}"

    def _format_results(self, result) -> list[str]:
        self._last_top = [node_id for node_id, _ in result.top]
        lines = [
            f"{rank:3d}. [{score:.5f}] {self._caption(node_id)}"
            for rank, (node_id, score) in enumerate(result.top, start=1)
        ]
        lines.append(f"({result.iterations} ObjectRank2 iterations)")
        return lines

    def _resolve_ranks(self, arguments: list[str]) -> list[str]:
        if not self._last_top:
            raise ReproError("run a query first")
        node_ids = []
        for raw in arguments:
            rank = int(raw)
            if not 1 <= rank <= len(self._last_top):
                raise ReproError(f"rank {rank} is not in the last result list")
            node_ids.append(self._last_top[rank - 1])
        return node_ids

    def _cmd_query(self, arguments: list[str]) -> list[str]:
        if not arguments:
            return ["usage: query <keywords...>"]
        return self._format_results(self.system.query(" ".join(arguments)))

    def _cmd_explain(self, arguments: list[str]) -> list[str]:
        if len(arguments) != 1 or not arguments[0].isdigit():
            return ["usage: explain <rank>"]
        (target,) = self._resolve_ranks(arguments)
        return to_text(self.system.explain(target)).splitlines()

    def _cmd_mark(self, arguments: list[str]) -> list[str]:
        if not arguments or not all(a.isdigit() for a in arguments):
            return ["usage: mark <rank> [rank...]"]
        marked = self._resolve_ranks(arguments)
        before = list(self._last_top)
        outcome = self.system.feedback(marked)
        lines = [f"marked: {', '.join(marked)}", "reformulated results:"]
        lines.extend(self._format_results(outcome.result))
        delta = ranking_delta(before, self._last_top)
        lines.append(f"movement: {delta.summary()}")
        movers = delta.of_kind("up") + delta.of_kind("entered")
        for change in movers[:3]:
            lines.append(f"  {change}")
        return lines

    def _cmd_rates(self, _arguments: list[str]) -> list[str]:
        schema = self.system.current_rates
        return [f"{t}: {schema.rate(t):.3f}" for t in schema.edge_types()]

    def _cmd_vector(self, _arguments: list[str]) -> list[str]:
        vector = self.system.current_vector
        if vector is None:
            return ["(no query yet)"]
        return [f"{term}: {vector.weight(term):.3f}" for term in vector.terms]

    def _cmd_help(self, _arguments: list[str]) -> list[str]:
        return [
            "query <keywords...>   run a fresh ObjectRank2 query",
            "explain <rank>        explain the result at that rank",
            "mark <rank> [...]     mark results relevant and reformulate",
            "rates                 show current transfer rates",
            "vector                show current query vector",
            "quit                  leave",
        ]


def run_repl(
    dataset: Dataset,
    lines: Iterable[str],
    write: Callable[[str], None] = print,
    config: SystemConfig | None = None,
) -> int:
    """Drive a session from an iterable of input lines (stdin, a list, ...)."""
    session = ReplSession(dataset, config)
    write(f"dataset {dataset.name}: {dataset.num_nodes} nodes, "
          f"{dataset.num_edges} edges.  'help' lists commands.")
    for line in lines:
        if line.strip().lower() in {"quit", "exit"}:
            break
        for output in session.handle(line):
            write(output)
    return 0
