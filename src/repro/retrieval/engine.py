"""Stage 1 + stage 2 assembled: the two-stage retrieval engine.

Full ObjectRank2 pays a power iteration over the whole corpus for every
query, even though the user sees one page of results.  The two-stage engine
makes the per-query cost scale with that page instead:

1. **Candidate generation** — pruned top-N IR retrieval
   (:func:`repro.retrieval.wand.pruned_top_n`): exact BM25 top N, touching
   only postings whose impact bound can reach the running threshold.
2. **Authority reranking** — the focused-subgraph ObjectRank2 fixpoint
   (:func:`repro.ranking.focused.induced_objectrank`) on the candidates'
   ``horizon``-hop neighborhood, restarted from the candidates' normalized
   IR scores; then pluggable fusion (:mod:`repro.retrieval.fusion`) of the
   IR and authority signals.

Degenerate configurations collapse *bit-identically* onto existing paths —
``candidates >= |S(Q)|`` with authority-only fusion is exactly
:func:`repro.ranking.focused.focused_objectrank2` — because both run the
same induced-subgraph core on the same restart vector.  The property tests
pin this, which is what makes the fast path trustworthy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.scoring import Scorer
from repro.query.engine import SearchEngine, SearchResult, select_top
from repro.query.query import KeywordQuery, QueryVector
from repro.ranking.convergence import RankedResult
from repro.ranking.focused import focused_neighborhood, induced_objectrank
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
)
from repro.retrieval.fusion import DEFAULT_RRF_K, FUSION_MODES, fuse_scores
from repro.retrieval.wand import CandidateSet, pruned_top_n

DEFAULT_CANDIDATES = 200
DEFAULT_FUSION = "weighted"
DEFAULT_RERANK_HORIZON = 2


@dataclass
class TwoStageResult:
    """A two-stage ranking plus per-stage accounting."""

    ranked: RankedResult
    candidate_set: CandidateSet
    #: Sorted node indices of the candidates' rerank neighborhood.
    neighborhood: np.ndarray
    subgraph_edges: int
    horizon: int
    fusion: str
    fusion_weight: float
    stage1_seconds: float
    stage2_seconds: float

    @property
    def num_candidates(self) -> int:
        return len(self.candidate_set.candidates)

    @property
    def subgraph_nodes(self) -> int:
        return int(self.neighborhood.size)


def restricted_base_set(
    scorer: Scorer, query_vector: QueryVector, candidate_set: CandidateSet
) -> dict[str, float]:
    """Base-set weights over the candidates only, in ``S(Q)`` order.

    Mirrors :func:`repro.ranking.objectrank2.weighted_base_set` operation for
    operation — same document order (``documents_with_any``), same
    minimum-positive floor for zero scores, same summation order — so that
    when the candidates cover the whole base set the two are bit-identical.
    The raw scores are the stage-1 candidates' scores, which equal
    ``scorer.score`` floats exactly (the WAND invariant), so nothing is
    re-scored here.
    """
    terms = [t for t in query_vector.terms if query_vector.weight(t) > 0]
    scores = {c.doc_id: c.score for c in candidate_set.candidates}
    order = scorer.index.documents_with_any(terms)
    raw = {doc_id: scores[doc_id] for doc_id in order if doc_id in scores}
    positive = [w for w in raw.values() if w > 0]
    floor = min(positive) if positive else 1.0
    adjusted = {doc_id: (w if w > 0 else floor) for doc_id, w in raw.items()}
    total = sum(adjusted.values())
    # Adjusted weights are strictly positive, so only an empty candidate
    # overlap sums to zero — and then there is nothing to normalize.
    if total <= 0.0:
        return {}
    return {doc_id: w / total for doc_id, w in adjusted.items()}


def two_stage_rank(
    graph: AuthorityTransferDataGraph,
    scorer: Scorer,
    query_vector: QueryVector,
    candidates: int = DEFAULT_CANDIDATES,
    fusion: str = DEFAULT_FUSION,
    fusion_weight: float = 1.0,
    horizon: int = DEFAULT_RERANK_HORIZON,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    early_k: int | None = None,
    stable_iterations: int = 3,
    residual_guard: float = 0.05,
    rrf_k: float = DEFAULT_RRF_K,
    expand_cap: int | None = None,
    node_budget: int | None = None,
    max_horizon: int | None = None,
) -> TwoStageResult:
    """Rank ``query_vector`` with candidate generation + authority reranking.

    With authority-only fusion (``weighted`` at weight 1.0) the returned
    scores are the focused-subgraph authority scores over the whole rerank
    neighborhood — the focused-ObjectRank2 shape.  With a genuinely mixed
    fusion the scores are fused values over the candidates only (zeros
    elsewhere): the result *is* the reranked page.  ``early_k`` stops the
    rerank fixpoint once the top-``early_k`` sequence is stable instead of
    iterating to tolerance.  ``expand_cap`` bounds hub expansion;
    ``node_budget`` with ``max_horizon`` deepens the horizon adaptively for
    small base sets (see :func:`repro.ranking.focused.focused_neighborhood`);
    leave all three ``None`` for the exact focused semantics — the degenerate
    bit-identity with focused ObjectRank2 assumes the uncapped, fixed-horizon
    expansion.
    """
    if fusion not in FUSION_MODES:
        raise ValueError(f"unknown fusion mode: {fusion!r} (choose from {FUSION_MODES})")
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")

    start = time.perf_counter()
    candidate_set = pruned_top_n(scorer, query_vector, candidates)
    stage1_seconds = time.perf_counter() - start

    start = time.perf_counter()
    seeds = [graph.index_of(doc_id) for doc_id in candidate_set.doc_ids]
    nodes = np.asarray(
        focused_neighborhood(
            graph,
            seeds,
            horizon,
            expand_cap=expand_cap,
            node_budget=node_budget,
            max_horizon=max_horizon,
        ),
        dtype=np.int64,
    )
    base = restricted_base_set(scorer, query_vector, candidate_set)
    run = induced_objectrank(
        graph,
        nodes,
        base,
        damping,
        tolerance,
        max_iterations,
        early_k=early_k,
        stable_iterations=stable_iterations,
        residual_guard=residual_guard,
    )
    # repro-lint: ignore[RL005] exact endpoint check IS the degenerate config
    authority_only = fusion == "weighted" and fusion_weight == 1.0
    if authority_only:
        scores = run.scores
    else:
        candidate_indices = np.asarray(seeds, dtype=np.int64)
        ir_scores = np.asarray(
            [c.score for c in candidate_set.candidates], dtype=np.float64
        )
        fused = fuse_scores(
            fusion,
            ir_scores,
            run.scores[candidate_indices],
            authority_weight=fusion_weight,
            rrf_k=rrf_k,
        )
        scores = np.zeros(graph.num_nodes)
        # repro-lint: ignore[RL001] candidate doc ids are unique by WAND merge
        scores[candidate_indices] = fused
    stage2_seconds = time.perf_counter() - start

    ranked = RankedResult(
        node_ids=graph.node_ids,
        scores=scores,
        iterations=run.outcome.iterations,
        converged=run.outcome.converged,
        base_weights=base,
        residuals=run.outcome.residuals,
    )
    return TwoStageResult(
        ranked=ranked,
        candidate_set=candidate_set,
        neighborhood=run.nodes,
        subgraph_edges=run.edge_count,
        horizon=horizon,
        fusion=fusion,
        fusion_weight=fusion_weight,
        stage1_seconds=stage1_seconds,
        stage2_seconds=stage2_seconds,
    )


@dataclass
class TwoStageSearchResult(SearchResult):
    """A :class:`SearchResult` that also carries the two-stage accounting."""

    stages: TwoStageResult | None = None


@dataclass
class TwoStageEngine:
    """Two-stage retrieval bound to a :class:`SearchEngine`'s dataset.

    Mirrors :meth:`SearchEngine.search` (same query forms, per-call learned
    rates via shared transfer views, label filtering) so callers can switch
    retrieval modes without changing anything else.  The constructor fields
    are per-engine defaults; every ``search`` call may override them.
    """

    engine: SearchEngine
    candidates: int = DEFAULT_CANDIDATES
    fusion: str = DEFAULT_FUSION
    fusion_weight: float = 1.0
    horizon: int = DEFAULT_RERANK_HORIZON
    early_k: int | None = None
    rrf_k: float = field(default=DEFAULT_RRF_K)
    expand_cap: int | None = None
    node_budget: int | None = None
    max_horizon: int | None = None

    def search(
        self,
        query: KeywordQuery | QueryVector | str,
        top_k: int = 10,
        rates: AuthorityTransferSchemaGraph | None = None,
        labels: tuple[str, ...] | None = None,
        candidates: int | None = None,
        fusion: str | None = None,
        fusion_weight: float | None = None,
        horizon: int | None = None,
        early_k: int | None = None,
        expand_cap: int | None = None,
        node_budget: int | None = None,
        max_horizon: int | None = None,
    ) -> TwoStageSearchResult:
        vector = self.engine.query_vector(query)
        graph = self.engine.transfer_view(rates)
        start = time.perf_counter()
        stages = two_stage_rank(
            graph,
            self.engine.scorer,
            vector,
            candidates=candidates if candidates is not None else self.candidates,
            fusion=fusion if fusion is not None else self.fusion,
            fusion_weight=(
                fusion_weight if fusion_weight is not None else self.fusion_weight
            ),
            horizon=horizon if horizon is not None else self.horizon,
            damping=self.engine.damping,
            tolerance=self.engine.tolerance,
            max_iterations=self.engine.max_iterations,
            early_k=early_k if early_k is not None else self.early_k,
            rrf_k=self.rrf_k,
            expand_cap=expand_cap if expand_cap is not None else self.expand_cap,
            node_budget=node_budget if node_budget is not None else self.node_budget,
            max_horizon=max_horizon if max_horizon is not None else self.max_horizon,
        )
        elapsed = time.perf_counter() - start
        top = select_top(self.engine.data_graph, stages.ranked, top_k, labels)
        return TwoStageSearchResult(vector, stages.ranked, top, elapsed, stages=stages)
