"""Stage 1: pruned, vectorized top-N candidate generation.

The candidate generator answers "which N documents have the highest IR
score?" without fully scoring every document containing a query term.  It is
the max-score family [BCH+03] specialized to the in-memory index, evaluated
term-at-a-time over numpy arrays:

* every query term carries a precomputed *impact upper bound* — the scorer's
  :meth:`~repro.ir.scoring.Scorer.term_upper_bound`, derived from the index's
  per-term ``(max tf, min dl)`` statistics (:meth:`InvertedIndex.term_bound`);
* terms are processed in query order, each contributing a vectorized score
  increment to an accumulator over the base set ``S(Q)``;
* before each term, the best score still reachable by a document *not yet
  seen* is the sum of the remaining terms' bounds; once that falls
  **strictly** below the running threshold θ (the N-th best accumulated
  score), unseen documents are pruned — later postings only update documents
  already in the accumulator.

Pruning is *safe*, not approximate: a document is dropped only when its
remaining-bound ceiling is strictly below θ, every contribution is
non-negative (so partial scores are lower bounds and θ never shrinks), and
accumulation follows the exact float-addition order of ``scorer.score`` —
so the pruned top N is identical (same ids, same score floats, same
document-id tiebreak) to the exhaustive reference.  The property tests in
``tests/properties/test_retrieval_properties.py`` pin exactly that.

The vectorized scorer kernels in this module mirror the scalar expressions
of :mod:`repro.ir.scoring` operation for operation (and route ``log`` of
small integer term frequencies through ``math.log`` lookups), which is what
keeps the floats bit-identical rather than merely close.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import EmptyBaseSetError
from repro.ir.scoring import BM25Scorer, Scorer, TfIdfScorer, UniformScorer
from repro.query.query import QueryVector


@dataclass(frozen=True)
class Candidate:
    """One stage-1 hit: a document and its exact IR score."""

    doc_id: str
    score: float


@dataclass
class CandidateSet:
    """Top-N candidates in (score desc, doc id asc) order, plus accounting.

    ``evaluated`` counts documents fully scored; ``pruned`` counts documents
    of the base set excluded by the remaining-bound gate — their postings
    after the gate fired were never accumulated, which is where the saving
    comes from.
    """

    candidates: list[Candidate]
    evaluated: int
    pruned: int

    @property
    def doc_ids(self) -> list[str]:
        return [candidate.doc_id for candidate in self.candidates]

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self) -> Iterator[Candidate]:
        return iter(self.candidates)


def positive_query_weights(query_vector: QueryVector) -> dict[str, float]:
    """The positive-weight query terms, in query-vector order.

    Both the pruned and the exhaustive generator score documents against
    this same mapping, so their score floats are identical by construction.
    """
    return {
        term: query_vector.weight(term)
        for term in query_vector.terms
        if query_vector.weight(term) > 0
    }


def _log_by_table(values: np.ndarray) -> np.ndarray:
    """``math.log`` element-wise via a unique-value table.

    Term frequencies take few distinct small values; routing them through
    CPython's ``math.log`` (instead of ``np.log``'s SIMD path, which may
    differ in the last ulp) keeps vectorized tf-idf bit-identical to the
    scalar scorer.
    """
    unique, inverse = np.unique(values, return_inverse=True)
    table = np.array([math.log(value) for value in unique], dtype=np.float64)
    return table[inverse]


def _term_contributions(
    scorer: Scorer, term: str, doc_ids: list[str], raw_weight: float
) -> np.ndarray:
    """Vectorized ``scorer.weight(doc, term) * query factor`` over ``doc_ids``.

    Each branch mirrors the scalar expression of its scorer class operation
    for operation; unknown scorer types fall back to the scalar path.
    """
    index = scorer.index
    if isinstance(scorer, BM25Scorer):
        tf = np.asarray(index.term_frequencies(term), dtype=np.float64)
        dl = np.asarray(index.document_lengths(doc_ids), dtype=np.float64)
        avdl = index.average_document_length or 1.0
        saturation = ((scorer.k1 + 1) * tf) / (
            scorer.k1 * ((1 - scorer.b) + scorer.b * dl / avdl) + tf
        )
        return scorer.idf(term) * saturation * scorer.query_weight(raw_weight)
    if isinstance(scorer, TfIdfScorer):
        tf = np.asarray(index.term_frequencies(term), dtype=np.float64)
        n = index.num_documents
        df = index.document_frequency(term)
        weights = (1.0 + _log_by_table(tf)) * math.log(1.0 + n / df)
        return weights * raw_weight
    if isinstance(scorer, UniformScorer):
        # Uniform score is 0/1 overall, not additive — handled by the caller.
        return np.ones(len(doc_ids), dtype=np.float64)
    return np.array(
        [scorer.weight(doc_id, term) for doc_id in doc_ids], dtype=np.float64
    ) * (raw_weight if raw_weight > 0 else 0.0)


def _top_n_order(
    doc_ids: np.ndarray, scores: np.ndarray, n: int
) -> np.ndarray:
    """Indices of the top ``n`` by (score desc, doc id asc)."""
    order = np.lexsort((doc_ids, -scores))
    return order[:n]


def exhaustive_top_n(
    scorer: Scorer, query_vector: QueryVector, n: int
) -> CandidateSet:
    """Reference top-N: score every document containing any query term."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    weights = positive_query_weights(query_vector)
    docs = scorer.index.documents_with_any(list(weights))
    if not docs:
        raise EmptyBaseSetError(tuple(weights))
    scored = sorted(
        ((scorer.score(doc_id, weights), doc_id) for doc_id in docs),
        key=lambda pair: (-pair[0], pair[1]),
    )
    return CandidateSet(
        candidates=[Candidate(doc_id, score) for score, doc_id in scored[:n]],
        evaluated=len(docs),
        pruned=0,
    )


def pruned_top_n(scorer: Scorer, query_vector: QueryVector, n: int) -> CandidateSet:
    """Top-N candidates with vectorized max-score pruning.

    Exactly equal to :func:`exhaustive_top_n` (ids, scores, tiebreaks) while
    fully scoring only documents the remaining-bound gate lets through.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    weights = positive_query_weights(query_vector)
    terms = list(weights)
    index = scorer.index
    union = index.documents_with_any(terms)
    if not union:
        raise EmptyBaseSetError(tuple(terms))

    if isinstance(scorer, UniformScorer):
        # Uniform collapses to "any match scores 1.0": nothing to accumulate
        # (and nothing to prune — every document already has its final score).
        ids = np.asarray(union)
        ones = np.ones(len(union), dtype=np.float64)
        keep = _top_n_order(ids, ones, n)
        return CandidateSet(
            candidates=[Candidate(str(ids[i]), 1.0) for i in keep],
            evaluated=len(union),
            pruned=0,
        )

    slot = {doc_id: position for position, doc_id in enumerate(union)}
    accumulated = np.zeros(len(union), dtype=np.float64)
    seen = np.zeros(len(union), dtype=bool)

    bounds = [scorer.term_upper_bound(term, weights[term]) for term in terms]
    # remaining[i]: the best score a document first appearing at term i can
    # still reach — the sum of bounds from term i onward.
    remaining = np.cumsum(bounds[::-1])[::-1]

    threshold: float | None = None
    for position, term in enumerate(terms):
        doc_ids = index.documents_with_term(term)
        if not doc_ids:
            continue
        slots = np.fromiter(
            (slot[doc_id] for doc_id in doc_ids),
            dtype=np.int64,
            count=len(doc_ids),
        )
        contributions = _term_contributions(scorer, term, doc_ids, weights[term])
        if threshold is not None and remaining[position] < threshold:
            # Unseen documents can no longer reach the top N; only update
            # accumulators that already exist.
            known = seen[slots]
            slots = slots[known]
            contributions = contributions[known]
        # Postings list a document once per term, so the slots are unique
        # and plain fancy-index addition is exact.
        # repro-lint: ignore[RL001] one posting per (term, doc): slots unique
        accumulated[slots] += contributions
        seen[slots] = True
        evaluated = int(np.count_nonzero(seen))
        if evaluated >= n:
            top = np.partition(accumulated[seen], evaluated - n)
            threshold = float(top[evaluated - n])

    visible = np.flatnonzero(seen)
    ids = np.asarray(union)[visible]
    scores = accumulated[visible]
    keep = _top_n_order(ids, scores, n)
    return CandidateSet(
        candidates=[Candidate(str(ids[i]), float(scores[i])) for i in keep],
        evaluated=int(visible.size),
        pruned=len(union) - int(visible.size),
    )
