"""Pluggable score fusion between IR (stage 1) and authority (stage 2).

Three fusion families cover the usual design space:

* ``weighted`` — convex combination of the sum-normalized score vectors,
  ``w * authority + (1 - w) * ir``.  The endpoints are exact passthroughs:
  ``w = 1.0`` returns the authority scores *untouched* (the degenerate
  config whose bit-identity with focused ObjectRank2 the property tests
  pin), ``w = 0.0`` returns the IR scores untouched.
* ``multiplicative`` — product of the normalized vectors; a document must
  do well on both signals (the AND-ish combiner).
* ``rrf`` — reciprocal rank fusion [CCB09]: ``1/(k + rank)`` summed over
  both rankings; scale-free, robust when the score distributions are
  incomparable.
"""

from __future__ import annotations

import numpy as np

FUSION_MODES = ("weighted", "multiplicative", "rrf")
DEFAULT_RRF_K = 60.0


def _normalized(scores: np.ndarray) -> np.ndarray:
    """Sum-normalize to a probability-like vector (copy; zeros stay zeros)."""
    total = scores.sum()
    return scores / total if total > 0 else scores.copy()


def _ranks(scores: np.ndarray) -> np.ndarray:
    """1-based ranks under (score desc, position asc) — the library tiebreak."""
    order = np.argsort(-scores, kind="stable")
    ranks = np.empty(len(scores), dtype=np.float64)
    # repro-lint: ignore[RL001] order is an argsort permutation, no duplicates
    ranks[order] = np.arange(1, len(scores) + 1, dtype=np.float64)
    return ranks


def fuse_scores(
    mode: str,
    ir_scores: np.ndarray,
    authority_scores: np.ndarray,
    authority_weight: float = 1.0,
    rrf_k: float = DEFAULT_RRF_K,
) -> np.ndarray:
    """Fuse aligned IR and authority score vectors into one ranking signal.

    Both arrays are positionally aligned over the candidate list.  Raises
    ``ValueError`` for an unknown mode or an out-of-range weight.
    """
    ir = np.asarray(ir_scores, dtype=np.float64)
    authority = np.asarray(authority_scores, dtype=np.float64)
    if ir.shape != authority.shape:
        raise ValueError(
            f"score shapes differ: ir {ir.shape} vs authority {authority.shape}"
        )
    if mode == "weighted":
        if not 0.0 <= authority_weight <= 1.0:
            raise ValueError(
                f"authority_weight must be in [0, 1], got {authority_weight}"
            )
        # Exact passthrough at the endpoints — no normalization — so the
        # degenerate configs collapse bit-identically to the single-signal
        # rankings.
        # repro-lint: ignore[RL005] exact endpoint check IS the contract
        if authority_weight == 1.0:
            return authority.copy()
        # repro-lint: ignore[RL005] exact endpoint check IS the contract
        if authority_weight == 0.0:
            return ir.copy()
        return authority_weight * _normalized(authority) + (
            1.0 - authority_weight
        ) * _normalized(ir)
    if mode == "multiplicative":
        return _normalized(authority) * _normalized(ir)
    if mode == "rrf":
        if rrf_k <= 0:
            raise ValueError(f"rrf_k must be positive, got {rrf_k}")
        return 1.0 / (rrf_k + _ranks(authority)) + 1.0 / (rrf_k + _ranks(ir))
    raise ValueError(f"unknown fusion mode: {mode!r} (choose from {FUSION_MODES})")
