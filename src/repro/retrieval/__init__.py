"""Two-stage retrieval: pruned candidate generation + authority reranking.

The query engine whose cost scales with the result page, not the corpus:
stage 1 generates an exact top-N IR candidate set with WAND/max-score
pruning (:mod:`repro.retrieval.wand`), stage 2 reranks it with focused
ObjectRank2 over the candidate neighborhood and pluggable score fusion
(:mod:`repro.retrieval.engine`, :mod:`repro.retrieval.fusion`).
"""

from repro.retrieval.engine import (
    DEFAULT_CANDIDATES,
    DEFAULT_FUSION,
    DEFAULT_RERANK_HORIZON,
    TwoStageEngine,
    TwoStageResult,
    TwoStageSearchResult,
    restricted_base_set,
    two_stage_rank,
)
from repro.retrieval.fusion import DEFAULT_RRF_K, FUSION_MODES, fuse_scores
from repro.retrieval.wand import (
    Candidate,
    CandidateSet,
    exhaustive_top_n,
    positive_query_weights,
    pruned_top_n,
)

__all__ = [
    "Candidate",
    "CandidateSet",
    "DEFAULT_CANDIDATES",
    "DEFAULT_FUSION",
    "DEFAULT_RERANK_HORIZON",
    "DEFAULT_RRF_K",
    "FUSION_MODES",
    "TwoStageEngine",
    "TwoStageResult",
    "TwoStageSearchResult",
    "exhaustive_top_n",
    "fuse_scores",
    "positive_query_weights",
    "pruned_top_n",
    "restricted_base_set",
    "two_stage_rank",
]
