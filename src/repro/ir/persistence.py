"""Saving and loading inverted indexes.

Index construction is linear but not free (the DBLPcomplete-scale index
tokenizes ~32k documents); a deployed system builds it offline once.  The
format is plain JSON of the forward (document -> term -> tf) map plus
document lengths, from which the postings are rebuilt on load — halving the
file size relative to storing both directions.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.ir.index import InvertedIndex
from repro.ir.tokenize import Analyzer

#: Version 2 adds the per-term ``(max tf, min dl)`` impact bounds used by
#: WAND pruning; version-1 files still load, with bounds rebuilt on demand.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def save_index(index: InvertedIndex, path: str | Path) -> None:
    """Write ``index`` to ``path`` as JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "documents": {
            doc_id: {
                "length": index.document_length(doc_id),
                "terms": index.terms_of_document(doc_id),
            }
            for doc_id in _document_ids(index)
        },
        "bounds": {
            term: list(bound) for term, bound in index.term_bounds().items()
        },
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_index(path: str | Path, analyzer: Analyzer | None = None) -> InvertedIndex:
    """Read an index written by :func:`save_index`.

    ``analyzer`` restores the analyzer configuration for *future*
    ``add_document`` calls; the stored term statistics are loaded verbatim.
    Version-1 files carry no impact bounds — those indexes load fine and
    :meth:`InvertedIndex.term_bound` rebuilds each bound on first use.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported index format version: {version!r}")
    index = InvertedIndex(analyzer) if analyzer is not None else InvertedIndex()
    for doc_id, entry in payload["documents"].items():
        index._doc_terms[doc_id] = {t: int(tf) for t, tf in entry["terms"].items()}
        index._doc_length[doc_id] = int(entry["length"])
        index._total_length += int(entry["length"])
        for term, tf in entry["terms"].items():
            index._postings.setdefault(term, {})[doc_id] = int(tf)
    for term, bound in payload.get("bounds", {}).items():
        if term in index._postings:
            index._bounds[term] = (int(bound[0]), int(bound[1]))
    return index


def _document_ids(index: InvertedIndex) -> list[str]:
    return list(index._doc_length)
