"""Inverted index over the nodes of a data graph.

Every node is a document (Section 3: "a node is also viewed as a document").
The index records term frequencies, document frequencies, document lengths in
characters (the ``dl`` of Okapi, Equation 3) and the corpus statistics needed
by the scorers in :mod:`repro.ir.scoring`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.graph.data_graph import DataGraph
from repro.ir.tokenize import DEFAULT_ANALYZER, Analyzer


@dataclass(frozen=True)
class Posting:
    """One (document, term-frequency) entry in a postings list."""

    doc_id: str
    tf: int


class InvertedIndex:
    """An in-memory inverted index with tf/df/dl statistics.

    Build it either from raw ``(doc_id, text)`` pairs with
    :meth:`from_documents` or directly from a data graph with
    :meth:`from_graph`.
    """

    def __init__(self, analyzer: Analyzer = DEFAULT_ANALYZER) -> None:
        self.analyzer = analyzer
        self._postings: dict[str, dict[str, int]] = {}
        self._doc_terms: dict[str, dict[str, int]] = {}
        self._doc_length: dict[str, int] = {}
        self._total_length = 0
        # Per-term impact-bound statistics: term -> (max tf, min dl) over the
        # documents containing the term.  A present entry is always a valid
        # bound; removals drop the entry and :meth:`term_bound` rebuilds it
        # lazily from the postings list.
        self._bounds: dict[str, tuple[int, int]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_documents(
        cls, documents: Iterable[tuple[str, str]], analyzer: Analyzer = DEFAULT_ANALYZER
    ) -> "InvertedIndex":
        index = cls(analyzer)
        for doc_id, text in documents:
            index.add_document(doc_id, text)
        return index

    @classmethod
    def from_graph(
        cls,
        graph: DataGraph,
        analyzer: Analyzer = DEFAULT_ANALYZER,
        include_metadata: bool = False,
    ) -> "InvertedIndex":
        """Index every node of ``graph``; node ids become document ids."""
        return cls.from_documents(
            ((node.node_id, node.text(include_metadata)) for node in graph.nodes()),
            analyzer,
        )

    def add_document(self, doc_id: str, text: str) -> None:
        """Index one document.  Re-adding an id replaces the old content."""
        if doc_id in self._doc_length:
            self.remove_document(doc_id)
        dl = len(text)
        self._doc_length[doc_id] = dl
        self._total_length += dl
        terms: dict[str, int] = {}
        for term in self.analyzer.terms(text):
            postings = self._postings.setdefault(term, {})
            postings[doc_id] = postings.get(doc_id, 0) + 1
            terms[term] = terms.get(term, 0) + 1
        self._doc_terms[doc_id] = terms
        for term, tf in terms.items():
            bound = self._bounds.get(term)
            if bound is not None:
                self._bounds[term] = (max(bound[0], tf), min(bound[1], dl))

    def copy(self) -> "InvertedIndex":
        """An independent copy with identical statistics and term order.

        Term and document iteration order (and therefore everything derived
        from it, e.g. precomputed-vocabulary order) is preserved, so a copy
        can stand in for the original in determinism-sensitive rebuilds.
        """
        clone = InvertedIndex(self.analyzer)
        clone._postings = {
            term: dict(postings) for term, postings in self._postings.items()
        }
        clone._doc_terms = {
            doc_id: dict(terms) for doc_id, terms in self._doc_terms.items()
        }
        clone._doc_length = dict(self._doc_length)
        clone._total_length = self._total_length
        clone._bounds = dict(self._bounds)
        return clone

    def remove_document(self, doc_id: str) -> None:
        """Drop a document from the index (used by residual-collection eval)."""
        if doc_id not in self._doc_length:
            return
        self._total_length -= self._doc_length.pop(doc_id)
        for term in self._doc_terms.pop(doc_id, ()):
            postings = self._postings[term]
            del postings[doc_id]
            if not postings:
                del self._postings[term]
            # The removed document may have carried the extreme statistic;
            # drop the bound and let term_bound rebuild it on demand.
            self._bounds.pop(term, None)

    # -- statistics ----------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return len(self._doc_length)

    @property
    def average_document_length(self) -> float:
        """``avdl`` of Equation 3 (characters, as in the paper)."""
        if not self._doc_length:
            return 0.0
        return self._total_length / len(self._doc_length)

    def document_length(self, doc_id: str) -> int:
        return self._doc_length.get(doc_id, 0)

    def has_document(self, doc_id: str) -> bool:
        return doc_id in self._doc_length

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def term_frequency(self, term: str, doc_id: str) -> int:
        return self._postings.get(term, {}).get(doc_id, 0)

    def terms_of_document(self, doc_id: str) -> dict[str, int]:
        """Forward view: term -> tf for one document (empty if unknown)."""
        return dict(self._doc_terms.get(doc_id, {}))

    def postings(self, term: str) -> list[Posting]:
        return [Posting(d, tf) for d, tf in self._postings.get(term, {}).items()]

    def documents_with_term(self, term: str) -> list[str]:
        return list(self._postings.get(term, ()))

    def term_frequencies(self, term: str) -> list[int]:
        """Term frequencies aligned with :meth:`documents_with_term` order.

        Bulk accessor for vectorized scoring: both views iterate the same
        postings dict, so ``zip(documents_with_term(t), term_frequencies(t))``
        reconstructs the postings list without per-entry lookups.
        """
        return list(self._postings.get(term, {}).values())

    def document_lengths(self, doc_ids: Iterable[str]) -> list[int]:
        """Document lengths for ``doc_ids`` (0 for unknown documents)."""
        return [self._doc_length.get(doc_id, 0) for doc_id in doc_ids]

    def documents_with_any(self, terms: Iterable[str]) -> list[str]:
        """Documents containing at least one of ``terms`` — the raw base set
        ``S(Q)`` of a keyword query, in deterministic first-hit order."""
        seen: dict[str, None] = {}
        for term in terms:
            for doc_id in self._postings.get(term, ()):
                seen.setdefault(doc_id)
        return list(seen)

    def vocabulary(self) -> list[str]:
        return list(self._postings)

    # -- impact bounds -------------------------------------------------------

    def term_bound(self, term: str) -> tuple[int, int] | None:
        """``(max tf, min dl)`` over the documents containing ``term``.

        These are the raw statistics from which any monotone scorer can derive
        a per-term score upper bound (BM25 saturation grows with tf and shrinks
        with dl), which is what makes WAND/max-score pruning safe.  Bounds are
        maintained incrementally on :meth:`add_document`, invalidated on
        :meth:`remove_document` and rebuilt here on demand.  Returns ``None``
        for terms absent from the index.
        """
        postings = self._postings.get(term)
        if not postings:
            return None
        bound = self._bounds.get(term)
        if bound is None:
            bound = (
                max(postings.values()),
                min(self._doc_length[doc_id] for doc_id in postings),
            )
            self._bounds[term] = bound
        return bound

    def term_bounds(self) -> dict[str, tuple[int, int]]:
        """All per-term bounds, computing any missing ones (for persistence)."""
        return {term: self.term_bound(term) for term in self._postings}

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InvertedIndex(documents={self.num_documents}, "
            f"terms={len(self._postings)})"
        )
