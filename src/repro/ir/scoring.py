"""IR scoring functions: Okapi BM25 (Equation 3) and tf-idf.

ObjectRank2 weights the base set of a query by IR scores:

    IRScore(v, Q) = v . Q                                   (Equation 2)

where ``v = [W(v, t_1), ..., W(v, t_m)]`` is the document vector over the
query terms and ``W(v, t)`` is a traditional IR weight such as Okapi/BM25
(Equation 3).  Scorers here expose both the per-term weight ``W(v, t)`` and
the full dot-product score.
"""

from __future__ import annotations

import math
from typing import Mapping, Protocol

from repro.ir.index import InvertedIndex


class Scorer(Protocol):
    """Anything that can weight a (document, term) pair and score a query."""

    index: InvertedIndex

    def weight(self, doc_id: str, term: str) -> float:
        """The IR weight ``W(v, t)`` of ``term`` for document ``doc_id``."""
        ...  # pragma: no cover - protocol

    def score(self, doc_id: str, query_weights: Mapping[str, float]) -> float:
        """``IRScore(v, Q)``: dot product of document and query vectors."""
        ...  # pragma: no cover - protocol

    def max_weight(self, term: str) -> float:
        """An upper bound on ``weight(doc, term)`` over every document.

        Derived from the index's per-term ``(max tf, min dl)`` statistics —
        the max-score bound that makes WAND pruning safe.
        """
        ...  # pragma: no cover - protocol

    def term_upper_bound(self, term: str, raw_weight: float) -> float:
        """Upper bound on the term's contribution to ``score`` for query
        weight ``raw_weight`` (document-side bound times the scorer's
        query-side factor)."""
        ...  # pragma: no cover - protocol


class BM25Scorer:
    """Okapi BM25 weighting, following Equation 3 of the paper.

    For a term ``t`` and document ``v``::

        W(v, t) = ln((n - df + 0.5) / (df + 0.5))
                  * (k1 + 1) tf / (k1 ((1 - b) + b dl/avdl) + tf)

    where ``dl`` is the document size in characters and ``avdl`` the average —
    the paper's stated choice of the document-length statistic.  The query-side
    saturation ``(k3 + 1) qtf / (k3 + qtf)`` is applied to the query weight in
    :meth:`score`.  The idf factor is clamped at zero so that base-set jump
    probabilities are never negative (the paper normalizes the scores of the
    base set "to sum to one, since they represent probabilities").
    """

    def __init__(
        self,
        index: InvertedIndex,
        k1: float = 1.2,
        b: float = 0.75,
        k3: float = 1000.0,
    ) -> None:
        if not 1.0 <= k1 <= 2.0:
            raise ValueError(f"k1 must be in [1.0, 2.0] (paper, Eq. 3), got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        if not 0.0 <= k3 <= 1000.0:
            raise ValueError(f"k3 must be in [0, 1000] (paper, Eq. 3), got {k3}")
        self.index = index
        self.k1 = k1
        self.b = b
        self.k3 = k3

    def idf(self, term: str) -> float:
        n = self.index.num_documents
        df = self.index.document_frequency(term)
        if df == 0 or n == 0:
            return 0.0
        return max(math.log((n - df + 0.5) / (df + 0.5)), 0.0)

    def weight(self, doc_id: str, term: str) -> float:
        tf = self.index.term_frequency(term, doc_id)
        if tf == 0:
            return 0.0
        dl = self.index.document_length(doc_id)
        avdl = self.index.average_document_length or 1.0
        saturation = ((self.k1 + 1) * tf) / (
            self.k1 * ((1 - self.b) + self.b * dl / avdl) + tf
        )
        return self.idf(term) * saturation

    def max_weight(self, term: str) -> float:
        """Upper-bounds :meth:`weight` over all documents containing ``term``.

        BM25 saturation is monotone increasing in ``tf`` and decreasing in
        ``dl``, so evaluating Equation 3 at ``(max tf, min dl)`` dominates
        every posting.  The expression mirrors :meth:`weight` term for term so
        the bound is exact (bit-identical) at the extreme document itself.
        """
        bound = self.index.term_bound(term)
        if bound is None:
            return 0.0
        max_tf, min_dl = bound
        avdl = self.index.average_document_length or 1.0
        saturation = ((self.k1 + 1) * max_tf) / (
            self.k1 * ((1 - self.b) + self.b * min_dl / avdl) + max_tf
        )
        return self.idf(term) * saturation

    def query_weight(self, raw_weight: float) -> float:
        """Query-side saturation ``(k3 + 1) qtf / (k3 + qtf)`` of Equation 3."""
        if raw_weight <= 0:
            return 0.0
        return ((self.k3 + 1) * raw_weight) / (self.k3 + raw_weight)

    def term_upper_bound(self, term: str, raw_weight: float) -> float:
        return self.max_weight(term) * self.query_weight(raw_weight)

    def score(self, doc_id: str, query_weights: Mapping[str, float]) -> float:
        return sum(
            self.weight(doc_id, term) * self.query_weight(qw)
            for term, qw in query_weights.items()
        )


class TfIdfScorer:
    """A classic ltc-style tf-idf scorer, provided as a calibration baseline."""

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index

    def weight(self, doc_id: str, term: str) -> float:
        tf = self.index.term_frequency(term, doc_id)
        if tf == 0:
            return 0.0
        n = self.index.num_documents
        df = self.index.document_frequency(term)
        return (1.0 + math.log(tf)) * math.log(1.0 + n / df)

    def max_weight(self, term: str) -> float:
        """Upper bound from max tf (tf-idf does not depend on ``dl``)."""
        bound = self.index.term_bound(term)
        if bound is None:
            return 0.0
        max_tf = bound[0]
        n = self.index.num_documents
        df = self.index.document_frequency(term)
        return (1.0 + math.log(max_tf)) * math.log(1.0 + n / df)

    def term_upper_bound(self, term: str, raw_weight: float) -> float:
        return self.max_weight(term) * raw_weight if raw_weight > 0 else 0.0

    def score(self, doc_id: str, query_weights: Mapping[str, float]) -> float:
        return sum(self.weight(doc_id, term) * qw for term, qw in query_weights.items())


class UniformScorer:
    """Degenerate scorer giving weight 1 to any contained term.

    With this scorer, ObjectRank2 collapses to the original ObjectRank's 0/1
    base set [BHP04]; it exists to make the ObjectRank-vs-ObjectRank2
    comparison of Table 2 a one-parameter switch.
    """

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index

    def weight(self, doc_id: str, term: str) -> float:
        return 1.0 if self.index.term_frequency(term, doc_id) > 0 else 0.0

    def max_weight(self, term: str) -> float:
        return 1.0 if term in self.index else 0.0

    def term_upper_bound(self, term: str, raw_weight: float) -> float:
        # score is 0/1 ("any term matches"), so one matched term's bound of
        # 1.0 already dominates the whole score.
        return self.max_weight(term) if raw_weight > 0 else 0.0

    def score(self, doc_id: str, query_weights: Mapping[str, float]) -> float:
        return 1.0 if any(
            self.weight(doc_id, term) > 0 and qw > 0 for term, qw in query_weights.items()
        ) else 0.0
