"""IR substrate: tokenization, inverted index, BM25/tf-idf scoring
(Section 3, Equations 2-3)."""

from repro.ir.index import InvertedIndex, Posting
from repro.ir.persistence import load_index, save_index
from repro.ir.scoring import BM25Scorer, Scorer, TfIdfScorer, UniformScorer
from repro.ir.tokenize import (
    DEFAULT_ANALYZER,
    DEFAULT_STOPWORDS,
    QUERY_ANALYZER,
    Analyzer,
    tokenize,
)

__all__ = [
    "Analyzer",
    "BM25Scorer",
    "DEFAULT_ANALYZER",
    "DEFAULT_STOPWORDS",
    "InvertedIndex",
    "Posting",
    "QUERY_ANALYZER",
    "Scorer",
    "TfIdfScorer",
    "UniformScorer",
    "load_index",
    "save_index",
    "tokenize",
]
