"""Tokenization and stopword handling for the IR substrate.

ObjectRank2 treats every node of the data graph as a document (Section 3);
this module turns a node's text into the keyword multiset used by the
inverted index and by the content-based reformulation's "ignoring stop
words" rule (Section 5.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(r"[a-z0-9]+")

# A compact English stopword list: enough to keep expansion terms meaningful
# without pulling in an external dependency.
DEFAULT_STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again all also an and any are as at be because been
    before being below between both but by can did do does doing down during
    each few for from further had has have having he her here hers him his how
    i if in into is it its itself just me more most my no nor not now of off
    on once only or other our ours out over own same she should so some such
    than that the their theirs them then there these they this those through
    to too under until up very was we were what when where which while who
    whom why will with you your yours
    """.split()
)


def tokenize(text: str) -> list[str]:
    """Lowercase ``text`` and split it into alphanumeric tokens."""
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class Analyzer:
    """A configurable text-to-terms pipeline.

    ``keep_stopwords`` retains stopwords in the index (they still never become
    expansion terms — Section 5.1 explicitly ignores them);
    ``min_token_length`` drops very short tokens such as single letters from
    initials.
    """

    stopwords: frozenset[str] = DEFAULT_STOPWORDS
    keep_stopwords: bool = False
    min_token_length: int = 1

    def terms(self, text: str) -> list[str]:
        """All index terms of ``text``, in order (with duplicates)."""
        tokens = tokenize(text)
        return [t for t in tokens if self._keep(t)]

    def unique_terms(self, text: str) -> list[str]:
        """Distinct index terms of ``text``, in first-occurrence order."""
        seen: dict[str, None] = {}
        for term in self.terms(text):
            seen.setdefault(term)
        return list(seen)

    def is_stopword(self, term: str) -> bool:
        return term in self.stopwords

    def _keep(self, token: str) -> bool:
        if len(token) < self.min_token_length:
            return False
        if not self.keep_stopwords and token in self.stopwords:
            return False
        return True


DEFAULT_ANALYZER = Analyzer()
# Analyzer used for query keywords: stopwords are kept so that a user query
# like ["the", "olap"] still matches what it can.
QUERY_ANALYZER = Analyzer(keep_stopwords=True)
