"""Project-specific static analysis: the invariant linter behind ``repro lint``.

Every silent-correctness bug fixed in PR 2 — the last-write-wins fancy
indexing in ``personalized_pagerank``, the ``transfer_view`` build-once
latch, the shared-rates mutation in ``SearchEngine`` — belongs to a
statically detectable pattern class.  This package encodes those classes as
AST checkers (RL001–RL006) and, since PR 5, *flow-sensitive* checkers
(RL007–RL009, see :mod:`repro.analysis.checkers`) that reason over
per-function control-flow graphs — so the next occurrence is caught in
review, not in production rankings.

Layers:

* :mod:`repro.analysis.findings` — the :class:`Finding` record;
* :mod:`repro.analysis.base` — the checker plugin API and registry;
* :mod:`repro.analysis.cfg` — intraprocedural CFG construction;
* :mod:`repro.analysis.dataflow` — the worklist fixpoint solver plus the
  reaching-definitions / live-variables reference instances;
* :mod:`repro.analysis.lockset` — the must-held-lockset analysis RL007 runs;
* :mod:`repro.analysis.callgraph` — the module-resolution project call
  graph (PR 8) behind the interprocedural checkers RL010–RL013;
* :mod:`repro.analysis.summaries` — bottom-up SCC-ordered function
  summaries (locks, blocking, resources, exceptions, cache-key tags);
* :mod:`repro.analysis.pragmas` — ``# repro-lint: ignore[RL001]`` inline
  suppressions;
* :mod:`repro.analysis.baseline` — the ``.repro-lint-baseline.json``
  accepted-findings file;
* :mod:`repro.analysis.runner` — file discovery and the (optionally
  process-parallel) lint driver;
* :mod:`repro.analysis.reporting` — text / JSON / GitHub-annotation / SARIF
  output.
"""

from repro.analysis.base import (
    Checker,
    ProjectChecker,
    SourceFile,
    all_checkers,
    call_chain_metadata,
    checker_codes,
    register,
)
from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    Project,
    build_call_graph,
)
from repro.analysis.summaries import (
    FunctionSummary,
    SummaryIndex,
    compute_summaries,
)
from repro.analysis.cfg import (
    BasicBlock,
    ControlFlowGraph,
    Edge,
    Header,
    WithEnter,
    WithExit,
    build_cfg,
)
from repro.analysis.dataflow import (
    DataflowProblem,
    LiveVariables,
    ReachingDefinitions,
    Solution,
    solve,
)
from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineEntry,
    load_baseline,
    save_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.pragmas import PragmaIndex, parse_pragmas
from repro.analysis.reporting import FORMATS, render
from repro.analysis.runner import LintReport, discover_files, lint_source, run_lint

__all__ = [
    "Checker",
    "ProjectChecker",
    "SourceFile",
    "all_checkers",
    "call_chain_metadata",
    "checker_codes",
    "register",
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "Project",
    "build_call_graph",
    "FunctionSummary",
    "SummaryIndex",
    "compute_summaries",
    "BasicBlock",
    "ControlFlowGraph",
    "Edge",
    "Header",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "DataflowProblem",
    "LiveVariables",
    "ReachingDefinitions",
    "Solution",
    "solve",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "save_baseline",
    "Finding",
    "PragmaIndex",
    "parse_pragmas",
    "FORMATS",
    "render",
    "LintReport",
    "discover_files",
    "lint_source",
    "run_lint",
]
