"""Inline suppression pragmas: ``# repro-lint: ignore[RL001]``.

Grammar (one pragma per comment, anywhere on the line):

* ``# repro-lint: ignore[RL001]`` — suppress RL001 on this line;
* ``# repro-lint: ignore[RL001,RL003]`` — suppress several codes;
* ``# repro-lint: ignore`` — suppress every rule on this line;
* ``# repro-lint: skip-file`` — suppress the whole file (first 5 lines only,
  so a stray comment deep in a module cannot silently disable analysis).

Anything after the closing bracket is free-form rationale and is encouraged:
a pragma without a why is the next reader's problem.  A pragma on the line
*above* a statement also covers that statement's first line, so multi-clause
lines stay readable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>ignore|skip-file)"
    r"(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)

#: ``skip-file`` must appear in the first N lines to take effect.
SKIP_FILE_WINDOW = 5


@dataclass
class PragmaIndex:
    """Parsed suppressions of one file: per-line code sets + skip-file flag."""

    skip_file: bool = False
    #: line number -> set of suppressed codes; the empty set means *all*.
    by_line: dict[int, set[str]] = field(default_factory=dict)

    def suppresses(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed at ``line`` (same line or line above)."""
        if self.skip_file:
            return True
        for candidate in (line, line - 1):
            codes = self.by_line.get(candidate)
            if codes is not None and (not codes or code in codes):
                return True
        return False


def parse_pragmas(lines: list[str]) -> PragmaIndex:
    """Scan source lines for pragmas; comments only, strings are not parsed."""
    index = PragmaIndex()
    for lineno, line in enumerate(lines, start=1):
        if "repro-lint" not in line:
            continue
        match = _PRAGMA.search(line)
        if match is None:
            continue
        if match.group("kind") == "skip-file":
            if lineno <= SKIP_FILE_WINDOW:
                index.skip_file = True
            continue
        raw = match.group("codes")
        codes = (
            {code.strip() for code in raw.split(",") if code.strip()}
            if raw
            else set()
        )
        existing = index.by_line.get(lineno)
        if existing is None:
            index.by_line[lineno] = codes
        elif not codes or not existing:
            index.by_line[lineno] = set()
        else:
            existing.update(codes)
    return index
