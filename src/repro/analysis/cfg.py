"""Intraprocedural control-flow graphs over Python AST.

:func:`build_cfg` turns one function body into a :class:`ControlFlowGraph`
of :class:`BasicBlock`\\ s connected by labeled :class:`Edge`\\ s.  The graph
is what the flow-sensitive checkers (RL007–RL009) and the generic solver in
:mod:`repro.analysis.dataflow` consume; the per-node visitors of RL001–RL006
never need it, which is why :meth:`repro.analysis.base.SourceFile.cfg_for`
builds CFGs lazily, per function, on first request.

Shape of the graph
------------------

* every *simple* statement lands in exactly one block's :attr:`BasicBlock.body`;
* every *compound* statement (``if``/``while``/``for``/``try``/``with``) is
  represented by one :class:`Header` marker in exactly one block — the point
  where its test/iterator/context expressions are evaluated;
* ``with`` bodies are bracketed by :class:`WithEnter`/:class:`WithExit`
  markers (one pair per ``with`` item) so lock-region analyses see acquire
  and release as ordinary transfer points — including the synthetic releases
  emitted on ``break``/``continue``/``return``/``raise`` paths that leave the
  ``with`` early;
* boolean short-circuit tests are decomposed: ``if a and b:`` becomes two
  condition blocks, each with its own ``true``/``false`` edges, so a
  dataflow instance can refine state per conjunct;
* ``try`` bodies over-approximate exceptions: every block created inside the
  body gets an ``except`` edge to every handler entry (plus ``raise`` edges
  to the innermost handlers), which is sound for the may/must analyses here;
* one distinguished exit block collects ``return``/``raise``/fall-off edges.

The coverage contract — every statement of the function, nested functions
excluded, appears exactly once across ``body`` items and ``Header`` markers —
is what the hypothesis property suite pins down.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Union

#: Edge labels.  ``true``/``false`` leave a block with a ``test`` (or a
#: ``for`` header: ``true`` = next item, ``false`` = exhausted); ``next`` is
#: unconditional fall-through; ``except`` over-approximates an exception.
EDGE_LABELS = ("next", "true", "false", "except")


@dataclass(frozen=True)
class Edge:
    """One directed edge between blocks, by index."""

    source: int
    target: int
    label: str = "next"


class Header:
    """The evaluation point of a compound statement's header.

    For ``if``/``while`` the header evaluates the (first leaf of the) test;
    for ``for`` it advances the iterator and binds the target; for ``with``
    it evaluates the context expressions; for ``try`` it is a no-op anchor.
    """

    __slots__ = ("stmt",)

    def __init__(self, stmt: ast.stmt) -> None:
        self.stmt = stmt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Header({type(self.stmt).__name__}@{self.stmt.lineno})"


class WithEnter:
    """A context manager was entered (its ``__enter__`` ran)."""

    __slots__ = ("stmt", "item")

    def __init__(self, stmt: ast.With | ast.AsyncWith, item: ast.withitem) -> None:
        self.stmt = stmt
        self.item = item

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WithEnter(@{self.stmt.lineno})"


class WithExit:
    """A context manager was exited (its ``__exit__`` ran)."""

    __slots__ = ("stmt", "item")

    def __init__(self, stmt: ast.With | ast.AsyncWith, item: ast.withitem) -> None:
        self.stmt = stmt
        self.item = item

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WithExit(@{self.stmt.lineno})"


#: What a block's ``body`` list may hold.
BlockItem = Union[ast.stmt, Header, WithEnter, WithExit]


@dataclass
class BasicBlock:
    """A straight-line run of block items, optionally ending in a branch."""

    index: int
    body: list[BlockItem] = field(default_factory=list)
    #: The branch condition evaluated after ``body`` (``None`` when the block
    #: ends unconditionally or at a ``for`` header, which has no test expr).
    test: ast.expr | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BasicBlock({self.index}, {len(self.body)} items)"


class ControlFlowGraph:
    """Blocks + edges of one function; entry is block 0, exit is dedicated."""

    def __init__(self, func: ast.AST | None = None) -> None:
        self.func = func
        self.blocks: list[BasicBlock] = []
        self.edges: list[Edge] = []
        self._succ: dict[int, list[Edge]] = {}
        self._pred: dict[int, list[Edge]] = {}
        self.entry = self._new_block()
        self.exit = self._new_block()

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        self._succ[block.index] = []
        self._pred[block.index] = []
        return block

    def add_edge(self, source: int, target: int, label: str = "next") -> None:
        if label not in EDGE_LABELS:
            raise ValueError(f"unknown edge label {label!r}")
        edge = Edge(source, target, label)
        if edge in self._succ[source]:
            return
        self.edges.append(edge)
        self._succ[source].append(edge)
        self._pred[target].append(edge)

    def successors(self, block: BasicBlock | int) -> list[Edge]:
        index = block.index if isinstance(block, BasicBlock) else block
        return list(self._succ[index])

    def predecessors(self, block: BasicBlock | int) -> list[Edge]:
        index = block.index if isinstance(block, BasicBlock) else block
        return list(self._pred[index])

    def covered_statements(self) -> list[ast.stmt]:
        """Every statement the graph covers, in no particular order.

        Simple statements appear as block items; compound statements appear
        through their :class:`Header` marker.  The property suite asserts
        this list matches the function's own statements exactly once each.
        """
        covered: list[ast.stmt] = []
        for block in self.blocks:
            for item in block.body:
                if isinstance(item, Header):
                    covered.append(item.stmt)
                elif isinstance(item, ast.stmt):
                    covered.append(item)
        return covered

    def walk_items(self) -> Iterator[tuple[BasicBlock, int, BlockItem]]:
        """Every ``(block, position, item)`` triple across the graph."""
        for block in self.blocks:
            for position, item in enumerate(block.body):
                yield block, position, item


#: Compound statements that get a Header marker of their own.
_COMPOUND = (
    ast.If,
    ast.While,
    ast.For,
    ast.AsyncFor,
    ast.Try,
    ast.With,
    ast.AsyncWith,
)
if hasattr(ast, "TryStar"):  # pragma: no cover - 3.11+
    _COMPOUND = _COMPOUND + (ast.TryStar,)


class _Frame:
    """Builder state for one enclosing loop: jump targets + with depth."""

    __slots__ = ("head", "after", "with_depth")

    def __init__(self, head: int, after: int, with_depth: int) -> None:
        self.head = head
        self.after = after
        self.with_depth = with_depth


class _Builder:
    def __init__(self, func: ast.AST | None) -> None:
        self.cfg = ControlFlowGraph(func)
        self.current = self.cfg.entry
        #: innermost-last stack of enclosing loops.
        self.loops: list[_Frame] = []
        #: innermost-last stack of handler-entry block index lists.
        self.handlers: list[list[int]] = []
        #: innermost-last stack of open ``with`` items (for early exits).
        self.withs: list[tuple[ast.With | ast.AsyncWith, ast.withitem]] = []

    # -- plumbing ----------------------------------------------------------

    def _start_block(self) -> BasicBlock:
        """A fresh block that becomes current (no implicit edge)."""
        self.current = self.cfg._new_block()
        return self.current

    def _goto(self, target: int, label: str = "next") -> None:
        self.cfg.add_edge(self.current.index, target, label)

    def _emit_with_exits(self, down_to: int) -> None:
        """Synthetic releases for every ``with`` open above ``down_to``."""
        for stmt, item in reversed(self.withs[down_to:]):
            self.current.body.append(WithExit(stmt, item))

    def _raise_targets(self) -> list[tuple[int, str]]:
        """Where a raise can land: innermost handlers, else the exit block."""
        if self.handlers:
            return [(index, "except") for index in self.handlers[-1]]
        return [(self.cfg.exit.index, "next")]

    # -- statements --------------------------------------------------------

    def build_body(self, statements: list[ast.stmt]) -> None:
        for stmt in statements:
            self.build_statement(stmt)

    def build_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._build_if(stmt)
        elif isinstance(stmt, ast.While):
            self._build_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._build_for(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._build_with(stmt)
        elif isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            self._build_try(stmt)
        elif isinstance(stmt, ast.Return):
            self.current.body.append(stmt)
            self._emit_with_exits(0)
            self._goto(self.cfg.exit.index)
            self._start_block()
        elif isinstance(stmt, ast.Raise):
            self.current.body.append(stmt)
            self._emit_with_exits(0)
            for target, label in self._raise_targets():
                self._goto(target, label)
            self._start_block()
        elif isinstance(stmt, ast.Break):
            self.current.body.append(stmt)
            if self.loops:
                frame = self.loops[-1]
                self._emit_with_exits(frame.with_depth)
                self._goto(frame.after)
            else:  # break outside a loop: syntactically invalid, stay sound
                self._goto(self.cfg.exit.index)
            self._start_block()
        elif isinstance(stmt, ast.Continue):
            self.current.body.append(stmt)
            if self.loops:
                frame = self.loops[-1]
                self._emit_with_exits(frame.with_depth)
                self._goto(frame.head)
            else:
                self._goto(self.cfg.exit.index)
            self._start_block()
        else:
            # Simple statement (incl. nested FunctionDef/ClassDef, treated
            # as atomic definitions — their bodies get their own CFGs).
            self.current.body.append(stmt)

    # -- branches and short-circuit ----------------------------------------

    def _build_test(self, test: ast.expr, on_true: int, on_false: int) -> None:
        """Wire ``test`` from the current block, decomposing short-circuit.

        Leaves the builder on a fresh (unreachable-from-here) block; callers
        continue from their own join points.
        """
        if isinstance(test, ast.BoolOp) and isinstance(test.op, (ast.And, ast.Or)):
            values = list(test.values)
            for position, value in enumerate(values):
                last = position == len(values) - 1
                if last:
                    self._build_test(value, on_true, on_false)
                    return
                next_block = self.cfg._new_block()
                if isinstance(test.op, ast.And):
                    # value false -> whole test false; true -> next conjunct.
                    self._build_test(value, next_block.index, on_false)
                else:
                    self._build_test(value, on_true, next_block.index)
                self.current = next_block
            return
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._build_test(test.operand, on_false, on_true)
            return
        self._build_leaf_test(test, on_true, on_false)

    def _build_leaf_test(self, test: ast.expr, on_true: int, on_false: int) -> None:
        self.current.test = test
        self._goto(on_true, "true")
        self._goto(on_false, "false")
        self._start_block()

    def _build_if(self, stmt: ast.If) -> None:
        self.current.body.append(Header(stmt))
        then_entry = self.cfg._new_block()
        else_entry = self.cfg._new_block()
        after = self.cfg._new_block()
        self._build_test(stmt.test, then_entry.index, else_entry.index)

        self.current = then_entry
        self.build_body(stmt.body)
        self._goto(after.index)

        self.current = else_entry
        self.build_body(stmt.orelse)
        self._goto(after.index)

        self.current = after

    def _build_while(self, stmt: ast.While) -> None:
        head = self.cfg._new_block()
        body_entry = self.cfg._new_block()
        orelse_entry = self.cfg._new_block()
        after = self.cfg._new_block()
        self._goto(head.index)

        self.current = head
        self.current.body.append(Header(stmt))
        self._build_test(stmt.test, body_entry.index, orelse_entry.index)

        self.loops.append(_Frame(head.index, after.index, len(self.withs)))
        self.current = body_entry
        self.build_body(stmt.body)
        self._goto(head.index)
        self.loops.pop()

        self.current = orelse_entry
        self.build_body(stmt.orelse)
        self._goto(after.index)

        self.current = after

    def _build_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        head = self.cfg._new_block()
        body_entry = self.cfg._new_block()
        orelse_entry = self.cfg._new_block()
        after = self.cfg._new_block()
        self._goto(head.index)

        self.current = head
        # The header advances the iterator and binds the loop target.
        self.current.body.append(Header(stmt))
        self._goto(body_entry.index, "true")
        self._goto(orelse_entry.index, "false")

        self.loops.append(_Frame(head.index, after.index, len(self.withs)))
        self.current = body_entry
        self.build_body(stmt.body)
        self._goto(head.index)
        self.loops.pop()

        self.current = orelse_entry
        self.build_body(stmt.orelse)
        self._goto(after.index)

        self.current = after

    def _build_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        self.current.body.append(Header(stmt))
        for item in stmt.items:
            self.current.body.append(WithEnter(stmt, item))
            self.withs.append((stmt, item))
        self.build_body(stmt.body)
        for item in reversed(stmt.items):
            self.current.body.append(WithExit(stmt, item))
            self.withs.pop()

    def _build_try(self, stmt: ast.Try) -> None:
        after = self.cfg._new_block()
        handler_entries = [self.cfg._new_block() for _ in stmt.handlers]

        # Anchor the Try header, then isolate the protected body in fresh
        # blocks so except edges never claim statements before the try.
        self.current.body.append(Header(stmt))
        body_entry = self.cfg._new_block()
        self._goto(body_entry.index)
        self.current = body_entry

        self.handlers.append([block.index for block in handler_entries])
        first_body_block = len(self.cfg.blocks) - 1
        self.build_body(stmt.body)
        last_body_block = len(self.cfg.blocks)
        self.handlers.pop()

        # Over-approximate: any block of the protected body may raise into
        # any handler.  (Blocks of nested structures are included — they run
        # under the same protection.)
        for index in range(first_body_block, last_body_block):
            for handler_block in handler_entries:
                self.cfg.add_edge(index, handler_block.index, "except")

        else_entry = self.cfg._new_block()
        self._goto(else_entry.index)

        self.current = else_entry
        self.build_body(stmt.orelse)
        finally_entry = self.cfg._new_block()
        self._goto(finally_entry.index)

        for handler, entry in zip(stmt.handlers, handler_entries):
            self.current = entry
            self.build_body(handler.body)
            self._goto(finally_entry.index)

        self.current = finally_entry
        self.build_body(stmt.finalbody)
        self._goto(after.index)

        self.current = after


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module | list[ast.stmt],
) -> ControlFlowGraph:
    """The control-flow graph of one function body (or statement list)."""
    if isinstance(func, list):
        statements, node = func, None
    else:
        statements, node = func.body, func
    builder = _Builder(node)
    builder.build_body(statements)
    builder._goto(builder.cfg.exit.index)
    return builder.cfg


def assigned_names(item: BlockItem) -> set[str]:
    """Local names a block item defines (assignments, loop/with targets)."""
    names: set[str] = set()
    if isinstance(item, Header):
        stmt = item.stmt
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            names.update(_target_names(stmt.target))
        return names
    if isinstance(item, WithEnter):
        if item.item.optional_vars is not None:
            names.update(_target_names(item.item.optional_vars))
        return names
    if isinstance(item, WithExit):
        return names
    if isinstance(item, ast.Assign):
        for target in item.targets:
            names.update(_target_names(target))
    elif isinstance(item, (ast.AugAssign, ast.AnnAssign)):
        names.update(_target_names(item.target))
    elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.add(item.name)
    elif isinstance(item, (ast.Import, ast.ImportFrom)):
        for alias in item.names:
            bound = alias.asname or alias.name.split(".")[0]
            names.add(bound)
    return names


def _target_names(target: ast.expr) -> set[str]:
    """Plain names bound by an assignment target (no attributes/subscripts)."""
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
    return names
