"""Persistent cache for the interprocedural summary fixpoint.

The project phase of :func:`~repro.analysis.runner.run_lint` is dominated by
:func:`~repro.analysis.summaries.compute_summaries` — the bottom-up SCC
fixpoint over every function in the repository.  Summaries depend only on
the *content* of the parsed files, so a run over an unchanged tree can
reuse the previous run's result verbatim.  This module persists the
summary index between runs, keyed on a map of per-file content hashes:

* every file's SHA-256 must match (and the file *set* must be identical —
  an added or deleted module changes the call graph even when no shared
  file changed) for the cache to load;
* any mismatch, IO error, pickle error or version skew is a silent miss —
  the caller recomputes and rewrites, never fails.

:class:`~repro.analysis.summaries.FunctionSummary` carries no state tied
to a particular parse: witness chains are ``(function_id, line)`` tuples,
wire sinks are keyed ``(kind, line)``, and the AST nodes inside
``held_calls`` are only ever read for location attributes (checkers that
correlate by ``id(node)`` key off the freshly built call graph, not the
summary).  Pickling the ``by_id`` map is therefore faithful.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

#: Bump when FunctionSummary's shape (or anything pickled here) changes.
CACHE_VERSION = 1

#: Default cache file name, created next to the repository root.
CACHE_FILENAME = ".repro-lint-cache"


def file_hashes(files: list[tuple[Path, str]]) -> dict[str, str]:
    """``display name -> sha256(content)`` for every readable file.

    Unreadable files are skipped, matching what ``Project.from_paths``
    feeds the fixpoint; a file that *becomes* readable changes the map and
    invalidates the cache, which is the conservative direction.
    """
    hashes: dict[str, str] = {}
    for path, display in files:
        try:
            digest = hashlib.sha256(Path(path).read_bytes()).hexdigest()
        except OSError:
            continue
        hashes[display] = digest
    return hashes


def load_summaries(
    cache_path: str | Path, hashes: dict[str, str]
) -> dict | None:
    """The cached payload when it matches ``hashes`` exactly, else ``None``.

    The payload is ``{"by_id": {function_id: FunctionSummary},
    "converged": bool}``.  Every failure mode — missing file, truncated
    pickle, foreign object, version skew, hash mismatch — is a miss.
    """
    try:
        with open(cache_path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != CACHE_VERSION:
        return None
    if payload.get("hashes") != hashes:
        return None
    by_id = payload.get("by_id")
    if not isinstance(by_id, dict):
        return None
    return {"by_id": by_id, "converged": bool(payload.get("converged", True))}


def store_summaries(
    cache_path: str | Path, hashes: dict[str, str], index
) -> None:
    """Persist ``index`` (a SummaryIndex) keyed on ``hashes``, atomically.

    Written via a temp file + rename so a concurrent reader never sees a
    torn pickle; any IO failure is swallowed — the cache is an
    optimisation, not a deliverable.
    """
    payload = {
        "version": CACHE_VERSION,
        "hashes": hashes,
        "by_id": index.by_id,
        "converged": index.converged,
    }
    cache_path = Path(cache_path)
    try:
        fd, temp_name = tempfile.mkstemp(
            dir=str(cache_path.parent), prefix=cache_path.name + "."
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, cache_path)
        except BaseException:
            os.unlink(temp_name)
            raise
    except (OSError, pickle.PicklingError):
        return
