"""Abstract interpretation over the CFG: value ranges and wire taint.

Two instances of the generic :mod:`repro.analysis.dataflow` solver:

* :class:`ValueProblem` — constant propagation + the :class:`Interval`
  lattice of :mod:`repro.analysis.domains`, with transfer functions for
  arithmetic, ``len()`` facts for sequences, and comparison refinement
  through ``refine_edge`` (a ``total > 0`` guard really narrows ``total``
  to ``(0, +inf)`` on the true edge).  RL015/RL016/RL017 read its states.

* :class:`TaintProblem` — a may-analysis of *wire* data (HTTP bodies,
  query strings, ingest payloads).  Within one function the labels are
  symbolic — ``"wire"`` for a direct source call, ``("param", i)`` for
  the i-th parameter, ``("call", key)`` for a call site's result — and
  :func:`resolve_labels` expands the call labels against function
  summaries, so the interprocedural fixpoint in
  :mod:`repro.analysis.summaries` only moves small frozensets per round
  instead of re-running any dataflow.  Unknown callees contribute
  nothing, matching the summary engine's under-approximation discipline:
  absence of a fact keeps checkers quiet, it never invents findings.

Sanitizers follow the issue's contract: the typed wire parsers
(``mutation_from_json`` and the ``_optional_*``/``_require_*`` helpers)
return clean values, and an explicit range check on a tainted name
(``if idx < 0 or idx >= n: raise``, membership in a known container)
clears its labels on the refined edges.  Plain ``int()``/``float()`` are
*not* sanitizers — a cast bounds the type, not the range.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass, field

from repro.analysis.base import call_name, literal_number
from repro.analysis.callgraph import CallSite, FunctionInfo, walk_in_scope
from repro.analysis.cfg import (
    BasicBlock,
    BlockItem,
    Header,
    WithEnter,
    WithExit,
    assigned_names,
)
from repro.analysis.dataflow import DataflowProblem, Solution, solve
from repro.analysis.domains import (
    NON_NEGATIVE,
    TOP,
    Interval,
    join_value_states,
    state_get,
    state_kill,
    state_labels,
    state_set,
)

#: The one concrete taint label: data parsed off the wire, unvalidated.
WIRE = "wire"

#: Calls whose *result* is raw wire data, by bare/dotted name.
WIRE_SOURCE_NAMES = {"parse_qs", "urllib.parse.parse_qs"}
#: ...by attribute tail (``self._read_json_body()``, ``sock.recv()``).
WIRE_SOURCE_TAILS = {"_read_json_body", "recv", "recvfrom"}
#: ...by dotted suffix (``self.rfile.read`` is the HTTP body stream).
WIRE_SOURCE_SUFFIXES = ("rfile.read",)

#: Typed strict parsers of the serve/ingest tier: their results are clean.
SANITIZER_TAILS = {
    "mutation_from_json",
    "_require_str",
    "_optional_role",
    "_attributes",
    "_optional_int",
    "_optional_float",
    "_query_from_json",
}

#: Attribute tails that pass their receiver's taint through to the result.
PROPAGATING_TAILS = {
    "get",
    "items",
    "keys",
    "values",
    "pop",
    "strip",
    "lstrip",
    "rstrip",
    "split",
    "rsplit",
    "splitlines",
    "lower",
    "upper",
    "decode",
    "encode",
    "copy",
}

#: Rate-valued keyword arguments (mirrors RL006's syntactic vocabulary).
RATE_KEYWORDS = {"rates", "default_rate", "epsilon", "rate", "damping"}
#: Methods whose sole positional argument is a transfer rate.
SET_RATE_TAILS = {"set_rate", "set_default_rate"}

#: Single-argument builtins whose result has the length of their argument.
_LEN_PRESERVING_CALLS = {"sorted", "list", "tuple", "reversed"}

#: Container mutators that invalidate a tracked ``len()`` fact.
_LEN_MUTATORS = {
    "append",
    "extend",
    "insert",
    "pop",
    "remove",
    "clear",
    "add",
    "discard",
    "update",
    "popitem",
    "setdefault",
}


def _len_key(name: str) -> str:
    # ``:`` cannot appear in an identifier, so len facts share the state
    # namespace without colliding with variable facts.
    return f"len:{name}"


def _positional_params(node) -> list[str]:
    params = list(node.args.posonlyargs) + list(node.args.args)
    if params and params[0].arg in ("self", "cls"):
        params = params[1:]
    return [arg.arg for arg in params]


# -- the value domain ---------------------------------------------------------


class ValueProblem(DataflowProblem):
    """Interval states for local names (plus ``len:`` facts for sequences).

    States are ``frozenset`` of ``(name, Interval)`` with at most one pair
    per name; a missing name is ⊤.  ``None`` is the distinguished bottom —
    an unreachable program point — so the solver's join over not-yet-
    visited predecessors does not destroy information.
    """

    direction = "forward"

    def __init__(self, call_ranges=None) -> None:
        #: optional ``call_ranges(node) -> Interval | None`` hook so the
        #: project phase can evaluate resolved callees' return ranges.
        self.call_ranges = call_ranges

    def initial(self):
        return None

    def boundary(self):
        return frozenset()

    def join(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return join_value_states(left, right)

    # -- transfer ------------------------------------------------------------

    def transfer_item(self, item: BlockItem, state):
        if state is None:
            return None
        if isinstance(item, Header):
            stmt = item.stmt
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                return self._transfer_for(stmt, state)
            return state
        if isinstance(item, WithEnter):
            return self._kill_names(state, assigned_names(item))
        if isinstance(item, WithExit):
            return state
        if isinstance(item, ast.Assign) and len(item.targets) == 1:
            target = item.targets[0]
            if isinstance(target, ast.Name):
                return self._bind(state, target.id, item.value)
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            if item.value is not None:
                return self._bind(state, item.target.id, item.value)
            return state
        if isinstance(item, ast.AugAssign) and isinstance(item.target, ast.Name):
            name = item.target.id
            current = state_get(state, name) or TOP
            result = _apply_binop(item.op, current, self.eval(item.value, state))
            state = state_kill(state, _len_key(name))
            return state_set(state, name, result)
        state = self._kill_names(state, assigned_names(item))
        return self._kill_mutated_lens(state, item)

    def _transfer_for(self, stmt, state):
        state = self._kill_names(state, assigned_names(Header(stmt)))
        if isinstance(stmt.target, ast.Name) and isinstance(stmt.iter, ast.Call):
            bound = _range_interval(stmt.iter, lambda e: self.eval(e, state))
            if bound is not None:
                state = state_set(state, stmt.target.id, bound)
        return state

    def _kill_names(self, state, names):
        for name in names:
            state = state_kill(state, name)
            state = state_kill(state, _len_key(name))
        return state

    def _kill_mutated_lens(self, state, item):
        for node in walk_in_scope(item):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.attr in _LEN_MUTATORS
            ):
                state = state_kill(state, _len_key(node.func.value.id))
        if isinstance(item, ast.Delete):
            for target in item.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    state = state_kill(state, _len_key(target.value.id))
        return state

    def _bind(self, state, name: str, value: ast.expr):
        interval = self.eval(value, state)
        length = _literal_len(value)
        copy_from = value if isinstance(value, ast.Name) else None
        if (
            copy_from is None
            and isinstance(value, ast.Call)
            and call_name(value) in _LEN_PRESERVING_CALLS
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Name)
        ):
            copy_from = value.args[0]
        if length is None and copy_from is not None:
            copied = state_get(state, _len_key(copy_from.id))
            state = state_set(state, _len_key(name), copied)
        else:
            state = state_set(
                state,
                _len_key(name),
                Interval.constant(length) if length is not None else None,
            )
        return state_set(state, name, interval)

    # -- expression evaluation ----------------------------------------------

    def eval(self, expr: ast.expr, state) -> Interval:
        """The interval of ``expr`` in ``state`` (⊤ when unknown)."""
        constant = literal_number(expr)
        if constant is not None:
            return Interval.constant(constant)
        if isinstance(expr, ast.Name):
            return state_get(state, expr.id) or TOP
        if isinstance(expr, ast.BinOp):
            return _apply_binop(
                expr.op, self.eval(expr.left, state), self.eval(expr.right, state)
            )
        if isinstance(expr, ast.UnaryOp):
            if isinstance(expr.op, ast.USub):
                return self.eval(expr.operand, state).neg()
            if isinstance(expr.op, ast.UAdd):
                return self.eval(expr.operand, state)
            if isinstance(expr.op, ast.Not):
                return Interval(0.0, 1.0)
            return TOP
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, ast.IfExp):
            return self.eval(expr.body, state).join(self.eval(expr.orelse, state))
        return TOP

    def _eval_call(self, call: ast.Call, state) -> Interval:
        name = call_name(call)
        tail = name.rsplit(".", 1)[-1] if name else ""
        args = call.args
        if tail == "len" and len(args) == 1:
            if isinstance(args[0], ast.Name):
                fact = state_get(state, _len_key(args[0].id))
                if fact is not None:
                    return fact
            return NON_NEGATIVE
        if tail == "abs" and len(args) == 1:
            return self.eval(args[0], state).abs()
        if tail in ("min", "max") and len(args) >= 2:
            intervals = [self.eval(arg, state) for arg in args]
            if tail == "min":
                return Interval(
                    min(i.lo for i in intervals), min(i.hi for i in intervals)
                )
            return Interval(
                max(i.lo for i in intervals), max(i.hi for i in intervals)
            )
        if tail == "float" and len(args) == 1:
            return self.eval(args[0], state)
        if tail in ("int", "round") and len(args) == 1:
            inner = self.eval(args[0], state)
            return Interval(_floor(inner.lo), _ceil(inner.hi))
        if self.call_ranges is not None:
            known = self.call_ranges(call)
            if known is not None:
                return known
        return TOP

    # -- branch refinement ---------------------------------------------------

    def refine_edge(self, block: BasicBlock, label: str, state):
        if state is None or block.test is None or label not in ("true", "false"):
            return state
        return _refine_test(self, block.test, label == "true", state)


def _refine_test(problem: ValueProblem, test: ast.expr, positive: bool, state):
    if isinstance(test, ast.Compare):
        pairs = list(zip([test.left] + test.comparators, test.ops, test.comparators))
        if positive:
            for left, op, right in pairs:
                state = _refine_compare(problem, left, op, right, state)
                if state is None:
                    return None
            return state
        if len(pairs) == 1:
            left, op, right = pairs[0]
            negated = _NEGATED_OPS.get(type(op))
            if negated is not None:
                return _refine_compare(problem, left, negated(), right, state)
        return state
    key = _refinable_key(test)
    if key is not None:
        current = state_get(state, key) or (
            NON_NEGATIVE if key.startswith("len:") else TOP
        )
        if positive:
            refined = _exclude_point(current, 0.0)
        else:
            refined = current.meet(Interval.constant(0.0))
        if refined is None:
            return None
        state = state_set(state, key, refined)
        if not key.startswith("len:"):
            # A truthy container has at least one element (``if not xs:
            # return`` IS the emptiness guard RL015 looks for).  Sound for
            # non-containers too: their ``len:`` fact is never consulted.
            length = state_get(state, _len_key(key)) or NON_NEGATIVE
            bound = (
                length.meet(Interval(1.0, math.inf))
                if positive
                else length.meet(Interval.constant(0.0))
            )
            # An infeasible meet must report the *edge* dead, not drop the
            # fact: state_set would silently widen the length to ⊤, and a
            # premature wide state that escapes into a loop can never be
            # narrowed back by joins.
            if bound is None:
                return None
            state = state_set(state, _len_key(key), bound)
        return state
    return state


_NEGATED_OPS = {
    ast.Lt: ast.GtE,
    ast.LtE: ast.Gt,
    ast.Gt: ast.LtE,
    ast.GtE: ast.Lt,
    ast.Eq: ast.NotEq,
    ast.NotEq: ast.Eq,
}

_SWAPPED_OPS = {
    ast.Lt: ast.Gt,
    ast.LtE: ast.GtE,
    ast.Gt: ast.Lt,
    ast.GtE: ast.LtE,
    ast.Eq: ast.Eq,
    ast.NotEq: ast.NotEq,
}


def _refine_compare(problem, left, op, right, state):
    state = _refine_one_side(problem, left, op, right, state)
    if state is None:
        return None
    swapped = _SWAPPED_OPS.get(type(op))
    if swapped is None:
        return state
    return _refine_one_side(problem, right, swapped(), left, state)


def _refine_one_side(problem, target, op, other, state):
    """Meet ``target``'s fact with the constraint ``target OP other``."""
    key = _refinable_key(target)
    if key is None:
        return state
    bound = problem.eval(other, state)
    current = state_get(state, key) or (
        NON_NEGATIVE if key.startswith("len:") else TOP
    )
    if isinstance(op, ast.Lt):
        constraint = Interval(-math.inf, bound.hi, False, True)
    elif isinstance(op, ast.LtE):
        constraint = Interval(-math.inf, bound.hi, False, bound.hi_open)
    elif isinstance(op, ast.Gt):
        constraint = Interval(bound.lo, math.inf, True, False)
    elif isinstance(op, ast.GtE):
        constraint = Interval(bound.lo, math.inf, bound.lo_open, False)
    elif isinstance(op, ast.Eq):
        constraint = bound
    elif isinstance(op, ast.NotEq):
        point = bound.as_constant()
        if point is None:
            return state
        refined = _exclude_point(current, point)
        if refined is None:
            return None
        return state_set(state, key, refined)
    else:
        return state
    refined = current.meet(constraint)
    if refined is None:
        return None  # infeasible edge: bottom
    return state_set(state, key, refined)


def _refinable_key(expr: ast.expr) -> str | None:
    """The state key a test expression constrains, if any."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "len"
        and len(expr.args) == 1
        and isinstance(expr.args[0], ast.Name)
    ):
        return _len_key(expr.args[0].id)
    return None


def _exclude_point(interval: Interval, point: float) -> Interval | None:
    """Open a closed bound sitting exactly on ``point`` (for ``!=``)."""
    lo_open = interval.lo_open or interval.lo == point
    hi_open = interval.hi_open or interval.hi == point
    return Interval.make(interval.lo, interval.hi, lo_open, hi_open)


def _apply_binop(op: ast.operator, left: Interval, right: Interval) -> Interval:
    if isinstance(op, ast.Add):
        return left.add(right)
    if isinstance(op, ast.Sub):
        return left.sub(right)
    if isinstance(op, ast.Mult):
        return left.mul(right)
    if isinstance(op, ast.Div):
        return left.div(right)
    if isinstance(op, ast.FloorDiv):
        inner = left.div(right)
        return Interval(_floor(inner.lo), _floor(inner.hi))
    if isinstance(op, ast.Mod):
        if right.definitely_positive():
            return Interval(0.0, right.hi, False, True)
        return TOP
    return TOP


def _floor(value: float) -> float:
    return value if math.isinf(value) else float(math.floor(value))


def _ceil(value: float) -> float:
    return value if math.isinf(value) else float(math.ceil(value))


def _range_interval(call: ast.Call, eval_arg) -> Interval | None:
    """The loop-variable interval of ``for x in range(...)``, if provable."""
    if call_name(call) != "range" or call.keywords:
        return None
    args = [eval_arg(arg) for arg in call.args]
    if len(args) == 1:
        lo, hi = 0.0, args[0].hi - 1
    elif len(args) == 2:
        lo, hi = args[0].lo, args[1].hi - 1
    else:
        return None  # a step argument may run backwards
    made = Interval.make(lo, hi)
    return made if made is not None else None


def _literal_len(expr: ast.expr) -> int | None:
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        if any(isinstance(element, ast.Starred) for element in expr.elts):
            return None
        return len(expr.elts)
    if isinstance(expr, ast.Dict):
        if any(key is None for key in expr.keys):
            return None
        return len(expr.keys)
    return None


def value_solution(source, func) -> Solution:
    """The (cached) value-domain solution of one function in ``source``."""
    cache = source.solution_cache("values")
    solution = cache.get(id(func))
    if solution is None:
        solution = solve(source.cfg_for(func), ValueProblem())
        cache[id(func)] = solution
    return solution


def states_before_items(solution: Solution, block: BasicBlock):
    """``(item, state)`` pairs through a block, plus the state at its test.

    Returns ``(pairs, test_state)``; states may be ``None`` (unreachable).
    """
    pairs = list(zip(block.body, solution.states_through(block)))
    state = solution.state_into(block)
    for item in block.body:
        state = solution.problem.transfer_item(item, state)
    return pairs, state


# -- the taint domain ---------------------------------------------------------


class TaintProblem(DataflowProblem):
    """May-flow of symbolic taint labels through one function's locals.

    States are frozensets of ``(name, label)`` pairs — a name may carry
    many labels.  The empty set is bottom (nothing tainted), join is
    union, and the lattice is finite (labels come from the fixed set of
    parameters and call sites), so the solve always converges.
    """

    direction = "forward"

    def __init__(self, boundary: frozenset) -> None:
        self._boundary = boundary

    def initial(self) -> frozenset:
        return frozenset()

    def boundary(self) -> frozenset:
        return self._boundary

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def transfer_item(self, item: BlockItem, state: frozenset) -> frozenset:
        if isinstance(item, Header):
            stmt = item.stmt
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                labels = taint_of(stmt.iter, state)
                for name in assigned_names(item):
                    state = _retag(state, name, labels)
            return state
        if isinstance(item, WithEnter):
            labels = taint_of(item.item.context_expr, state)
            for name in assigned_names(item):
                state = _retag(state, name, labels)
            return state
        if isinstance(item, WithExit):
            return state
        if isinstance(item, ast.Assign):
            labels = taint_of(item.value, state)
            for target in item.targets:
                state = _assign_target(state, target, labels)
            return state
        if isinstance(item, ast.AnnAssign) and item.value is not None:
            return _assign_target(state, item.target, taint_of(item.value, state))
        if isinstance(item, ast.AugAssign) and isinstance(item.target, ast.Name):
            extra = taint_of(item.value, state)
            return state | frozenset((item.target.id, label) for label in extra)
        for name in assigned_names(item):
            state = _retag(state, name, frozenset())
        return state

    def refine_edge(self, block: BasicBlock, label: str, state: frozenset):
        if block.test is None or label not in ("true", "false"):
            return state
        return _sanitize_by_test(block.test, label == "true", state)


def _retag(state: frozenset, name: str, labels: frozenset) -> frozenset:
    kept = frozenset(pair for pair in state if pair[0] != name)
    return kept | frozenset((name, label) for label in labels)


def _assign_target(state, target: ast.expr, labels: frozenset) -> frozenset:
    if isinstance(target, ast.Name):
        return _retag(state, target.id, labels)
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            state = _assign_target(state, element, labels)
        return state
    if isinstance(target, ast.Starred):
        return _assign_target(state, target.value, labels)
    # Attribute/subscript stores: writing tainted data INTO a container
    # taints the container (may-analysis over the whole object).
    base = target
    while isinstance(base, (ast.Attribute, ast.Subscript)):
        base = base.value
    if isinstance(base, ast.Name) and labels:
        return state | frozenset((base.id, label) for label in labels)
    return state


def taint_of(expr: ast.expr, state: frozenset) -> frozenset:
    """Symbolic labels an expression's value may carry in ``state``."""
    if isinstance(expr, ast.Name):
        return state_labels(state, expr.id)
    if isinstance(expr, ast.Constant):
        return frozenset()
    if isinstance(expr, ast.Call):
        return frozenset({("call", id(expr))})
    if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred)):
        return taint_of(expr.value, state)
    if isinstance(expr, ast.BinOp):
        return taint_of(expr.left, state) | taint_of(expr.right, state)
    if isinstance(expr, ast.BoolOp):
        labels: frozenset = frozenset()
        for value in expr.values:
            labels |= taint_of(value, state)
        return labels
    if isinstance(expr, ast.UnaryOp):
        return taint_of(expr.operand, state)
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        labels = frozenset()
        for element in expr.elts:
            labels |= taint_of(element, state)
        return labels
    if isinstance(expr, ast.Dict):
        labels = frozenset()
        for key in expr.keys:
            if key is not None:
                labels |= taint_of(key, state)
        for value in expr.values:
            labels |= taint_of(value, state)
        return labels
    if isinstance(expr, ast.IfExp):
        return taint_of(expr.body, state) | taint_of(expr.orelse, state)
    if isinstance(expr, ast.JoinedStr):
        labels = frozenset()
        for value in expr.values:
            if isinstance(value, ast.FormattedValue):
                labels |= taint_of(value.value, state)
        return labels
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        labels = frozenset()
        for generator in expr.generators:
            labels |= taint_of(generator.iter, state)
        return labels
    if isinstance(expr, ast.Slice):
        labels = frozenset()
        for part in (expr.lower, expr.upper, expr.step):
            if part is not None:
                labels |= taint_of(part, state)
        return labels
    return frozenset()


def _sanitize_by_test(test: ast.expr, positive: bool, state: frozenset):
    """Drop a tainted name's labels when a test range-checks it.

    A relational comparison against untainted bounds counts on *both*
    edges (the surviving path of a ``raise``-guard is either one);
    membership in an untainted container counts on the edge where it
    holds; equality with a constant pins the value on its edge.
    """
    if not isinstance(test, ast.Compare) or not state:
        return state
    operands = [test.left] + list(test.comparators)
    ops = test.ops
    if all(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in ops):
        edges_ok = True
    elif len(ops) == 1 and isinstance(ops[0], ast.In):
        edges_ok = positive
    elif len(ops) == 1 and isinstance(ops[0], ast.NotIn):
        edges_ok = not positive
    elif len(ops) == 1 and isinstance(ops[0], ast.Eq):
        edges_ok = positive and isinstance(test.comparators[0], ast.Constant)
    elif len(ops) == 1 and isinstance(ops[0], ast.NotEq):
        edges_ok = (not positive) and isinstance(test.comparators[0], ast.Constant)
    else:
        return state
    if not edges_ok:
        return state
    names = [
        operand.id
        for operand in operands
        if isinstance(operand, ast.Name) and state_labels(state, operand.id)
    ]
    if len(names) != 1:
        return state  # comparing two tainted values proves nothing
    checked = names[0]
    for operand in operands:
        if isinstance(operand, ast.Name) and operand.id == checked:
            continue
        if taint_of(operand, state):
            return state  # the bound itself is attacker-controlled
    return _retag(state, checked, frozenset())


# -- per-function taint facts -------------------------------------------------


@dataclass(frozen=True)
class CallTaint:
    """Symbolic argument taint observed at one call site."""

    name: str
    callees: tuple
    line: int
    pos: tuple
    kw: tuple  # ((keyword, labels), ...) — hashable, order of appearance
    recv: frozenset

    def kw_labels(self, keyword: str) -> frozenset:
        for name, labels in self.kw:
            if name == keyword:
                return labels
        return frozenset()

    def labels_for_param(self, index: int, param_names: tuple) -> frozenset:
        if index < len(self.pos):
            return self.pos[index]
        if index < len(param_names):
            return self.kw_labels(param_names[index])
        return frozenset()


@dataclass(frozen=True)
class SinkHit:
    """One syntactic sink with the symbolic labels flowing into it."""

    kind: str  # "path" | "offset" | "index" | "rate"
    line: int
    labels: frozenset
    detail: str


@dataclass
class TaintFacts:
    """Frozen intraprocedural groundwork for the summary fixpoint."""

    converged: bool = True
    param_names: tuple = ()
    return_labels: frozenset = frozenset()
    #: ``id(call node)`` -> :class:`CallTaint`.
    calls: dict = field(default_factory=dict)
    sinks: tuple = ()
    #: ``(call key, param index or None, keyword or None, line)`` of
    #: rate-valued arguments (for ``requires_unit_interval`` propagation).
    rate_args: tuple = ()


def gather_taint_facts(info: FunctionInfo, sites: list[CallSite]) -> TaintFacts:
    """One taint solve per function; everything later rounds need."""
    params = tuple(_positional_params(info.node))
    boundary = frozenset(
        (name, ("param", index)) for index, name in enumerate(params)
    )
    cfg = info.cfg()
    solution = solve(cfg, TaintProblem(boundary))
    if not solution.converged:
        return TaintFacts(converged=False, param_names=params)

    assign_calls: dict[str, ast.Call] = {}
    for inner in walk_in_scope(info.node):
        if (
            isinstance(inner, ast.Assign)
            and len(inner.targets) == 1
            and isinstance(inner.targets[0], ast.Name)
            and isinstance(inner.value, ast.Call)
        ):
            assign_calls.setdefault(inner.targets[0].id, inner.value)

    site_by_call = {id(site.node): site for site in sites}
    calls: dict[int, CallTaint] = {}
    sinks: list[SinkHit] = []
    rate_args: list[tuple] = []
    return_labels: set = set()

    def record_item(item, state) -> None:
        from repro.analysis.callgraph import calls_in_item

        for call in calls_in_item(item):
            _record_call(call, state, site_by_call, calls, rate_args)
        _record_sinks(item, state, assign_calls, sinks)
        if isinstance(item, ast.Return) and item.value is not None:
            return_labels.update(taint_of(item.value, state))

    for block in cfg.blocks:
        state = solution.state_into(block)
        for item in block.body:
            record_item(item, state)
            state = solution.problem.transfer_item(item, state)
        if block.test is not None:
            from repro.analysis.callgraph import calls_in_item

            for call in calls_in_item(block.test):
                _record_call(call, state, site_by_call, calls, rate_args)

    return TaintFacts(
        converged=True,
        param_names=params,
        return_labels=frozenset(return_labels),
        calls=calls,
        sinks=tuple(sinks),
        rate_args=tuple(rate_args),
    )


def _record_call(call, state, site_by_call, calls, rate_args) -> None:
    key = id(call)
    if key in calls:
        return
    site = site_by_call.get(key)
    name = site.name if site is not None else call_name(call)
    recv = frozenset()
    if isinstance(call.func, ast.Attribute):
        recv = taint_of(call.func.value, state)
    taint = CallTaint(
        name=name,
        callees=site.callees if site is not None else (),
        line=call.lineno,
        pos=tuple(taint_of(arg, state) for arg in call.args),
        kw=tuple(
            (keyword.arg, taint_of(keyword.value, state))
            for keyword in call.keywords
            if keyword.arg is not None
        ),
        recv=recv,
    )
    # repro-lint: ignore[RL004] caller-owned accumulator, filled per site
    calls[key] = taint
    tail = name.rsplit(".", 1)[-1] if name else ""
    if tail in SET_RATE_TAILS and call.args:
        rate_args.append((key, len(call.args) - 1, None, call.lineno))
    for keyword in call.keywords:
        if keyword.arg in RATE_KEYWORDS:
            rate_args.append((key, None, keyword.arg, call.lineno))


#: Call tails whose argument at the given position is a file/buffer offset.
_OFFSET_ARG_TAILS = {"seek": 0, "unpack_from": 1}
#: Numpy-ish constructors: subscripts of their results are array indexing.
_ARRAY_CALL_TAILS = {"frombuffer", "zeros", "empty", "ones", "arange", "array"}


def _sink_roots(item) -> list:
    """AST roots of a block item, CFG markers unwrapped (cf. calls_in_item)."""
    if isinstance(item, Header):
        stmt = item.stmt
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [with_item.context_expr for with_item in stmt.items]
        return []
    if isinstance(item, (WithEnter, WithExit)):
        return []
    return [item]


def _record_sinks(item, state, assign_calls, sinks) -> None:
    for root in _sink_roots(item):
        _record_sinks_under(root, state, assign_calls, sinks)


def _record_sinks_under(root, state, assign_calls, sinks) -> None:
    for node in walk_in_scope(root):
        if isinstance(node, ast.Call):
            name = call_name(node)
            tail = name.rsplit(".", 1)[-1] if name else ""
            position = _OFFSET_ARG_TAILS.get(tail)
            if position is not None and position < len(node.args):
                _add_sink(sinks, "offset", node, node.args[position], state,
                          f"{tail}() offset")
            for keyword in node.keywords:
                if keyword.arg == "offset":
                    _add_sink(sinks, "offset", node, keyword.value, state,
                              f"{tail}(offset=...)")
            if name in ("open", "os.open") and node.args:
                _add_sink(sinks, "path", node, node.args[0], state, f"{name}()")
            elif tail == "join" and name.endswith("path.join"):
                for arg in node.args:
                    _add_sink(sinks, "path", node, arg, state, "os.path.join()")
            elif tail == "Path":
                for arg in node.args:
                    _add_sink(sinks, "path", node, arg, state, "Path()")
            if tail in SET_RATE_TAILS and node.args:
                _add_sink(sinks, "rate", node, node.args[-1], state, f"{tail}()")
            for keyword in node.keywords:
                if keyword.arg in RATE_KEYWORDS:
                    _add_sink(sinks, "rate", node, keyword.value, state,
                              f"{tail}({keyword.arg}=...)")
        elif isinstance(node, ast.Subscript):
            base = node.value
            if not isinstance(base, ast.Name):
                continue
            origin = assign_calls.get(base.id)
            if origin is None:
                continue
            origin_tail = call_name(origin).rsplit(".", 1)[-1]
            if origin_tail not in _ARRAY_CALL_TAILS:
                continue
            if isinstance(node.slice, ast.Constant):
                continue
            _add_sink(sinks, "index", node, node.slice, state,
                      f"{base.id}[...] fancy index")


def _add_sink(sinks, kind, node, expr, state, detail) -> None:
    labels = taint_of(expr, state)
    if labels:
        sinks.append(SinkHit(kind=kind, line=node.lineno, labels=labels,
                             detail=detail))


# -- label resolution against summaries ---------------------------------------


def is_wire_source(name: str) -> bool:
    if name in WIRE_SOURCE_NAMES:
        return True
    tail = name.rsplit(".", 1)[-1] if name else ""
    if tail in WIRE_SOURCE_TAILS:
        return True
    return any(name.endswith(suffix) for suffix in WIRE_SOURCE_SUFFIXES)


def resolve_labels(
    labels: frozenset,
    facts: TaintFacts,
    summary_of,
    params_of,
    memo: dict | None = None,
) -> frozenset:
    """Expand symbolic labels to concrete ``"wire"`` / ``("param", i)``.

    ``summary_of(function_id)`` and ``params_of(function_id)`` look up the
    current round's callee summaries; ``memo`` caches per-site expansions
    within one resolution session (an in-progress site — a call reached
    through its own argument labels inside a loop — contributes nothing,
    the least-fixpoint under-approximation).
    """
    if memo is None:
        memo = {}
    resolved: set = set()
    for label in labels:
        if label == WIRE or (isinstance(label, tuple) and label[0] == "param"):
            resolved.add(label)
        elif isinstance(label, tuple) and label[0] == "call":
            resolved |= _resolve_call_label(
                label[1], facts, summary_of, params_of, memo
            )
    return frozenset(resolved)


def _resolve_call_label(key, facts, summary_of, params_of, memo) -> frozenset:
    cached = memo.get(key)
    if cached is not None:
        return cached
    if key in memo:  # in progress (value None): cycle through a loop
        return frozenset()
    # repro-lint: ignore[RL004] memo is the shared per-session cache
    memo[key] = None
    taint = facts.calls.get(key)
    result: frozenset = frozenset()
    if taint is not None:
        tail = taint.name.rsplit(".", 1)[-1] if taint.name else ""
        if is_wire_source(taint.name):
            result = frozenset({WIRE})
        elif tail in SANITIZER_TAILS:
            result = frozenset()
        else:
            collected: set = set()
            resolved_any = False
            for callee_id in taint.callees:
                summary = summary_of(callee_id)
                if summary is None:
                    continue
                resolved_any = True
                collected |= summary.returns_taint
                callee_params = params_of(callee_id)
                for index in summary.taint_param_to_return:
                    collected |= resolve_labels(
                        taint.labels_for_param(index, callee_params),
                        facts,
                        summary_of,
                        params_of,
                        memo,
                    )
            if not resolved_any and tail in PROPAGATING_TAILS:
                collected |= resolve_labels(
                    taint.recv, facts, summary_of, params_of, memo
                )
            result = frozenset(collected)
    # repro-lint: ignore[RL004] memo is the shared per-session cache
    memo[key] = result
    return result
