"""A generic worklist fixpoint solver over join-semilattices.

:func:`solve` runs any :class:`DataflowProblem` — forward or backward —
over a :class:`~repro.analysis.cfg.ControlFlowGraph` until the per-block
states stop changing, with a hard bound on worklist iterations (the
"widening cap"): a problem whose lattice has unbounded ascending chains
still terminates, it just reports ``converged=False`` and checkers treat
its states as unusable rather than wrong.  That discipline is the same one
the paper's Theorem 1 imposes on the authority-flow fixpoints this package
audits — a convergence loop must either contract or be cut off.

Two classic instances ship here because the flow-sensitive checkers need
them: :class:`ReachingDefinitions` (RL007 resolves ``lock = self._x_lock``
aliases through it) and :class:`LiveVariables` (backward direction's
reference instance, exercised by the property suite).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.analysis.cfg import (
    BasicBlock,
    BlockItem,
    ControlFlowGraph,
    Header,
    WithEnter,
    WithExit,
    assigned_names,
)

#: Per-block visit bound multiplier: a solve may touch each block at most
#: ``WIDENING_CAP`` times before it is declared non-convergent.  Real
#: lattices here (finite powersets) settle in a handful of passes; the cap
#: only exists so a buggy transfer function cannot hang the linter.
WIDENING_CAP = 64


class DataflowProblem:
    """One analysis: lattice operations + transfer functions.

    Subclasses define the lattice by ``initial()`` (the pre-fixpoint state
    of unvisited blocks), ``boundary()`` (the state entering the graph) and
    ``join``; the semantics by ``transfer_item`` (one block item at a time,
    in execution order — the solver folds it over a block's body) and
    optionally ``transfer_test`` (the block's branch condition, evaluated
    after the body).  ``refine_edge`` lets a forward problem split state by
    branch outcome (``true``/``false`` edge labels) — how RL009 learns that
    an attribute cannot be ``None`` on the false edge of ``is None``.
    """

    direction: str = "forward"

    def initial(self) -> Any:
        raise NotImplementedError

    def boundary(self) -> Any:
        return self.initial()

    def join(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def transfer_item(self, item: BlockItem, state: Any) -> Any:
        return state

    def transfer_test(self, test: ast.expr, state: Any) -> Any:
        return state

    def refine_edge(self, block: BasicBlock, label: str, state: Any) -> Any:
        return state

    # -- derived ------------------------------------------------------------

    def transfer_block(self, block: BasicBlock, state: Any) -> Any:
        if self.direction == "forward":
            for item in block.body:
                state = self.transfer_item(item, state)
            if block.test is not None:
                state = self.transfer_test(block.test, state)
            return state
        # Backward: the test executes last, so it transfers first.
        if block.test is not None:
            state = self.transfer_test(block.test, state)
        for item in reversed(block.body):
            state = self.transfer_item(item, state)
        return state


@dataclass
class Solution:
    """Per-block fixpoint states plus solver accounting."""

    problem: DataflowProblem
    #: block index -> state at block entry (forward) / exit (backward).
    inputs: dict[int, Any] = field(default_factory=dict)
    #: block index -> state at block exit (forward) / entry (backward).
    outputs: dict[int, Any] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = True

    def state_into(self, block: BasicBlock | int) -> Any:
        index = block.index if isinstance(block, BasicBlock) else block
        return self.inputs[index]

    def state_out_of(self, block: BasicBlock | int) -> Any:
        index = block.index if isinstance(block, BasicBlock) else block
        return self.outputs[index]

    def states_through(self, block: BasicBlock) -> list[Any]:
        """Forward only: the state *before* each item of ``block.body``.

        Re-walks the block from its fixpoint input, so checkers can pair
        every item with the dataflow facts that hold exactly there.
        """
        states = []
        state = self.inputs[block.index]
        for item in block.body:
            states.append(state)
            state = self.problem.transfer_item(item, state)
        return states


def solve(
    cfg: ControlFlowGraph,
    problem: DataflowProblem,
    widening_cap: int = WIDENING_CAP,
) -> Solution:
    """Run ``problem`` to fixpoint over ``cfg`` with bounded iterations."""
    forward = problem.direction == "forward"
    solution = Solution(problem=problem)
    start = cfg.entry.index if forward else cfg.exit.index

    for block in cfg.blocks:
        solution.inputs[block.index] = problem.initial()
        solution.outputs[block.index] = problem.initial()
    solution.inputs[start] = problem.boundary()
    solution.outputs[start] = problem.transfer_block(
        cfg.blocks[start], solution.inputs[start]
    )

    worklist = deque(block.index for block in cfg.blocks)
    queued = set(worklist)
    visits = [0] * len(cfg.blocks)
    max_visits = max(1, widening_cap)

    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        block = cfg.blocks[index]
        solution.iterations += 1
        visits[index] += 1
        if visits[index] > max_visits:
            solution.converged = False
            break

        if forward:
            edges_in = cfg.predecessors(block)
        else:
            edges_in = cfg.successors(block)
        state = problem.boundary() if index == start else problem.initial()
        for edge in edges_in:
            neighbour = edge.source if forward else edge.target
            incoming = solution.outputs[neighbour]
            if forward:
                incoming = problem.refine_edge(
                    cfg.blocks[neighbour], edge.label, incoming
                )
            state = problem.join(state, incoming)
        solution.inputs[index] = state
        out = problem.transfer_block(block, state)
        if out == solution.outputs[index]:
            continue
        solution.outputs[index] = out
        targets = cfg.successors(block) if forward else cfg.predecessors(block)
        for edge in targets:
            neighbour = edge.target if forward else edge.source
            if neighbour not in queued:
                queued.add(neighbour)
                worklist.append(neighbour)
    return solution


# -- reference instances ------------------------------------------------------


def read_names(item: BlockItem) -> set[str]:
    """Plain names an item *reads* (Load context), header-aware."""
    if isinstance(item, Header):
        stmt = item.stmt
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return _loads(stmt.iter)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            names: set[str] = set()
            for with_item in stmt.items:
                names.update(_loads(with_item.context_expr))
            return names
        return set()
    if isinstance(item, WithEnter):
        return _loads(item.item.context_expr)
    if isinstance(item, WithExit):
        return set()
    return _loads(item)


def _loads(node: ast.AST) -> set[str]:
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


class ReachingDefinitions(DataflowProblem):
    """Which definitions of each local name may reach a program point.

    A *definition* is one block item that binds a name (assignment,
    ``for``/``with`` target, import, nested ``def``); function parameters
    are synthetic definitions at entry.  States are frozensets of
    ``(name, def_id)`` pairs; ``definition(def_id)`` recovers the defining
    item so clients (the RL007 alias resolver) can inspect its right-hand
    side.
    """

    direction = "forward"

    #: def_id of every synthetic parameter definition.
    PARAM = -1

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self._definitions: list[BlockItem] = []
        self._ids_by_item: dict[int, list[tuple[str, int]]] = {}
        self._params: frozenset[tuple[str, int]] = frozenset()
        for _block, _position, item in cfg.walk_items():
            names = assigned_names(item)
            if not names:
                continue
            pairs = []
            for name in sorted(names):
                def_id = len(self._definitions)
                self._definitions.append(item)
                pairs.append((name, def_id))
            self._ids_by_item[id(item)] = pairs
        func = cfg.func
        if func is not None and hasattr(func, "args"):
            self._params = frozenset(
                (arg.arg, self.PARAM) for arg in _all_args(func.args)
            )

    def definition(self, def_id: int) -> BlockItem | None:
        if 0 <= def_id < len(self._definitions):
            return self._definitions[def_id]
        return None

    def definitions_of(self, state: frozenset, name: str) -> list[BlockItem | None]:
        return [self.definition(def_id) for n, def_id in state if n == name]

    def initial(self) -> frozenset:
        return frozenset()

    def boundary(self) -> frozenset:
        return self._params

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def transfer_item(self, item: BlockItem, state: frozenset) -> frozenset:
        pairs = self._ids_by_item.get(id(item))
        if not pairs:
            return state
        killed = {name for name, _def_id in pairs}
        kept = frozenset(pair for pair in state if pair[0] not in killed)
        return kept | frozenset(pairs)


class LiveVariables(DataflowProblem):
    """Which local names may still be read before being reassigned."""

    direction = "backward"

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def transfer_item(self, item: BlockItem, state: frozenset) -> frozenset:
        return (state - frozenset(assigned_names(item))) | frozenset(
            read_names(item)
        )

    def transfer_test(self, test: ast.expr, state: frozenset) -> frozenset:
        return state | frozenset(_loads(test))


def _all_args(args: ast.arguments) -> Iterable[ast.arg]:
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        yield arg
    if args.vararg is not None:
        yield args.vararg
    if args.kwarg is not None:
        yield args.kwarg
