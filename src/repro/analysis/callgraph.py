"""Project-wide call graph: module/class/method resolution over ``src/``.

The flow-sensitive checkers of PR 5 stop at function boundaries, but the
invariants that matter most in the serving tier — lock ordering across the
serve/cluster/store call chains, resource lifetimes threaded through
helpers, epoch-fenced cache keys — span them.  :class:`Project` parses the
whole tree once and :func:`build_call_graph` resolves every call site it
can prove, so the interprocedural checkers (RL010–RL013) and the summary
engine in :mod:`repro.analysis.summaries` reason over real callee bodies
instead of guessing.

Resolution is deliberately *name-and-module* based (no type inference):

* ``f(...)`` — a function defined in the same scope chain (enclosing
  function's nested ``def``\\ s first, then the module), or an imported
  name (``from repro.x import f``), or a class (resolving to ``__init__``);
* ``self.m(...)`` / ``cls.m(...)`` — a method of the lexically enclosing
  class, searching project-resolvable base classes depth-first;
* ``mod.f(...)`` — a function or class of an imported module
  (``import repro.x as mod``);
* ``Cls.m(...)`` — a method accessed through a project-known class name.

Everything else (``obj.close()``, callables from containers, decorators
that swap bodies) is recorded as an **unresolved** call site with its
dotted name — callees stay visible to checkers, which treat unknown
callees conservatively per rule (RL010 treats them as potential ownership
transfer, RL013 refuses to call them blocking).

Strongly connected components (:meth:`CallGraph.sccs`, iterative Tarjan)
give the bottom-up order the summary engine needs: summaries of callees
are final before any caller outside the SCC reads them, and members of one
SCC (recursion) iterate to a local fixpoint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.base import SourceFile, call_name


def module_name_for(path: str) -> str:
    """Dotted module name of a display path (``src/repro/x/y.py`` -> ``repro.x.y``)."""
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or "<module>"


@dataclass
class FunctionInfo:
    """One ``def`` of the project, with enough context to analyze it."""

    id: str
    module: str
    qualname: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    source: SourceFile
    #: The lexically enclosing class definition, when this is a method.
    class_node: ast.ClassDef | None = None

    @property
    def class_name(self) -> str | None:
        return self.class_node.name if self.class_node is not None else None

    def cfg(self):
        return self.source.cfg_for(self.node)


@dataclass
class ClassInfo:
    """One class of the project: its methods and (textual) base names."""

    id: str
    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    #: method name -> function id.
    methods: dict[str, str] = field(default_factory=dict)
    #: instance attribute -> class id, from ``self.x = KnownClass(...)``
    #: assignments whose constructor resolves to exactly one project class —
    #: lets ``self.x.m()`` dispatch without type inference.  Attributes
    #: assigned from two different project classes stay unresolved.
    attr_classes: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside one function, resolved when possible."""

    caller: str
    node: ast.Call
    #: Function ids this call may dispatch to (empty when unresolved).
    callees: tuple[str, ...]
    #: The dotted source text of the target (``self._spawn``, ``time.sleep``).
    name: str

    @property
    def resolved(self) -> bool:
        return bool(self.callees)


class CallGraph:
    """Functions, classes and (resolved + unresolved) call sites."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: caller id -> call sites in source order.
        self.calls: dict[str, list[CallSite]] = {}

    def callees_of(self, function_id: str) -> list[str]:
        """Resolved callee ids of one function, deduplicated, in call order."""
        seen: set[str] = set()
        result: list[str] = []
        for site in self.calls.get(function_id, ()):
            for callee in site.callees:
                if callee not in seen:
                    seen.add(callee)
                    result.append(callee)
        return result

    def callers_of(self, function_id: str) -> list[str]:
        result = []
        for caller, sites in self.calls.items():
            if any(function_id in site.callees for site in sites):
                result.append(caller)
        return sorted(result)

    def unresolved_sites(self) -> list[CallSite]:
        """Every call site with no proven callee (conservative-handling hook)."""
        return [
            site
            for sites in self.calls.values()
            for site in sites
            if not site.resolved
        ]

    def sccs(self) -> list[list[str]]:
        """Strongly connected components in *bottom-up* (callee-first) order.

        Iterative Tarjan: components pop off in reverse topological order of
        the condensation, which is exactly the order the summary engine
        wants — every callee outside a component is summarized before the
        component itself.  Function ids are visited sorted, so the order is
        deterministic across runs and processes.
        """
        index_of: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = 0

        for root in sorted(self.functions):
            if root in index_of:
                continue
            # (node, iterator-position) explicit stack; callees sorted for
            # determinism.
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, position = work.pop()
                if position == 0:
                    index_of[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                callees = sorted(
                    callee
                    for callee in self.callees_of(node)
                    if callee in self.functions
                )
                advanced = False
                for next_position in range(position, len(callees)):
                    callee = callees[next_position]
                    if callee not in index_of:
                        work.append((node, next_position + 1))
                        work.append((callee, 0))
                        advanced = True
                        break
                    if callee in on_stack:
                        low[node] = min(low[node], index_of[callee])
                if advanced:
                    continue
                if low[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return components


@dataclass
class _ModuleScope:
    """Name bindings of one module: imports + top-level defs/classes."""

    name: str
    #: binding -> ("module", dotted) | ("name", module, attr)
    imports: dict[str, tuple] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, str] = field(default_factory=dict)


class Project:
    """All parsed sources plus the call graph and (lazy, shared) summaries."""

    def __init__(self, sources: list[SourceFile]) -> None:
        self.sources = list(sources)
        self.graph = build_call_graph(self.sources)
        self._summaries = None

    @classmethod
    def from_paths(cls, files: list[tuple[str, str]]) -> "Project":
        """Build from ``(path_on_disk, display_name)`` pairs; skips unparseable."""
        from pathlib import Path

        sources = []
        for file_path, display in files:
            try:
                text = Path(file_path).read_text(encoding="utf-8")
                sources.append(SourceFile.parse(display, text))
            except (OSError, SyntaxError, ValueError):
                continue
        return cls(sources)

    def summaries(self):
        """The project's function summaries, computed once and shared."""
        if self._summaries is None:
            from repro.analysis.summaries import compute_summaries

            self._summaries = compute_summaries(self)
        return self._summaries

    def adopt_summaries(self, index) -> None:
        """Install a precomputed :class:`SummaryIndex` (the lint cache's
        fast path), skipping the fixpoint entirely."""
        self._summaries = index

    def source_for(self, path: str) -> SourceFile | None:
        for source in self.sources:
            if source.path == path:
                return source
        return None

    def functions_in(self, source: SourceFile) -> Iterator[FunctionInfo]:
        for info in self.graph.functions.values():
            if info.source is source:
                yield info


# -- construction -------------------------------------------------------------


def build_call_graph(sources: list[SourceFile]) -> CallGraph:
    """Collect every definition, then resolve every call site."""
    graph = CallGraph()
    scopes: dict[str, _ModuleScope] = {}

    for source in sources:
        module = module_name_for(source.path)
        scope = scopes.setdefault(module, _ModuleScope(name=module))
        _collect_definitions(graph, scope, source, module)

    _collect_field_types(graph, scopes)

    for source in sources:
        module = module_name_for(source.path)
        resolver = _Resolver(graph, scopes, scopes[module])
        resolver.resolve_source(source, module)
    return graph


def _collect_definitions(
    graph: CallGraph, scope: _ModuleScope, source: SourceFile, module: str
) -> None:
    """Register functions, classes, methods and import bindings of one file."""

    def visit(body: list[ast.stmt], prefix: str, class_node: ast.ClassDef | None):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                function_id = f"{module}:{qualname}"
                info = FunctionInfo(
                    id=function_id,
                    module=module,
                    qualname=qualname,
                    name=stmt.name,
                    node=stmt,
                    source=source,
                    class_node=class_node,
                )
                graph.functions[function_id] = info
                if class_node is not None and prefix.endswith(f"{class_node.name}."):
                    class_id = f"{module}:{class_node.name}"
                    if class_id in graph.classes:
                        graph.classes[class_id].methods.setdefault(
                            stmt.name, function_id
                        )
                elif class_node is None and not prefix:
                    scope.functions.setdefault(stmt.name, function_id)
                # Nested defs: atomic statements in the CFG, own entry here.
                visit(stmt.body, f"{qualname}.<locals>.", class_node)
            elif isinstance(stmt, ast.ClassDef):
                class_id = f"{module}:{stmt.name}"
                if not prefix:  # only top-level classes are addressable
                    graph.classes[class_id] = ClassInfo(
                        id=class_id,
                        module=module,
                        name=stmt.name,
                        node=stmt,
                        bases=tuple(
                            base_name
                            for base in stmt.bases
                            if (base_name := _base_name(base)) is not None
                        ),
                    )
                    scope.classes.setdefault(stmt.name, class_id)
                    visit(stmt.body, f"{stmt.name}.", stmt)
                else:
                    visit(stmt.body, f"{prefix}{stmt.name}.", stmt)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                _collect_import(scope, stmt, module)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # Guarded imports/defs (TYPE_CHECKING, fallbacks) still bind.
                for inner in ast.iter_child_nodes(stmt):
                    if isinstance(inner, ast.stmt):
                        visit([inner], prefix, class_node)

    visit(source.tree.body, "", None)


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return call_name(ast.Call(func=base, args=[], keywords=[]))
    return None


def _collect_import(scope: _ModuleScope, stmt: ast.stmt, module: str) -> None:
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            scope.imports[bound] = ("module", target)
    elif isinstance(stmt, ast.ImportFrom):
        base = _resolve_relative(module, stmt.level, stmt.module)
        for alias in stmt.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            scope.imports[bound] = ("name", base, alias.name)


def _collect_field_types(
    graph: CallGraph, scopes: dict[str, _ModuleScope]
) -> None:
    """Record ``self.x = KnownClass(...)`` field types on every class.

    Runs after all definitions and import bindings exist, so a constructor
    referencing an imported class still resolves.  Only attributes whose
    every class-constructing assignment names the *same* project class are
    kept; mixed assignments are ambiguous and stay out (an absent entry
    just leaves the call unresolved, which under-approximates safely).
    """
    for cls in graph.classes.values():
        scope = scopes.get(cls.module)
        if scope is None:
            continue
        assigned: dict[str, set[str]] = {}
        for stmt in cls.node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in walk_in_scope(stmt):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                target_class = _constructed_class(node.value, scope, graph)
                if target_class is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        assigned.setdefault(target.attr, set()).add(
                            target_class
                        )
        cls.attr_classes = {
            attr: next(iter(ids))
            for attr, ids in assigned.items()
            if len(ids) == 1
        }


def _constructed_class(
    call: ast.Call, scope: _ModuleScope, graph: CallGraph
) -> str | None:
    """The project class id a constructor call instantiates, if any."""
    func = call.func
    if isinstance(func, ast.Name):
        class_id = scope.classes.get(func.id)
        if class_id is not None:
            return class_id
        binding = scope.imports.get(func.id)
        if binding is not None and binding[0] == "name":
            candidate = f"{binding[1]}:{binding[2]}"
            if candidate in graph.classes:
                return candidate
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        binding = scope.imports.get(func.value.id)
        if binding is not None and binding[0] == "module":
            target_scope_name = binding[1]
            candidate = f"{target_scope_name}:{func.attr}"
            if candidate in graph.classes:
                return candidate
    return None


def _resolve_relative(module: str, level: int, target: str | None) -> str:
    """Absolute module a ``from``-import refers to (best-effort for level>0)."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    # ``from . import x`` in package module a.b.c: one level strips c.
    kept = parts[: len(parts) - level] if level <= len(parts) else []
    if target:
        kept = kept + target.split(".")
    return ".".join(kept)


class _Resolver:
    """Resolves every call expression of one module against the project."""

    def __init__(
        self,
        graph: CallGraph,
        scopes: dict[str, _ModuleScope],
        scope: _ModuleScope,
    ) -> None:
        self.graph = graph
        self.scopes = scopes
        self.scope = scope

    def resolve_source(self, source: SourceFile, module: str) -> None:
        for info in list(self.graph.functions.values()):
            if info.source is not source:
                continue
            sites = []
            nested = {
                stmt.name: f"{module}:{info.qualname}.<locals>.{stmt.name}"
                for stmt in info.node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for call in calls_in_function(info.node):
                sites.append(self._resolve_call(info, call, nested))
            self.graph.calls[info.id] = sites

    def _resolve_call(
        self, info: FunctionInfo, call: ast.Call, nested: dict[str, str]
    ) -> CallSite:
        name = call_name(call)
        callees = self._resolve_target(info, call.func, nested)
        return CallSite(
            caller=info.id, node=call, callees=tuple(callees), name=name
        )

    def _resolve_target(
        self, info: FunctionInfo, func: ast.expr, nested: dict[str, str]
    ) -> list[str]:
        if isinstance(func, ast.Name):
            return self._resolve_name(info, func.id, nested)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(info, func)
        return []

    def _resolve_name(
        self, info: FunctionInfo, name: str, nested: dict[str, str]
    ) -> list[str]:
        if name in nested:
            return [nested[name]]
        if name in self.scope.functions:
            return [self.scope.functions[name]]
        if name in self.scope.classes:
            return self._constructor(self.scope.classes[name])
        if name in self.scope.imports:
            return self._resolve_import_binding(self.scope.imports[name])
        return []

    def _resolve_attribute(
        self, info: FunctionInfo, func: ast.Attribute
    ) -> list[str]:
        # self.m(...) / cls.m(...): method of the enclosing class (or a
        # project-resolvable base).
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and info.class_node is not None
        ):
            class_id = f"{info.module}:{info.class_node.name}"
            return self._resolve_method(class_id, func.attr, set())
        # mod.f(...) / mod.Cls(...) through an import binding.
        if isinstance(func.value, ast.Name):
            binding = self.scope.imports.get(func.value.id)
            if binding is not None and binding[0] == "module":
                return self._resolve_in_module(binding[1], func.attr)
            # Cls.m(...) on a locally defined or from-imported class.
            class_id = self._class_id_for(func.value.id)
            if class_id is not None:
                return self._resolve_method(class_id, func.attr, set())
        # self.x.m(...): through the field type recorded off the class's
        # ``self.x = KnownClass(...)`` assignments.
        if (
            isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
            and info.class_node is not None
        ):
            cls = self.graph.classes.get(
                f"{info.module}:{info.class_node.name}"
            )
            if cls is not None:
                field_class = cls.attr_classes.get(func.value.attr)
                if field_class is not None:
                    return self._resolve_method(field_class, func.attr, set())
        # pkg.mod.f(...): a dotted module alias.
        if isinstance(func.value, ast.Attribute):
            dotted = call_name(ast.Call(func=func.value, args=[], keywords=[]))
            root = dotted.split(".")[0]
            binding = self.scope.imports.get(root)
            if binding is not None and binding[0] == "module":
                module = binding[1] + dotted[len(root):]
                return self._resolve_in_module(module, func.attr)
        return []

    def _class_id_for(self, name: str) -> str | None:
        if name in self.scope.classes:
            return self.scope.classes[name]
        binding = self.scope.imports.get(name)
        if binding is not None and binding[0] == "name":
            candidate = f"{binding[1]}:{binding[2]}"
            if candidate in self.graph.classes:
                return candidate
        return None

    def _resolve_method(
        self, class_id: str, method: str, seen: set[str]
    ) -> list[str]:
        if class_id in seen:
            return []
        seen.add(class_id)
        cls = self.graph.classes.get(class_id)
        if cls is None:
            return []
        if method in cls.methods:
            return [cls.methods[method]]
        owner_scope = self.scopes.get(cls.module)
        for base in cls.bases:
            base_id = None
            if owner_scope is not None:
                if base in owner_scope.classes:
                    base_id = owner_scope.classes[base]
                else:
                    binding = owner_scope.imports.get(base.split(".")[0])
                    if binding is not None and binding[0] == "name":
                        candidate = f"{binding[1]}:{binding[2]}"
                        if candidate in self.graph.classes:
                            base_id = candidate
            if base_id is not None:
                resolved = self._resolve_method(base_id, method, seen)
                if resolved:
                    return resolved
        return []

    def _resolve_in_module(self, module: str, attr: str) -> list[str]:
        target_scope = self.scopes.get(module)
        if target_scope is None:
            return []
        if attr in target_scope.functions:
            return [target_scope.functions[attr]]
        if attr in target_scope.classes:
            return self._constructor(target_scope.classes[attr])
        return []

    def _resolve_import_binding(self, binding: tuple) -> list[str]:
        if binding[0] != "name":
            return []
        _kind, module, attr = binding
        # ``from repro.x import f`` where f is a function or class of x.
        resolved = self._resolve_in_module(module, attr)
        if resolved:
            return resolved
        # ``from repro import x`` where x is a submodule re-export: nothing
        # to resolve here (calls through it go via the attribute path).
        return []

    def _constructor(self, class_id: str) -> list[str]:
        constructor = self._resolve_method(class_id, "__init__", set())
        return constructor


#: AST node types whose bodies belong to a *different* function scope.
_SCOPE_BOUNDARIES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Lambda,
)


def walk_in_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class/lambda bodies.

    The root itself may be a function definition; only *its* body is walked.
    Default-value and decorator expressions of nested definitions still
    belong to the enclosing scope and are walked.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        roots: list[ast.AST] = list(node.body)
    else:
        roots = [node]
    stack = list(reversed(roots))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, _SCOPE_BOUNDARIES):
            # Visible as a definition, body not entered — whether it arrived
            # as a child or directly as a body statement of the root.
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(current.decorator_list)
                stack.extend(current.args.defaults)
                stack.extend(
                    default
                    for default in current.args.kw_defaults
                    if default is not None
                )
            continue
        stack.extend(ast.iter_child_nodes(current))


def calls_in_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.Call]:
    """Every call expression of one function body, nested scopes excluded."""
    return [
        node for node in walk_in_scope(func) if isinstance(node, ast.Call)
    ]


def calls_in_item(item) -> list[ast.Call]:
    """Call expressions of one statement/CFG block item, nested scopes excluded.

    CFG marker items are unwrapped the way the lockset analysis unwraps
    them: a ``with``/``for`` :class:`~repro.analysis.cfg.Header` contributes
    its header expressions, ``if``/``while`` headers contribute nothing
    (their tests live on the condition block), and enter/exit markers
    contribute nothing (the ``with`` header already carried the call).
    """
    from repro.analysis.cfg import Header, WithEnter, WithExit

    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    if isinstance(item, Header):
        stmt = item.stmt
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            roots: list[ast.AST] = [stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            roots = [with_item.context_expr for with_item in stmt.items]
        else:
            return []
    elif isinstance(item, (WithEnter, WithExit)):
        return []
    else:
        roots = [item]
    calls: list[ast.Call] = []
    for root in roots:
        calls.extend(
            node for node in walk_in_scope(root) if isinstance(node, ast.Call)
        )
    return calls
