"""Reporters: human text, machine JSON, GitHub annotations, SARIF 2.1.0.

All four render a :class:`~repro.analysis.runner.LintReport`:

* ``text`` — one line per finding plus a summary block, for terminals;
* ``json`` — the full report (findings, baselined, suppressed, stats) for
  tooling and the benchmark harness;
* ``github`` — ``::error file=...,line=...::...`` workflow commands, so a CI
  ``repro lint --format github`` surfaces findings as PR annotations with no
  extra action or upload step;
* ``sarif`` — a SARIF 2.1.0 log for code-scanning uploads
  (``github/codeql-action/upload-sarif``): rule metadata from the checker
  registry, ``partialFingerprints`` from the baseline fingerprint,
  ``codeFlows`` from interprocedural findings' witness call chains, and
  baselined/pragma-suppressed findings carried as suppressed results so the
  scanning UI can audit them instead of losing them.
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding
from repro.analysis.runner import LintReport

FORMATS = ("text", "json", "github", "sarif")

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_TOOL_URI = "https://github.com/paper-repo/repro"


def render(report: LintReport, fmt: str = "text") -> str:
    if fmt == "text":
        return render_text(report)
    if fmt == "json":
        return render_json(report)
    if fmt == "github":
        return render_github(report)
    if fmt == "sarif":
        return render_sarif(report)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def render_text(report: LintReport) -> str:
    lines: list[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.code} {finding.message}")
        if finding.suggestion:
            lines.append(f"    suggestion: {finding.suggestion}")
    for path, error in report.parse_errors:
        lines.append(f"{path}: parse error: {error}")
    cache_note = (
        f", summary cache {report.summary_cache}"
        if report.summary_cache
        else ""
    )
    lines.append(
        f"{len(report.findings)} finding(s) in {report.files_scanned} file(s) "
        f"[{report.elapsed_seconds:.2f}s; "
        f"{len(report.baselined)} baselined, "
        f"{len(report.suppressed)} pragma-suppressed{cache_note}]"
    )
    counts = report.counts_by_code()
    if counts:
        lines.append(
            "by code: "
            + ", ".join(f"{code}={count}" for code, count in counts.items())
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "files_scanned": report.files_scanned,
        "elapsed_seconds": report.elapsed_seconds,
        "checkers": report.checker_codes,
        "findings": [finding.as_dict() for finding in report.findings],
        "baselined": [finding.as_dict() for finding in report.baselined],
        "suppressed": [finding.as_dict() for finding in report.suppressed],
        "parse_errors": [
            {"file": path, "error": error} for path, error in report.parse_errors
        ],
        "counts_by_code": report.counts_by_code(),
        "clean": report.clean,
    }
    return json.dumps(payload, indent=2)


def render_github(report: LintReport) -> str:
    """GitHub workflow commands: one ``::error`` per finding/parse error."""
    lines = [_annotation(finding) for finding in report.findings]
    for path, error in report.parse_errors:
        lines.append(f"::error file={path}::parse error: {_escape(error)}")
    lines.append(
        f"::notice::repro lint: {len(report.findings)} finding(s) in "
        f"{report.files_scanned} file(s)"
    )
    return "\n".join(lines)


def _annotation(finding: Finding) -> str:
    message = finding.message
    if finding.suggestion:
        message = f"{message} Suggestion: {finding.suggestion}"
    return (
        f"::error file={finding.file},line={finding.line},"
        f"col={finding.column + 1},title={finding.code}::{_escape(message)}"
    )


def _escape(message: str) -> str:
    """Escape the characters GitHub workflow commands treat specially."""
    return (
        message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log: one run, rules from the registry, all findings.

    New findings are plain results; baselined findings carry an ``external``
    suppression and pragma-suppressed ones an ``inSource`` suppression —
    code-scanning backends hide suppressed results by default but keep them
    queryable, matching the report's own audit-everything contract.  Parse
    errors become execution notifications on the invocation, which also
    flips ``executionSuccessful`` off.
    """
    rules, rule_index = _sarif_rules(report)
    results = [
        _sarif_result(finding, rule_index)
        for finding in report.findings
    ]
    for finding in report.baselined:
        results.append(_sarif_result(finding, rule_index, suppression="external"))
    for finding in report.suppressed:
        results.append(_sarif_result(finding, rule_index, suppression="inSource"))
    notifications = [
        {
            "level": "error",
            "message": {"text": f"parse error: {error}"},
            "locations": [_sarif_location(path, None, None)],
        }
        for path, error in report.parse_errors
    ]
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not report.parse_errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(log, indent=2)


def _sarif_rules(report: LintReport) -> tuple[list[dict], dict[str, int]]:
    """Rule metadata for the run's checkers, from the live registry."""
    from repro.analysis.base import all_checkers

    try:
        checkers = all_checkers(report.checker_codes or None)
    except ValueError:
        checkers = all_checkers()  # stale codes: fall back to everything
    rules = [
        {
            "id": checker.code,
            "name": checker.name,
            "shortDescription": {"text": checker.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for checker in checkers
    ]
    return rules, {rule["id"]: index for index, rule in enumerate(rules)}


def _sarif_result(
    finding: Finding,
    rule_index: dict[str, int],
    suppression: str | None = None,
) -> dict:
    message = finding.message
    if finding.suggestion:
        message = f"{message} Suggestion: {finding.suggestion}"
    result = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": message},
        "locations": [
            _sarif_location(finding.file, finding.line, finding.column + 1)
        ],
        "partialFingerprints": {"reproLintFingerprint/v1": finding.fingerprint()},
    }
    if finding.code in rule_index:
        result["ruleIndex"] = rule_index[finding.code]
    metadata = dict(finding.metadata) if finding.metadata else {}
    chain = metadata.pop("call_chain", None)
    if chain:
        result["codeFlows"] = [_sarif_code_flow(chain)]
    if metadata:
        result["properties"] = metadata
    if suppression is not None:
        result["suppressions"] = [{"kind": suppression}]
    return result


def _sarif_code_flow(chain: list) -> dict:
    """A codeFlow whose single threadFlow walks the witness call chain.

    Interprocedural findings (RL010–RL013) attach the caller→callee chain
    that reaches the violating call as ``metadata["call_chain"]`` — a list
    of ``{"function", "file", "line"}`` steps.  SARIF viewers render this
    as a step-through trace, which is the whole point of carrying the
    witness: 'blocking under lock' is unreviewable without the path that
    gets there.
    """
    locations = []
    for step in chain:
        location = _sarif_location(
            step.get("file", ""), step.get("line"), None
        )
        function = step.get("function")
        if function:
            location["message"] = {"text": function}
        locations.append({"location": location})
    return {"threadFlows": [{"locations": locations}]}


def _sarif_location(path: str, line: int | None, column: int | None) -> dict:
    physical: dict = {"artifactLocation": {"uri": path}}
    if line is not None:
        region: dict = {"startLine": line}
        if column is not None:
            region["startColumn"] = column
        physical["region"] = region
    return {"physicalLocation": physical}
