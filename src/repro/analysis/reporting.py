"""Reporters: human text, machine JSON, GitHub Actions annotations.

All three render a :class:`~repro.analysis.runner.LintReport`:

* ``text`` — one line per finding plus a summary block, for terminals;
* ``json`` — the full report (findings, baselined, suppressed, stats) for
  tooling and the benchmark harness;
* ``github`` — ``::error file=...,line=...::...`` workflow commands, so a CI
  ``repro lint --format github`` surfaces findings as PR annotations with no
  extra action or upload step.
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding
from repro.analysis.runner import LintReport

FORMATS = ("text", "json", "github")


def render(report: LintReport, fmt: str = "text") -> str:
    if fmt == "text":
        return render_text(report)
    if fmt == "json":
        return render_json(report)
    if fmt == "github":
        return render_github(report)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def render_text(report: LintReport) -> str:
    lines: list[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.code} {finding.message}")
        if finding.suggestion:
            lines.append(f"    suggestion: {finding.suggestion}")
    for path, error in report.parse_errors:
        lines.append(f"{path}: parse error: {error}")
    lines.append(
        f"{len(report.findings)} finding(s) in {report.files_scanned} file(s) "
        f"[{report.elapsed_seconds:.2f}s; "
        f"{len(report.baselined)} baselined, {len(report.suppressed)} pragma-suppressed]"
    )
    counts = report.counts_by_code()
    if counts:
        lines.append(
            "by code: "
            + ", ".join(f"{code}={count}" for code, count in counts.items())
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "files_scanned": report.files_scanned,
        "elapsed_seconds": report.elapsed_seconds,
        "checkers": report.checker_codes,
        "findings": [finding.as_dict() for finding in report.findings],
        "baselined": [finding.as_dict() for finding in report.baselined],
        "suppressed": [finding.as_dict() for finding in report.suppressed],
        "parse_errors": [
            {"file": path, "error": error} for path, error in report.parse_errors
        ],
        "counts_by_code": report.counts_by_code(),
        "clean": report.clean,
    }
    return json.dumps(payload, indent=2)


def render_github(report: LintReport) -> str:
    """GitHub workflow commands: one ``::error`` per finding/parse error."""
    lines = [_annotation(finding) for finding in report.findings]
    for path, error in report.parse_errors:
        lines.append(f"::error file={path}::parse error: {_escape(error)}")
    lines.append(
        f"::notice::repro lint: {len(report.findings)} finding(s) in "
        f"{report.files_scanned} file(s)"
    )
    return "\n".join(lines)


def _annotation(finding: Finding) -> str:
    message = finding.message
    if finding.suggestion:
        message = f"{message} Suggestion: {finding.suggestion}"
    return (
        f"::error file={finding.file},line={finding.line},"
        f"col={finding.column + 1},title={finding.code}::{_escape(message)}"
    )


def _escape(message: str) -> str:
    """Escape the characters GitHub workflow commands treat specially."""
    return (
        message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )
