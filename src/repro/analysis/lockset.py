"""Lockset computation over the CFG: which ``self`` locks are held where.

The Eraser-style core of RL007: a forward *must* analysis whose state is the
set of instance locks certainly held at a program point — ``None`` stands
for ⊤ (unreachable-so-far), join is set intersection, and the
:class:`~repro.analysis.cfg.WithEnter`/:class:`~repro.analysis.cfg.WithExit`
markers the CFG builder emits are the acquire/release transfer points
(including the synthetic releases on ``break``/``continue``/``return``
paths that leave a ``with`` early).

Lock expressions are resolved through reaching definitions, so the aliased
form RL003 cannot see::

    lock = self._rates_lock
    with lock:                 # holds self._rates_lock here
        self.current_rates = rates

counts as holding ``self._rates_lock`` — but only when *every* definition
of ``lock`` reaching the ``with`` is an assignment from that same lock
attribute; a name with mixed reaching definitions resolves to nothing and
the region conservatively guards nothing.

:func:`analyze_method_locksets` also records the **acquisition order**
edges (held-lock, acquired-lock) that RL007 feeds into a per-class order
graph for deadlock-cycle detection.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.base import is_self_attribute
from repro.analysis.cfg import (
    BasicBlock,
    BlockItem,
    ControlFlowGraph,
    Header,
    WithEnter,
    WithExit,
)
from repro.analysis.dataflow import (
    DataflowProblem,
    ReachingDefinitions,
    Solution,
    solve,
)


@dataclass(frozen=True)
class OrderEdge:
    """``acquired`` was taken while ``held`` was already in the lockset."""

    held: str
    acquired: str
    method: str
    node: ast.expr


class LocksetProblem(DataflowProblem):
    """Forward must-analysis of held instance locks.

    States: ``None`` (⊤, no path reached this point yet) or a frozenset of
    lock attribute names.  ``resolved`` maps ``id(WithEnter/WithExit)``
    markers to the lock they acquire/release; unresolved markers are
    no-ops, which under-approximates the lockset and never hides a real
    unguarded access.
    """

    direction = "forward"

    def __init__(self, resolved: dict[int, str]) -> None:
        self.resolved = resolved

    def initial(self) -> frozenset | None:
        return None

    def boundary(self) -> frozenset:
        return frozenset()

    def join(self, left: frozenset | None, right: frozenset | None):
        if left is None:
            return right
        if right is None:
            return left
        return left & right

    def transfer_item(self, item: BlockItem, state: frozenset | None):
        if state is None:
            return None
        lock = self.resolved.get(id(item))
        if lock is None:
            return state
        if isinstance(item, WithEnter):
            return state | {lock}
        if isinstance(item, WithExit):
            return state - {lock}
        return state


@dataclass
class MethodLocksets:
    """Everything RL007 needs about one method's lock behaviour."""

    cfg: ControlFlowGraph
    solution: Solution
    resolved: dict[int, str]
    order_edges: list[OrderEdge] = field(default_factory=list)

    def held_at_items(self):
        """Yield ``(block, item, lockset_before_item)`` across the method."""
        for block in self.cfg.blocks:
            states = self.solution.states_through(block)
            for item, state in zip(block.body, states):
                yield block, item, state

    def held_at_test(self, block: BasicBlock) -> frozenset | None:
        """The lockset when ``block.test`` is evaluated (after the body)."""
        return self.solution.state_out_of(block)


def analyze_method_locksets(
    cfg: ControlFlowGraph, locks: set[str], method_name: str = ""
) -> MethodLocksets:
    """Solve the lockset analysis for one method against ``locks``."""
    resolved = _resolve_with_markers(cfg, locks)
    problem = LocksetProblem(resolved)
    solution = solve(cfg, problem)
    result = MethodLocksets(cfg=cfg, solution=solution, resolved=resolved)
    for _block, item, state in result.held_at_items():
        if not isinstance(item, WithEnter) or state is None:
            continue
        acquired = resolved.get(id(item))
        if acquired is None:
            continue
        for held in sorted(state - {acquired}):
            result.order_edges.append(
                OrderEdge(
                    held=held,
                    acquired=acquired,
                    method=method_name,
                    node=item.item.context_expr,
                )
            )
    return result


def _resolve_with_markers(
    cfg: ControlFlowGraph, locks: set[str]
) -> dict[int, str]:
    """Map every WithEnter/WithExit marker to the lock it manipulates.

    Direct ``with self._x_lock:`` resolves syntactically; ``with alias:``
    resolves through reaching definitions when every reaching definition of
    the alias assigns the same lock attribute.  Enter and exit markers of
    the same ``with`` item always resolve identically (the runtime releases
    the object it acquired, regardless of later rebinding), so exits are
    resolved by pairing, not by dataflow at the exit point.
    """
    resolved: dict[int, str] = {}
    by_item: dict[int, str] = {}
    needs_alias = any(
        isinstance(item, WithEnter)
        and isinstance(item.item.context_expr, ast.Name)
        for _b, _p, item in cfg.walk_items()
    )
    reaching = ReachingDefinitions(cfg) if needs_alias else None
    rd_solution = solve(cfg, reaching) if reaching is not None else None

    for block in cfg.blocks:
        rd_states = (
            rd_solution.states_through(block) if rd_solution is not None else None
        )
        for position, item in enumerate(block.body):
            if isinstance(item, WithEnter):
                lock = _resolve_lock_expr(
                    item.item.context_expr,
                    locks,
                    reaching,
                    rd_states[position] if rd_states is not None else None,
                )
                if lock is not None:
                    resolved[id(item)] = lock
                    by_item[id(item.item)] = lock
            elif isinstance(item, WithExit):
                lock = by_item.get(id(item.item))
                if lock is not None:
                    resolved[id(item)] = lock
    return resolved


def _resolve_lock_expr(
    expr: ast.expr,
    locks: set[str],
    reaching: ReachingDefinitions | None,
    rd_state: frozenset | None,
) -> str | None:
    """The lock attribute an acquire expression denotes, if provable."""
    if is_self_attribute(expr):
        attr = expr.attr  # type: ignore[union-attr]
        return attr if attr in locks else None
    if (
        isinstance(expr, ast.Name)
        and reaching is not None
        and rd_state is not None
    ):
        definitions = reaching.definitions_of(rd_state, expr.id)
        if not definitions:
            return None
        attrs = set()
        for definition in definitions:
            attr = _assigned_lock_attr(definition, expr.id, locks)
            if attr is None:
                return None
            attrs.add(attr)
        if len(attrs) == 1:
            return attrs.pop()
    return None


def _assigned_lock_attr(
    definition: BlockItem | None, name: str, locks: set[str]
) -> str | None:
    """``attr`` when ``definition`` is ``name = self.<attr>`` for a lock."""
    if not isinstance(definition, ast.Assign):
        return None
    if not any(
        isinstance(target, ast.Name) and target.id == name
        for target in definition.targets
    ):
        return None
    if is_self_attribute(definition.value):
        attr = definition.value.attr  # type: ignore[union-attr]
        return attr if attr in locks else None
    return None


def self_attribute_accesses(item: BlockItem) -> list[ast.Attribute]:
    """``self.<attr>`` accesses an item performs, header-aware.

    ``if``/``while`` headers contribute nothing here — their test
    expressions live on the condition blocks' ``test`` and are checked
    against the end-of-block lockset separately.  ``with`` headers
    contribute their context expressions (the lock attribute itself is a
    legitimate unguarded read, but a *guarded* attribute inside a context
    expression is still an access).
    """
    if isinstance(item, Header):
        stmt = item.stmt
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            roots: list[ast.AST] = [stmt.iter, stmt.target]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            roots = [with_item.context_expr for with_item in stmt.items]
        else:
            return []
    elif isinstance(item, (WithEnter, WithExit)):
        return []
    else:
        roots = [item]
    accesses = []
    for root in roots:
        for node in ast.walk(root):
            if is_self_attribute(node):
                accesses.append(node)
    return accesses


def order_cycles(edges: list[OrderEdge]) -> list[OrderEdge]:
    """The edges that participate in an acquisition-order cycle.

    An edge ``held -> acquired`` is cyclic when the order graph also lets
    ``acquired`` (transitively) precede ``held`` — the classic two-thread
    deadlock shape.  Returned in input order, deduplicated by lock pair.
    """
    graph: dict[str, set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.held, set()).add(edge.acquired)

    def reaches(start: str, goal: str) -> bool:
        seen = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False

    cyclic: list[OrderEdge] = []
    reported: set[tuple[str, str]] = set()
    for edge in edges:
        pair = (edge.held, edge.acquired)
        if pair in reported:
            continue
        if reaches(edge.acquired, edge.held):
            reported.add(pair)
            cyclic.append(edge)
    return cyclic
