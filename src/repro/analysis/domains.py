"""Abstract domains for the :mod:`repro.analysis.absint` interpreter.

Two join-semilattices live here, kept free of any AST knowledge so the
property suite can exercise them algebraically:

* :class:`Interval` — the classic interval lattice over the extended reals,
  with *open-bound* flags so a branch refinement like ``total > 0`` really
  excludes zero (the fact RL015 needs to prove a normalization guard
  present).  A degenerate closed interval (``lo == hi``) doubles as the
  constant-propagation lattice: :meth:`Interval.as_constant` recovers the
  value.  ``join`` is the interval hull, ``meet`` the intersection
  (``None`` when empty — an infeasible path), and every transfer the
  interpreter applies is monotone, so the solver's ``WIDENING_CAP`` is the
  only termination device needed (a counting loop that keeps ascending is
  reported ``converged=False`` and its function is skipped, never
  mis-judged).

* taint label sets — plain frozensets of opaque labels.  The interpreter
  uses *symbolic* labels (``("param", i)`` and ``("call", site)``), which
  the summary engine resolves bottom-up against callee summaries; the
  helpers here are just the lattice operations and the state
  representation shared with the value domain.

Both domains represent a per-program-point state as a frozenset of
``(name, fact)`` pairs (missing name = ⊤/no information), because the
generic solver compares states with ``==`` — frozensets give structural
equality and hashing for free and keep joins allocation-cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """One interval of the extended reals, bounds optionally open.

    ``Interval(0.0, _INF, lo_open=True)`` is ``(0, +inf)`` — the state of a
    total after a ``total > 0`` guard.  Invariants: ``lo <= hi``; an
    infinite bound is never "open" (openness at infinity is meaningless and
    is normalised away in :meth:`make`).
    """

    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    @classmethod
    def make(
        cls, lo: float, hi: float, lo_open: bool = False, hi_open: bool = False
    ) -> "Interval | None":
        """Normalised constructor; ``None`` when the interval is empty."""
        if math.isnan(lo) or math.isnan(hi):
            return TOP
        if lo == -_INF:
            lo_open = False
        if hi == _INF:
            hi_open = False
        if lo > hi:
            return None
        if lo == hi and (lo_open or hi_open):
            return None
        return cls(lo, hi, lo_open, hi_open)

    @classmethod
    def constant(cls, value: float) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return cls(float(value), float(value))

    # -- predicates ---------------------------------------------------------

    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    def as_constant(self) -> float | None:
        """The exact value when this interval is a single point."""
        if self.lo == self.hi and not self.lo_open and not self.hi_open:
            return self.lo
        return None

    def contains(self, value: float) -> bool:
        if value < self.lo or (value == self.lo and self.lo_open):
            return False
        if value > self.hi or (value == self.hi and self.hi_open):
            return False
        return True

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` ⊑ ``self`` (every point of other is in self)."""
        lo_ok = self.lo < other.lo or (
            self.lo == other.lo and (not self.lo_open or other.lo_open)
        )
        hi_ok = self.hi > other.hi or (
            self.hi == other.hi and (not self.hi_open or other.hi_open)
        )
        return lo_ok and hi_ok

    def may_be_zero(self) -> bool:
        return self.contains(0.0)

    def definitely_negative(self) -> bool:
        return self.hi < 0 or (self.hi == 0 and self.hi_open)

    def definitely_positive(self) -> bool:
        return self.lo > 0 or (self.lo == 0 and self.lo_open)

    def definitely_at_least(self, value: float) -> bool:
        return self.lo > value or (self.lo == value and not math.isinf(value))

    def definitely_at_most(self, value: float) -> bool:
        return self.hi < value or (self.hi == value and not math.isinf(value))

    def definitely_below(self, value: float) -> bool:
        return self.hi < value or (self.hi == value and self.hi_open)

    def definitely_above(self, value: float) -> bool:
        return self.lo > value or (self.lo == value and self.lo_open)

    # -- lattice ------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        """Interval hull (least upper bound)."""
        if self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo < self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi > other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi > self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def meet(self, other: "Interval") -> "Interval | None":
        """Intersection; ``None`` when the intervals do not overlap."""
        if self.lo > other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo > self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open or other.lo_open
        if self.hi < other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi < self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open or other.hi_open
        return Interval.make(lo, hi, lo_open, hi_open)

    # -- arithmetic ---------------------------------------------------------

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo, self.hi_open, self.lo_open)

    def add(self, other: "Interval") -> "Interval":
        return Interval(
            _ext_add(self.lo, other.lo, -_INF),
            _ext_add(self.hi, other.hi, _INF),
            self.lo_open or other.lo_open,
            self.hi_open or other.hi_open,
        )

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def mul(self, other: "Interval") -> "Interval":
        candidates = [
            _ext_mul(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        lo, hi = min(candidates), max(candidates)
        # Bound openness is kept conservative (closed) except for the one
        # fact the checkers rely on: strictly-positive times strictly-
        # positive stays strictly positive (and symmetrically for signs).
        # repro-lint: ignore[RL005] bounds are stored endpoints, zero is a sentinel
        lo_open = lo == 0.0 and (
            (self.definitely_positive() and other.definitely_positive())
            or (self.definitely_negative() and other.definitely_negative())
        )
        # repro-lint: ignore[RL005] bounds are stored endpoints, zero is a sentinel
        hi_open = hi == 0.0 and (
            (self.definitely_positive() and other.definitely_negative())
            or (self.definitely_negative() and other.definitely_positive())
        )
        interval = Interval.make(lo, hi, lo_open, hi_open)
        return interval if interval is not None else TOP

    def div(self, other: "Interval") -> "Interval":
        """Division; ⊤ when the divisor may be zero (RL015's business)."""
        if other.may_be_zero():
            return TOP
        # Zero excluded, so the divisor is entirely one-signed; an open
        # bound sitting exactly on zero inverts to an infinity of that sign.
        sign = 1.0 if other.lo >= 0 else -1.0

        def inverse(bound: float) -> float:
            # repro-lint: ignore[RL005] an open bound stores exactly 0.0
            if bound == 0.0:
                return math.copysign(_INF, sign)
            if math.isinf(bound):
                return 0.0
            return 1.0 / bound

        reciprocal = Interval.make(
            inverse(other.hi), inverse(other.lo), other.hi_open, other.lo_open
        )
        if reciprocal is None:
            return TOP
        return self.mul(reciprocal)

    def abs(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return self.neg()
        hull = self.neg().join(self)
        return Interval(0.0, hull.hi, False, hull.hi_open)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{self.lo}, {self.hi}{right}"


#: The no-information element: every real number.
TOP = Interval(-_INF, _INF)
#: Every non-negative real — what ``len()`` and ``abs()`` guarantee.
NON_NEGATIVE = Interval(0.0, _INF)
#: The unit interval — valid transfer-rate range, damping's closure.
UNIT = Interval(0.0, 1.0)


def _ext_add(a: float, b: float, on_conflict: float) -> float:
    """Extended-real addition; ``inf + -inf`` collapses to ``on_conflict``."""
    if math.isinf(a) and math.isinf(b) and (a > 0) != (b > 0):
        return on_conflict
    return a + b


def _ext_mul(a: float, b: float) -> float:
    """Extended-real multiplication with ``0 * inf == 0`` (interval bound)."""
    # repro-lint: ignore[RL005] exact-zero operands define 0*inf here
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


# -- name -> fact states ------------------------------------------------------
#
# Both abstract problems represent a state as ``frozenset`` of (name, fact)
# pairs.  For the value domain the fact is an Interval and each name has AT
# MOST one pair (the transfer functions maintain that invariant); for the
# taint domain the fact is a label and a name may carry many.


def state_get(state: frozenset, name: str):
    """The single fact for ``name`` in a one-fact-per-name state."""
    for pair_name, fact in state:
        if pair_name == name:
            return fact
    return None


def state_set(state: frozenset, name: str, fact) -> frozenset:
    """Replace the facts of ``name`` (drop them when ``fact`` is ⊤/None)."""
    kept = frozenset(pair for pair in state if pair[0] != name)
    if fact is None or (isinstance(fact, Interval) and fact.is_top()):
        return kept
    return kept | {(name, fact)}


def state_kill(state: frozenset, name: str) -> frozenset:
    return frozenset(pair for pair in state if pair[0] != name)


def state_labels(state: frozenset, name: str) -> frozenset:
    """All facts for ``name`` in a many-facts-per-name (taint) state."""
    return frozenset(fact for pair_name, fact in state if pair_name == name)


def join_value_states(left: frozenset, right: frozenset) -> frozenset:
    """Pointwise interval hull; a name missing on either side joins to ⊤."""
    if left == right:
        return left
    left_map = dict(left)
    joined = []
    for name, fact in right:
        mine = left_map.get(name)
        if mine is None:
            continue
        hull = mine.join(fact)
        if not hull.is_top():
            joined.append((name, hull))
    return frozenset(joined)
