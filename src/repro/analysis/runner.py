"""The lint driver: walk files, run checkers, apply pragmas and the baseline.

:func:`run_lint` is the one entry point the CLI, CI self-test and benchmarks
all share.  It returns a :class:`LintReport` carrying the *new* findings
(what a CI gate fails on) alongside everything it filtered out — baselined
and pragma-suppressed findings stay inspectable, because a suppression you
cannot audit is a suppression you cannot trust.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import Checker, SourceFile, all_checkers
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.pragmas import parse_pragmas

#: Directory names never descended into when expanding path arguments.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclass
class LintReport:
    """Everything one lint run produced, pre-partitioned for reporting."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    checker_codes: list[str] = field(default_factory=list)
    #: Wall time per phase: ``files`` (per-file checkers, parallelizable),
    #: ``project-build`` (parse-all + call graph + summaries) and
    #: ``project-check`` (interprocedural checkers) when any ran.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: SCC fixpoint rounds the project phase ran *this* run.  Zero when the
    #: summary cache hit (or no project checker ran) — the acceptance
    #: criterion for a no-op ``--changed`` run.
    fixpoint_rounds: int = 0
    #: ``"hit"``/``"miss"`` when a cache path was given, else ``""``.
    summary_cache: str = ""

    @property
    def clean(self) -> bool:
        """Whether the gate passes: no new findings and nothing unparseable."""
        return not self.findings and not self.parse_errors

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


def discover_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: set[Path] = set()
    result: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                result.append(candidate)
    return result


def lint_source(
    source: SourceFile, checkers: list[Checker]
) -> tuple[list[Finding], list[Finding]]:
    """Run ``checkers`` over one parsed file -> (kept, pragma-suppressed)."""
    pragmas = parse_pragmas(source.lines)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for checker in checkers:
        for finding in checker.check(source):
            if pragmas.suppresses(finding.line, finding.code):
                suppressed.append(finding)
            else:
                kept.append(finding)
    return kept, suppressed


#: (display name, kept findings, pragma-suppressed findings, parse error).
_FileResult = tuple[str, list[Finding], list[Finding], "str | None"]


def _lint_one_file(file_path: str, display: str, codes: list[str] | None) -> _FileResult:
    """Lint one file from scratch — the unit of work for worker processes.

    Module-level (not a closure) and fed plain strings so it pickles;
    checker *codes* cross the process boundary, instances are rebuilt from
    the registry on the worker side.
    """
    try:
        text = Path(file_path).read_text(encoding="utf-8")
        source = SourceFile.parse(display, text)
    except (OSError, SyntaxError, ValueError) as error:
        return display, [], [], str(error)
    kept, suppressed = lint_source(source, all_checkers(codes))
    return display, kept, suppressed, None


def _lint_one_file_job(job: tuple[str, str, list[str] | None]) -> _FileResult:
    return _lint_one_file(*job)


def run_lint(
    paths: list[str | Path],
    checkers: list[Checker] | None = None,
    baseline: Baseline | None = None,
    root: str | Path | None = None,
    jobs: int | None = None,
    scope: set[str] | None = None,
    cache: str | Path | None = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) and return the full report.

    ``root`` anchors the relative file names in findings (default: the
    current working directory when paths are relative, else the paths as
    given) — baselines store those names, so runs from the repo root and
    runs from elsewhere agree as long as ``root`` points at the repo.

    ``jobs`` > 1 fans the per-file analysis out over that many worker
    processes (files are independent, so the report is byte-identical to a
    serial run); ``None``/``0``/``1`` stay in-process.  The parallel path
    rebuilds checkers from the registry by code, so explicitly passed
    *unregistered* checker instances fall back to serial.

    Interprocedural checkers (:class:`~repro.analysis.base.ProjectChecker`)
    run in a second phase, always serially in this process: every parseable
    file is parsed into one :class:`~repro.analysis.callgraph.Project`,
    summaries are computed bottom-up, then each project checker runs once.
    Because that phase never fans out, serial and ``--jobs N`` reports stay
    byte-identical.

    ``scope`` (display names, as findings carry them) restricts which files
    are *linted and reported* — ``repro lint --changed`` uses it — while the
    project phase still parses everything, so summaries of unchanged
    helpers stay visible to the checkers.

    ``cache`` names a file persisting the interprocedural summary index
    between runs, keyed on per-file content hashes (see
    :mod:`~repro.analysis.summary_cache`).  On a full match the project
    phase skips the summary fixpoint entirely (``report.fixpoint_rounds``
    stays 0); on any mismatch it recomputes and rewrites the cache.
    """
    started = time.perf_counter()
    active = checkers if checkers is not None else all_checkers()
    file_checkers = [
        checker
        for checker in active
        if not getattr(checker, "interprocedural", False)
    ]
    project_checkers = [
        checker
        for checker in active
        if getattr(checker, "interprocedural", False)
    ]
    accepted = baseline if baseline is not None else Baseline()
    report = LintReport(checker_codes=[checker.code for checker in active])

    root_path = Path(root) if root is not None else None
    files = [
        (file_path, _display_name(file_path, root_path))
        for file_path in discover_files(paths)
    ]
    scoped = (
        files
        if scope is None
        else [(path, display) for path, display in files if display in scope]
    )

    def keep(finding: Finding) -> None:
        if accepted.contains(finding):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)

    phase_started = time.perf_counter()
    for display, kept, suppressed, error in _file_results(
        scoped, file_checkers, jobs
    ):
        if error is not None:
            report.parse_errors.append((display, error))
            continue
        report.files_scanned += 1
        report.suppressed.extend(suppressed)
        for finding in kept:
            keep(finding)
    report.phase_seconds["files"] = time.perf_counter() - phase_started

    if project_checkers:
        _run_project_phase(
            report, files, scope, project_checkers, keep, cache
        )

    report.findings.sort()
    report.baselined.sort()
    report.suppressed.sort()
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _run_project_phase(
    report: LintReport,
    files: list[tuple[Path, str]],
    scope: set[str] | None,
    project_checkers: list[Checker],
    keep,
    cache: str | Path | None = None,
) -> None:
    """Build the whole-program context and run the interprocedural checkers.

    Pragmas and the baseline apply exactly as in the per-file phase;
    findings outside ``scope`` are dropped (their files were not asked
    about), and files whose first lines carry ``skip-file`` contribute no
    findings (their *definitions* still feed the call graph — a skip-file
    pragma silences findings in that file, it does not falsify summaries).
    """
    from repro.analysis.callgraph import Project
    from repro.analysis.summaries import SummaryIndex
    from repro.analysis.summary_cache import (
        file_hashes,
        load_summaries,
        store_summaries,
    )

    phase_started = time.perf_counter()
    hashes = file_hashes(files) if cache is not None else {}
    project = Project.from_paths(
        [(str(path), display) for path, display in files]
    )
    cached = load_summaries(cache, hashes) if cache is not None else None
    if cached is not None:
        index = SummaryIndex(project)
        index.by_id = cached["by_id"]
        index.converged = cached["converged"]
        project.adopt_summaries(index)
        report.summary_cache = "hit"
    summaries = project.summaries()  # builds here unless the cache hit
    report.fixpoint_rounds = sum(summaries.scc_rounds)
    if cache is not None and cached is None:
        store_summaries(cache, hashes, summaries)
        report.summary_cache = "miss"
    report.phase_seconds["project-build"] = (
        time.perf_counter() - phase_started
    )

    phase_started = time.perf_counter()
    pragma_index: dict[str, object] = {}
    for source in project.sources:
        pragma_index[source.path] = parse_pragmas(source.lines)
    for checker in project_checkers:
        for finding in checker.check_project(project):
            if scope is not None and finding.file not in scope:
                continue
            pragmas = pragma_index.get(finding.file)
            if pragmas is not None and pragmas.suppresses(
                finding.line, finding.code
            ):
                report.suppressed.append(finding)
            else:
                keep(finding)
    report.phase_seconds["project-check"] = (
        time.perf_counter() - phase_started
    )


def _file_results(
    files: list[tuple[Path, str]],
    active: list[Checker],
    jobs: int | None,
) -> list[_FileResult]:
    if jobs is not None and jobs > 1 and len(files) > 1:
        codes = [checker.code for checker in active]
        try:
            rebuilt = all_checkers(codes)
        except ValueError:
            rebuilt = None  # unregistered checker instance: cannot ship codes
        if rebuilt is not None and len(rebuilt) == len(active):
            work = [(str(path), display, codes) for path, display in files]
            chunksize = max(1, len(work) // (jobs * 4))
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                return list(
                    pool.map(_lint_one_file_job, work, chunksize=chunksize)
                )
    results: list[_FileResult] = []
    for path, display in files:
        try:
            source = SourceFile.parse(display, path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError) as error:
            results.append((display, [], [], str(error)))
            continue
        kept, suppressed = lint_source(source, active)
        results.append((display, kept, suppressed, None))
    return results


def _display_name(file_path: Path, root: Path | None) -> str:
    """Repo-relative POSIX name when possible (stable baseline keys)."""
    candidates = [root] if root is not None else []
    candidates.append(Path.cwd())
    for base in candidates:
        try:
            return file_path.resolve().relative_to(base.resolve()).as_posix()
        except ValueError:
            continue
    return file_path.as_posix()
