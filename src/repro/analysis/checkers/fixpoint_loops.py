"""RL008 — fixpoint loops that test a residual but have no iteration cap.

The bug class behind the batched power-iteration and flow-adjustment
engines: a ``while`` loop that runs until a residual/tolerance condition is
met.  The paper's Theorem 1 guarantees convergence only while the transfer
schema stays convergent — after a structure-based reformulation, a learned
rate at the boundary can make the Eq. 5–10 updates contract arbitrarily
slowly (or, with float rounding, not at all).  A production loop therefore
must pair the residual test with an iteration counter that provably
increases toward a bound on some path; a loop without one spins forever the
first time the numerics stop cooperating.

Flagged shapes::

    while residual > tol:          # no counter anywhere in the body
        x = step(x)

    while True:                    # only exit is the convergence test
        x, residual = step(x)
        if residual < tol:
            break

Accepted shapes (not flagged)::

    while residual > tol and iterations < max_iterations:
        iterations += 1 ...

    while residual > tol:
        iterations += 1
        if iterations >= max_iterations:
            break            # (raise/return also count as leaving)

Each finding carries the loop's full line span in
``metadata["loop_span"]``, so tooling can fold the whole loop, not just the
header line.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import Checker, SourceFile, call_name, literal_number, register
from repro.analysis.findings import Finding

#: Names that smell like a convergence residual or tolerance.
_RESIDUAL_NAME = re.compile(
    r"(?:^|_)(residual|resid|tol|tolerance|eps|epsilon|delta|diff|difference|"
    r"err|error|change|gap|norm)(?:$|_|\d)",
    re.IGNORECASE,
)

#: Call targets whose result is residual-like when compared (``abs(x - y)``).
_RESIDUAL_CALLS = {"abs"}

_COMPARISONS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


@register
class FixpointLoopChecker(Checker):
    code = "RL008"
    name = "unbounded-fixpoint-loop"
    summary = (
        "while-loop tests a residual/tolerance with no iteration counter "
        "bounding it on any path"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.While):
                continue
            residual_test = _residual_compare_in(node.test)
            if residual_test is None and _is_while_true(node.test):
                residual_test = _residual_break_in(node.body)
            if residual_test is None:
                continue
            if _has_bounded_counter(node):
                continue
            span = (node.lineno, getattr(node, "end_lineno", node.lineno))
            yield self.finding(
                source,
                node,
                "fixpoint loop tests a residual/tolerance "
                f"({ast.unparse(residual_test)}) but no iteration counter "
                "bounds it on any path — if the update stops contracting, "
                "the loop never exits.",
                "count iterations and bound them: 'while ... and iterations "
                "< max_iterations:' or a counted 'if iterations >= cap: "
                "break' inside the body.",
                metadata={"loop_span": [span[0], span[1]]},
            )


def _is_while_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _residual_compare_in(expr: ast.expr) -> ast.Compare | None:
    """The first residual-style ordering comparison inside ``expr``."""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], _COMPARISONS)
            and any(
                _is_residual_operand(side)
                for side in (node.left, node.comparators[0])
            )
        ):
            return node
    return None


def _residual_break_in(body: list[ast.stmt]) -> ast.Compare | None:
    """A residual comparison guarding a ``break`` in a ``while True`` body."""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.If):
                continue
            compare = _residual_compare_in(node.test)
            if compare is None:
                continue
            if any(
                isinstance(inner, ast.Break)
                for branch_stmt in node.body
                for inner in ast.walk(branch_stmt)
            ):
                return compare
    return None


def _is_residual_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return bool(_RESIDUAL_NAME.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_RESIDUAL_NAME.search(node.attr))
    if isinstance(node, ast.Call):
        name = call_name(node)
        short = name.rsplit(".", 1)[-1]
        return short in _RESIDUAL_CALLS or bool(_RESIDUAL_NAME.search(short))
    return False


def _has_bounded_counter(loop: ast.While) -> bool:
    """Whether some counter increases in the body toward a tested bound."""
    counters = _incremented_names(loop.body)
    if not counters:
        return False
    # Bound in the loop condition itself: `while ... and n < cap:`.
    for node in ast.walk(loop.test):
        if _is_counter_bound(node, counters):
            return True
    # Bound guarding an exit in the body: `if n >= cap: break/return/raise`.
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.If):
                continue
            if not any(
                _is_counter_bound(test_node, counters)
                for test_node in ast.walk(node.test)
            ):
                continue
            if any(
                isinstance(inner, (ast.Break, ast.Return, ast.Raise))
                for branch_stmt in node.body + node.orelse
                for inner in ast.walk(branch_stmt)
            ):
                return True
    return False


def _incremented_names(body: list[ast.stmt]) -> set[str]:
    """Names assigned a strictly increasing value somewhere in the body."""
    counters: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Name)
            ):
                step = literal_number(node.value)
                if step is None or step > 0:
                    counters.add(node.target.id)
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, ast.Add)
            ):
                target = node.targets[0].id
                left, right = node.value.left, node.value.right
                for name_side, step_side in ((left, right), (right, left)):
                    if (
                        isinstance(name_side, ast.Name)
                        and name_side.id == target
                    ):
                        step = literal_number(step_side)
                        if step is not None and step > 0:
                            counters.add(target)
    return counters


def _is_counter_bound(node: ast.AST, counters: set[str]) -> bool:
    """``n < cap`` / ``cap > n`` style ordering test on a known counter."""
    if not (
        isinstance(node, ast.Compare)
        and len(node.ops) == 1
        and isinstance(node.ops[0], _COMPARISONS)
    ):
        return False
    sides = (node.left, node.comparators[0])
    return any(
        isinstance(side, ast.Name) and side.id in counters for side in sides
    )
