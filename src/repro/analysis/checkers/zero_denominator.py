"""RL015 — possible zero denominator on a normalization path.

The paper's Eq. 2 normalization divides each label's outgoing rates by
their sum, and the serving tier normalizes score vectors the same way —
``value / total`` where ``total`` was accumulated from data.  When the
data is empty the sum is exactly zero and the division raises (ints) or
silently produces ``inf``/``nan`` (floats), which then poisons every
downstream ranking comparison.

This rule flags a division whose denominator is **provably at risk**:

* a name whose producer can be zero — initialized from a ``0``/``0.0``
  literal (the accumulator idiom) or assigned from ``sum(...)``/
  ``len(...)``/``min(...)`` — and whose interval at the division still
  contains zero;
* a direct ``len(...)`` denominator with no emptiness guard.

The interval comes from the value instance of the abstract interpreter
(:mod:`repro.analysis.absint`), whose ``refine_edge`` prunes guarded
branches: after ``if total <= 0.0: return`` the surviving path carries
``total ∈ (0, +inf)`` — zero *excluded* via the open bound — and after
``if not xs: return`` the ``len`` fact of ``xs`` is at least one.  A
finding therefore means the guard is absent (or unprovable), not merely
that a division exists; adding the guard makes the rule's proof go
through and the finding disappear.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.absint import (
    _refine_test,
    _sink_roots,
    states_before_items,
    value_solution,
)
from repro.analysis.base import Checker, SourceFile, call_name, register
from repro.analysis.callgraph import walk_in_scope
from repro.analysis.findings import Finding

#: Calls whose result legitimately reaches zero on empty input.
_ZERO_RISK_CALLS = {"sum", "len", "min"}

_DIV_OPS = (ast.Div, ast.FloorDiv, ast.Mod)


@register
class ZeroDenominatorChecker(Checker):
    code = "RL015"
    name = "zero-denominator"
    summary = (
        "division by an accumulated total or len() that the analysis "
        "cannot prove non-zero"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for func in source.functions():
            yield from self._check_function(source, func)

    def _check_function(self, source: SourceFile, func) -> Iterator[Finding]:
        risky = _zero_risk_names(func)
        local = _local_names(func)
        divisions = [
            node
            for node in walk_in_scope(func)
            if isinstance(node, ast.BinOp)
            and isinstance(node.op, _DIV_OPS)
            and _risky_denominator(node.right, risky, local)
        ]
        if not divisions:
            return
        guards = _ifexp_guards(func)
        solution = value_solution(source, func)
        if not solution.converged:
            return
        problem = solution.problem
        wanted = {id(node): node for node in divisions}
        seen: set[int] = set()
        for block in source.cfg_for(func).blocks:
            pairs, test_state = states_before_items(solution, block)
            roots = [
                (root, state)
                for item, state in pairs
                for root in _sink_roots(item)
            ]
            if block.test is not None:
                roots.append((block.test, test_state))
            for root, state in roots:
                if state is None:
                    continue  # unreachable program point
                for node in walk_in_scope(root):
                    key = id(node)
                    if key not in wanted or key in seen:
                        continue
                    seen.add(key)
                    here = state
                    for test, positive in guards.get(key, ()):
                        here = _refine_test(problem, test, positive, here)
                        if here is None:
                            break
                    if here is None:
                        continue  # infeasible arm of a conditional expression
                    interval = problem.eval(node.right, here)
                    if not interval.may_be_zero():
                        continue
                    denominator = _describe(node.right)
                    yield self.finding(
                        source,
                        node,
                        f"'{denominator}' can be zero at this division: it "
                        "comes from an accumulator/sum()/len() and no "
                        "dominating guard excludes zero on this path.",
                        f"guard the division (e.g. 'if {denominator} <= 0: "
                        "return ...' or an emptiness check) so the interval "
                        "analysis can prove the denominator non-zero.",
                        metadata={"denominator": denominator},
                    )


def _zero_risk_names(func) -> set[str]:
    """Names whose producer makes zero a reachable value."""
    risky: set[str] = set()
    for node in walk_in_scope(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        if isinstance(value, ast.Constant) and value.value in (0, 0.0):
            risky.add(target.id)
        elif (
            isinstance(value, ast.Call)
            and call_name(value).rsplit(".", 1)[-1] in _ZERO_RISK_CALLS
        ):
            risky.add(target.id)
    return risky


def _risky_denominator(
    expr: ast.expr, risky: set[str], local: set[str]
) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in risky
    # ``len()`` denominators: only of *local* names — a module-level
    # constant's emptiness is a review question, not a dataflow one, and
    # ``len(self._x)`` guards (``if not self._x: ...``) live outside what
    # the per-name value domain can refine.
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "len"
        and len(expr.args) == 1
        and isinstance(expr.args[0], ast.Name)
        and expr.args[0].id in local
    )


def _local_names(func) -> set[str]:
    """Parameter and locally-bound names of one function."""
    arguments = func.args
    names = {
        arg.arg
        for group in (
            arguments.posonlyargs,
            arguments.args,
            arguments.kwonlyargs,
        )
        for arg in group
    }
    for extra in (arguments.vararg, arguments.kwarg):
        if extra is not None:
            names.add(extra.arg)
    for node in walk_in_scope(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _ifexp_guards(func) -> dict[int, tuple]:
    """division id -> ((test, positive), ...) for conditional expressions.

    ``x / total if total else 0.0`` never divides on the falsy arm; the
    checker replays the ``IfExp`` test through ``refine_edge``'s logic
    before judging a division nested in either arm (outermost test first,
    so nested conditionals stack their refinements).
    """
    guards: dict[int, tuple] = {}
    visited: set[int] = set()

    def tag(node: ast.AST, chain: tuple) -> None:
        if isinstance(node, ast.IfExp):
            visited.add(id(node))
            tag(node.test, chain)
            tag(node.body, chain + ((node.test, True),))
            tag(node.orelse, chain + ((node.test, False),))
            return
        if chain and isinstance(node, ast.BinOp):
            guards[id(node)] = chain
        for child in ast.iter_child_nodes(node):
            tag(child, chain)

    for node in walk_in_scope(func):
        # Parents precede children in the walk, so a nested conditional is
        # always reached (and marked) through its outermost ancestor first.
        if isinstance(node, ast.IfExp) and id(node) not in visited:
            tag(node, ())
    return guards


def _describe(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Call) and expr.args and isinstance(
        expr.args[0], ast.Name
    ):
        return f"len({expr.args[0].id})"
    return "the denominator"
