"""RL009 — reads of a cached attribute on a path after its invalidation.

The serving layer invalidates caches by assigning ``None`` (or calling
``.clear()``) and rebuilding lazily.  The hazard: a path that *reads* the
attribute after the invalidation without passing a rebuild first::

    def rebuild(self):
        self._view = None           # invalidate
        if self.config.precompute:
            self._view = build()    # rebuild on this path only
        return self._view.render()  # None on the other path -> crash

A forward may-analysis over the function's CFG tracks, per attribute, the
invalidation sites that may still be "live" at each point.  Any non-``None``
assignment rebuilds the attribute (kills the fact); branch refinement
understands the lazy-rebuild idiom — on the ``false`` edge of
``self._x is None`` (and the ``true`` edge of ``is not None`` or a bare
truthiness test) the attribute is known rebuilt, so::

    if self._view is None:
        self._view = build()
    return self._view               # fine on both edges

never fires.  Reads that *are* the None-test themselves are exempt: testing
an invalidated attribute is how code recovers, not a bug.  Findings carry
the invalidation line(s) in ``metadata["invalidated_at"]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, SourceFile, is_self_attribute, register
from repro.analysis.cfg import BasicBlock, BlockItem, Header
from repro.analysis.dataflow import DataflowProblem, solve
from repro.analysis.findings import Finding


class _InvalidationProblem(DataflowProblem):
    """May-analysis: frozenset of ``(attr, invalidation_line)`` facts."""

    direction = "forward"

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def transfer_item(self, item: BlockItem, state: frozenset) -> frozenset:
        if isinstance(item, ast.stmt):
            for attr, lineno in _clear_calls(item):
                state = _kill(state, attr) | {(attr, lineno)}
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if not is_self_attribute(target):
                    continue
                attr = target.attr  # type: ignore[union-attr]
                state = _kill(state, attr)
                if _is_none(item.value):
                    state = state | {(attr, item.lineno)}
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            if is_self_attribute(item.target):
                attr = item.target.attr  # type: ignore[union-attr]
                state = _kill(state, attr)
                if _is_none(item.value):
                    state = state | {(attr, item.lineno)}
        elif isinstance(item, ast.AugAssign):
            if is_self_attribute(item.target):
                state = _kill(state, item.target.attr)  # type: ignore[union-attr]
        elif isinstance(item, ast.Delete):
            for target in item.targets:
                if is_self_attribute(target):
                    attr = target.attr  # type: ignore[union-attr]
                    state = _kill(state, attr) | {(attr, item.lineno)}
        return state

    def refine_edge(
        self, block: BasicBlock, label: str, state: frozenset
    ) -> frozenset:
        """Branch knowledge: the edge on which the attribute is not None."""
        if block.test is None or label not in ("true", "false"):
            return state
        attr, rebuilt_on = _none_test(block.test)
        if attr is not None and label == rebuilt_on:
            return _kill(state, attr)
        return state


def _kill(state: frozenset, attr: str) -> frozenset:
    return frozenset(fact for fact in state if fact[0] != attr)


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _clear_calls(stmt: ast.stmt) -> list[tuple[str, int]]:
    """``self.<attr>.clear()`` invalidations anywhere in a statement."""
    cleared = []
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "clear"
            and is_self_attribute(node.func.value)
        ):
            cleared.append((node.func.value.attr, node.lineno))  # type: ignore[union-attr]
    return cleared


def _none_test(test: ast.expr) -> tuple[str | None, str]:
    """(attr, edge-label-on-which-it-is-rebuilt) for recognised guards.

    ``self._x is None`` -> not-None on the ``false`` edge;
    ``self._x is not None`` -> not-None on the ``true`` edge;
    bare ``self._x`` truthiness -> not-None on the ``true`` edge.
    (``not self._x`` needs no case: the CFG builder stores the operand as
    the leaf test and swaps the edges.)
    """
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and is_self_attribute(test.left)
        and _is_none(test.comparators[0])
    ):
        attr = test.left.attr  # type: ignore[union-attr]
        return attr, "false" if isinstance(test.ops[0], ast.Is) else "true"
    if is_self_attribute(test):
        return test.attr, "true"  # type: ignore[union-attr]
    return None, ""


@register
class UseAfterInvalidateChecker(Checker):
    code = "RL009"
    name = "use-after-invalidate"
    summary = (
        "cached attribute read on a path after being set to None/cleared "
        "with no rebuild in between"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for func in source.functions():
            if not _invalidates_anything(func):
                continue
            cfg = source.cfg_for(func)
            problem = _InvalidationProblem()
            solution = solve(cfg, problem)
            if not solution.converged:
                continue
            for block in cfg.blocks:
                states = solution.states_through(block)
                for item, state in zip(block.body, states):
                    if not state:
                        continue
                    # The state *during* the item: facts this very item
                    # introduces do not apply to its own reads (the RHS of
                    # `self._x = None` runs before the store).
                    for access in _flaggable_reads(item):
                        yield from self._flag(source, func, access, state)
                if block.test is not None and not is_self_attribute(block.test):
                    # Reads inside a branch condition (the bare-truthiness
                    # and is-None guard shapes are exempt recovery idioms).
                    state = solution.state_out_of(block)
                    if state:
                        for access in _reads_in_roots([block.test]):
                            yield from self._flag(source, func, access, state)

    def _flag(
        self,
        source: SourceFile,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        access: ast.Attribute,
        state: frozenset,
    ) -> Iterator[Finding]:
        lines = sorted({line for attr, line in state if attr == access.attr})
        if not lines:
            return
        where = ", ".join(f"line {line}" for line in lines)
        yield self.finding(
            source,
            access,
            f"'self.{access.attr}' may still be invalidated (set to "
            f"None/cleared at {where}) on a path reaching this read in "
            f"'{func.name}' with no rebuild in between.",
            f"rebuild 'self.{access.attr}' before the read on every path, "
            "or guard the read with an 'is None' check that rebuilds.",
            metadata={"invalidated_at": lines},
        )


def _invalidates_anything(func: ast.AST) -> bool:
    """Cheap pre-scan so clean functions never pay for a CFG + solve."""
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _is_none(node.value):
            if any(is_self_attribute(target) for target in node.targets):
                return True
        elif isinstance(node, ast.Delete):
            if any(is_self_attribute(target) for target in node.targets):
                return True
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "clear"
            and is_self_attribute(node.func.value)
        ):
            return True
    return False


def _flaggable_reads(item: BlockItem) -> list[ast.Attribute]:
    """Loads of ``self.<attr>`` in an item, minus None-test operands."""
    if isinstance(item, Header):
        stmt = item.stmt
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            roots: list[ast.AST] = [stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            roots = [with_item.context_expr for with_item in stmt.items]
        else:
            return []
    elif not isinstance(item, ast.stmt):
        return []
    else:
        roots = [item]
    return _reads_in_roots(roots)


def _reads_in_roots(roots: list[ast.AST]) -> list[ast.Attribute]:
    exempt: set[int] = set()
    reads: list[ast.Attribute] = []
    for root in roots:
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and isinstance(node.ops[0], (ast.Is, ast.IsNot))
                and _is_none(node.comparators[0])
            ):
                exempt.add(id(node.left))
    for root in roots:
        for node in ast.walk(root):
            if (
                is_self_attribute(node)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in exempt
            ):
                reads.append(node)
    return reads
