"""RL011 — lock hazards that only appear through call chains.

RL007 sees one method at a time: its acquisition-order edges and guarded
accesses stop at the call boundary.  This rule composes the same facts
along the call graph via function summaries, catching three shapes RL007
structurally cannot:

* **call-chain deadlock cycles** — ``A`` acquires ``self._a_lock`` and then
  calls a helper that (transitively) acquires ``self._b_lock``, while some
  other path acquires them in the opposite order.  Order edges from *calls
  under a held lock* are merged with the intra-method edges into one global
  graph over qualified ``module.Class.lock`` names; only cycles with at
  least one call-chain edge are reported here (pure intra-method cycles are
  RL007's).
* **self-deadlock re-acquisition** — calling a method that acquires a
  non-reentrant ``threading.Lock`` the caller already holds.  The thread
  blocks on itself; no second thread needed.
* **unheld ``*_locked`` helpers** — the naming convention promises "caller
  holds the lock", and RL003/RL007 therefore skip those helpers' guarded
  accesses.  This rule closes the loophole: every call site of a
  ``*_locked`` method is checked against the must-lockset actually held
  there, with the requirement propagated through intermediate ``*_locked``
  callers.

Findings carry ``metadata["call_chain"]`` (rendered by the SARIF reporter
as ``codeFlows``) so the reviewer sees the path, not just the endpoint.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ProjectChecker, call_chain_metadata, register
from repro.analysis.callgraph import Project
from repro.analysis.checkers.lock_discipline import (
    _CONSTRUCTORS,
    lock_attributes,
)
from repro.analysis.findings import Finding
from repro.analysis.lockset import analyze_method_locksets
from repro.analysis.summaries import SummaryIndex


@register
class InterproceduralLockChecker(ProjectChecker):
    code = "RL011"
    name = "interprocedural-lock-order"
    summary = (
        "deadlock cycle or unheld *_locked helper reachable only through "
        "a call chain"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        yield from self._check_order_cycles(project, summaries)
        yield from self._check_reacquisition(project, summaries)
        yield from self._check_locked_helpers(project, summaries)

    # -- deadlock cycles over the merged order graph --------------------------

    def _check_order_cycles(
        self, project: Project, summaries: SummaryIndex
    ) -> Iterator[Finding]:
        graph = project.graph
        intra_pairs: set[tuple[str, str]] = set()
        edges: list[dict] = []

        for function_id in sorted(graph.functions):
            info = graph.functions[function_id]
            if info.class_node is None:
                continue
            locks = lock_attributes(info.class_node)
            if not locks:
                continue
            qualify = _qualifier(info)
            model = analyze_method_locksets(info.cfg(), locks, info.name)
            for order in model.order_edges:
                pair = (qualify(order.held), qualify(order.acquired))
                intra_pairs.add(pair)
                edges.append(
                    {
                        "held": pair[0],
                        "acquired": pair[1],
                        "function": function_id,
                        "node": order.node,
                        "chain": ((function_id, order.node.lineno),),
                        "inter": False,
                    }
                )

            summary = summaries.get(function_id)
            if summary is None:
                continue
            for site in summary.held_calls:
                if not site.held:
                    continue
                for callee_id in site.callees:
                    callee = summaries.get(callee_id)
                    if callee is None:
                        continue
                    for acquired in sorted(callee.locks_acquired_transitive):
                        held_qualified = {qualify(h) for h in site.held}
                        if acquired in held_qualified:
                            continue  # re-acquisition, handled separately
                        tail = callee.acquire_witness.get(acquired, ())
                        for held in sorted(held_qualified):
                            edges.append(
                                {
                                    "held": held,
                                    "acquired": acquired,
                                    "function": function_id,
                                    "node": site.node,
                                    "chain": ((function_id, site.line),)
                                    + tail,
                                    "inter": True,
                                }
                            )

        adjacency: dict[str, set[str]] = {}
        for edge in edges:
            adjacency.setdefault(edge["held"], set()).add(edge["acquired"])

        def reaches(start: str, goal: str) -> bool:
            seen: set[str] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node == goal:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adjacency.get(node, ()))
            return False

        reported: set[tuple[str, str]] = set()
        for edge in edges:
            if not edge["inter"]:
                continue  # pure intra-method edges are RL007's findings
            pair = (edge["held"], edge["acquired"])
            if pair in reported or (pair[1], pair[0]) in reported:
                continue
            if not reaches(edge["acquired"], edge["held"]):
                continue
            reported.add(pair)
            info = project.graph.functions[edge["function"]]
            yield self.finding_in(
                project,
                info,
                edge["node"],
                f"'{info.qualname}' holds '{edge['held']}' while a call "
                f"chain acquires '{edge['acquired']}', but the order graph "
                "also lets the locks be taken in the opposite order — a "
                "two-thread deadlock.",
                "pick one global acquisition order for the two locks and "
                "restructure the chain that violates it.",
                metadata={
                    "held": edge["held"],
                    "acquired": edge["acquired"],
                    "call_chain": call_chain_metadata(project, edge["chain"]),
                },
            )

    # -- self-deadlock: re-acquiring a held non-reentrant lock ----------------

    def _check_reacquisition(
        self, project: Project, summaries: SummaryIndex
    ) -> Iterator[Finding]:
        graph = project.graph
        for function_id in sorted(graph.functions):
            info = graph.functions[function_id]
            summary = summaries.get(function_id)
            if summary is None or info.class_node is None:
                continue
            plain = _non_reentrant_locks(info.class_node)
            if not plain:
                continue
            qualify = _qualifier(info)
            for site in summary.held_calls:
                held_plain = {
                    qualify(lock): lock
                    for lock in site.held
                    if lock in plain
                }
                if not held_plain:
                    continue
                for callee_id in site.callees:
                    callee = summaries.get(callee_id)
                    if callee is None:
                        continue
                    for qualified, local in sorted(held_plain.items()):
                        if qualified not in callee.locks_acquired_transitive:
                            continue
                        chain = ((function_id, site.line),) + tuple(
                            callee.acquire_witness.get(qualified, ())
                        )
                        yield self.finding_in(
                            project,
                            info,
                            site.node,
                            f"'{info.qualname}' calls '{site.name}' while "
                            f"holding 'self.{local}', and the callee "
                            f"(transitively) re-acquires it — 'threading."
                            "Lock' is not reentrant, so the thread deadlocks "
                            "on itself.",
                            f"release 'self.{local}' before the call, use "
                            "the callee's '*_locked' variant, or make the "
                            "lock an RLock deliberately.",
                            metadata={
                                "lock": qualified,
                                "call_chain": call_chain_metadata(
                                    project, chain
                                ),
                            },
                        )

    # -- *_locked helpers called without the lock -----------------------------

    def _check_locked_helpers(
        self, project: Project, summaries: SummaryIndex
    ) -> Iterator[Finding]:
        graph = project.graph
        for function_id in sorted(graph.functions):
            info = graph.functions[function_id]
            summary = summaries.get(function_id)
            if summary is None:
                continue
            if info.name in _CONSTRUCTORS or info.name.endswith("_locked"):
                continue  # exempt callers: summaries propagate through them
            for site in summary.held_calls:
                for callee_id in site.callees:
                    callee = summaries.get(callee_id)
                    if callee is None or not callee.locks_required:
                        continue
                    if not _same_class(graph, function_id, callee_id):
                        continue
                    for lock in sorted(callee.locks_required - site.held):
                        chain = ((function_id, site.line),) + tuple(
                            callee.required_witness.get(lock, ())
                        )
                        yield self.finding_in(
                            project,
                            info,
                            site.node,
                            f"'{info.qualname}' calls '{site.name}', which "
                            f"touches state guarded by 'self.{lock}', but "
                            "the lockset at this call does not include it.",
                            f"wrap the call in 'with self.{lock}:' or hoist "
                            "it into a region that already holds the lock.",
                            metadata={
                                "lock": lock,
                                "call_chain": call_chain_metadata(
                                    project, chain
                                ),
                            },
                        )


def _qualifier(info):
    owner = info.class_name or info.qualname
    prefix = f"{info.module}.{owner}."

    def qualify(lock: str) -> str:
        return prefix + lock

    return qualify


def _same_class(graph, caller_id: str, callee_id: str) -> bool:
    caller = graph.functions[caller_id]
    callee = graph.functions[callee_id]
    return (
        caller.class_node is not None
        and caller.class_node is callee.class_node
    )


_PLAIN_LOCK_FACTORIES = {"threading.Lock", "Lock"}


def _non_reentrant_locks(class_node: ast.ClassDef) -> set:
    """Lock attributes assigned from plain ``threading.Lock()`` factories."""
    from repro.analysis.base import call_name, is_self_attribute

    plain: set = set()
    for method in class_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name not in _CONSTRUCTORS:
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if call_name(node.value) not in _PLAIN_LOCK_FACTORIES:
                continue
            for target in node.targets:
                if is_self_attribute(target):
                    plain.add(target.attr)
    return plain & lock_attributes(class_node)
