"""RL014 — unvalidated wire input reaching a dangerous sink.

The serve/ingest tier parses JSON bodies, query strings and socket frames
from millions of simulated users (ROADMAP north star); everything those
parsers return is attacker-controlled until a typed strict parser
(``mutation_from_json``, the ``_require_*``/``_optional_*`` helpers) or an
explicit range check has judged it.  A value that reaches a **sink** —
numpy fancy indexing, a slab/struct offset, a filesystem path, a transfer
rate — while still carrying the ``wire`` taint label is a remote crash (or
worse: ``seek`` to an attacker offset, a path join outside the data
directory, a rate that breaks the convergence invariant).

The facts come from the taint instance of the abstract interpreter
(:mod:`repro.analysis.absint`) propagated through the bottom-up summary
fixpoint: each :class:`~repro.analysis.summaries.FunctionSummary` records
the sinks concrete wire data reaches inside the function *or in any
transitively resolved callee it forwards the data to*, together with the
witness call chain.  The chain lands in ``metadata["call_chain"]`` and is
rendered as a SARIF ``codeFlow``, so a reviewer can walk the wire→sink
path step by step in the report.

Sanitization is the absence of the fact: taint dropped by a strict parser
or a range-check branch never arrives here, so every finding is a path the
analysis could not prove validated.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ProjectChecker, call_chain_metadata, register
from repro.analysis.callgraph import Project
from repro.analysis.findings import Finding

#: What each sink kind means to an operator, for the message.
_SINK_RISK = {
    "index": "an array index (out-of-bounds read or IndexError on request)",
    "offset": "a buffer/file offset (reads outside the intended slab region)",
    "path": "a filesystem path (escapes the data directory)",
    "rate": "a transfer-rate assignment (breaks the convergence invariant)",
}


@register
class WireTaintChecker(ProjectChecker):
    code = "RL014"
    name = "wire-input-to-sink"
    summary = (
        "wire-parsed input reaches an index/offset/path/rate sink with no "
        "validation on the path"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        for function_id in sorted(project.graph.functions):
            summary = summaries.get(function_id)
            if summary is None or not summary.wire_sinks:
                continue
            info = project.graph.functions[function_id]
            for (kind, line), (chain, detail) in sorted(
                summary.wire_sinks.items()
            ):
                risk = _SINK_RISK.get(kind, f"a {kind} sink")
                anchor = ast.Pass(lineno=line, col_offset=0)
                yield self.finding_in(
                    project,
                    info,
                    anchor,
                    f"unvalidated wire input reaches {detail} in "
                    f"'{info.qualname}' — the value is used as {risk} "
                    "without a typed parse or range check on this path.",
                    "validate through the typed strict parsers "
                    "(mutation_from_json / _require_* / _optional_*) or "
                    "add an explicit bounds check before the sink.",
                    metadata={
                        "sink": kind,
                        "detail": detail,
                        "call_chain": call_chain_metadata(project, chain),
                    },
                )
