"""RL006 — transfer-rate invariant violations at graph-build call sites.

The paper's convergence guarantees (Theorem 1; the Section 5.2 normalization
step) rest on two invariants every rate set must satisfy: transfer rates are
**non-negative**, and each label's outgoing rates **sum to at most 1** (else
the power iteration diverges).  ``AuthorityTransferSchemaGraph`` enforces
non-negativity at runtime, but a literal rate in a dataset module or a test
only blows up when that code path actually runs — this rule rejects it at
review time, and catches the >1 case the runtime deliberately allows
(``scaled_to_convergent`` exists precisely to repair it).

Flagged:

* a **negative literal** rate anywhere a literal feeds a schema: a ``rates=``
  dict literal (or ``{EdgeType(...): -0.3}`` style values), ``set_rate(...,
  -0.3)``, ``with_vector([...])`` elements, or ``default_rate=-0.1`` /
  ``epsilon=-1e-9`` keywords;
* a **literal rate above 1.0** in the same positions when the enclosing
  function never calls ``scaled_to_convergent`` or ``is_convergent`` — one
  label's outgoing rate can legitimately exceed 1 only on its way into the
  normalization that repairs it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import (
    Checker,
    SourceFile,
    call_name,
    literal_number,
    register,
)
from repro.analysis.findings import Finding

#: Constructor / method names that accept rate literals.
_SCHEMA_CALLS = {"AuthorityTransferSchemaGraph"}
_RATE_KEYWORDS = {"rates", "default_rate", "epsilon", "rate"}
_SET_RATE_METHODS = {"set_rate"}
_VECTOR_METHODS = {"with_vector"}
_NORMALIZERS = {"scaled_to_convergent", "is_convergent"}


@register
class RateInvariantChecker(Checker):
    code = "RL006"
    name = "transfer-rate-invariant"
    summary = (
        "literal transfer rate that is negative, or above 1.0 without a "
        "normalization call in scope"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for scope, calls in _scoped_calls(source.tree):
            normalized = _scope_normalizes(scope)
            for call in calls:
                yield from self._check_call(source, call, normalized)

    def _check_call(
        self, source: SourceFile, call: ast.Call, normalized: bool
    ) -> Iterator[Finding]:
        name = call_name(call)
        tail = name.rsplit(".", 1)[-1]

        rate_nodes: list[tuple[ast.AST, float]] = []
        if tail in _SCHEMA_CALLS:
            for keyword in call.keywords:
                if keyword.arg in _RATE_KEYWORDS:
                    rate_nodes.extend(_literal_rates(keyword.value))
            # Positional rates dict: AuthorityTransferSchemaGraph(schema, {...}).
            if len(call.args) >= 2:
                rate_nodes.extend(_literal_rates(call.args[1]))
        elif tail in _SET_RATE_METHODS:
            for arg in call.args:
                rate_nodes.extend(_literal_rates(arg))
            for keyword in call.keywords:
                if keyword.arg in _RATE_KEYWORDS:
                    rate_nodes.extend(_literal_rates(keyword.value))
        elif tail in _VECTOR_METHODS:
            for arg in call.args[:1]:
                rate_nodes.extend(_literal_rates(arg))
        else:
            return

        for node, value in rate_nodes:
            if value < 0:
                yield self.finding(
                    source,
                    node,
                    f"negative transfer rate literal {value!r}: authority "
                    "flow rates must be non-negative (RateError at runtime, "
                    "wrong rankings if it ever slips through).",
                    "use a rate in [0, 1]; encode 'no transfer' as 0.0.",
                )
            elif value > 1.0 and not normalized:
                yield self.finding(
                    source,
                    node,
                    f"transfer rate literal {value!r} exceeds 1.0 and the "
                    "enclosing scope never normalizes: an outgoing rate sum "
                    "above 1 breaks ObjectRank2 convergence.",
                    "call .scaled_to_convergent() (or check .is_convergent()) "
                    "on the schema before it is used for ranking.",
                )


def _literal_rates(node: ast.AST) -> list[tuple[ast.AST, float]]:
    """(node, value) for every numeric literal rate inside ``node``.

    Dict literals contribute their *values*; list/tuple literals their
    elements; a bare literal contributes itself.  Non-literal expressions
    contribute nothing — this rule only judges what it can see.
    """
    found: list[tuple[ast.AST, float]] = []
    if isinstance(node, ast.Dict):
        for value in node.values:
            found.extend(_literal_rates(value))
    elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        for element in node.elts:
            found.extend(_literal_rates(element))
    else:
        value = literal_number(node)
        if value is not None:
            found.append((node, value))
    return found


def _scoped_calls(tree: ast.Module) -> list[tuple[ast.AST, list[ast.Call]]]:
    """(enclosing function-or-module, rate-relevant calls) pairs."""
    scopes: list[tuple[ast.AST, list[ast.Call]]] = []

    def visit(owner: ast.AST, body: list[ast.stmt]) -> None:
        calls: list[ast.Call] = []
        stack: list[ast.AST] = list(body)
        nested: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.append(node)
                continue
            if isinstance(node, ast.Call):
                calls.append(node)
            stack.extend(ast.iter_child_nodes(node))
        scopes.append((owner, calls))
        for func in nested:
            visit(func, func.body)

    visit(tree, tree.body)
    return scopes


def _scope_normalizes(scope: ast.AST) -> bool:
    body = scope.body if hasattr(scope, "body") else []
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            if call_name(node).rsplit(".", 1)[-1] in _NORMALIZERS:
                return True
        stack.extend(ast.iter_child_nodes(node))
    return False
