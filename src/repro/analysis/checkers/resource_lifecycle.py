"""RL010 — a file/mmap/socket acquired on a path that can exit unreleased.

The multi-process serving tier owns real OS resources: the slab store mmaps
score files, the prefork cluster opens listener sockets, the ingest path
writes generation files.  A helper that opens one and loses it on an early
``return`` or an exception edge leaks a descriptor per call — invisible in
tests, fatal under sustained traffic.

The rule tracks each acquisition — a call to a known primitive (``open``,
``mmap.mmap``, ``socket.socket``…) *or* to a project helper whose summary
says it returns a fresh resource — forward through the CFG from the
assignment.  A path that reaches the function exit while the resource is
still live is a finding.  Ownership transfers end tracking conservatively:

* ``var.close()`` / ``os.close(var)`` / ``with var:`` / passing ``var`` to a
  callee that releases that parameter -> **released**;
* returning/raising/yielding ``var``, storing it into an attribute,
  container or another name, or passing it to any other call -> **escaped**
  (someone else owns it now; not this function's leak);
* rebinding ``var`` -> tracking stops (the old value's fate is unknowable
  without heap modelling, and guessing would invent findings).

Method calls *on* the resource (``sock.bind(...)``, ``handle.seek(...)``)
are plain uses and keep it live.  Exception edges count as exits — the
``try/finally`` or ``with`` shape that actually protects the resource
changes the CFG and satisfies the rule structurally, not via annotations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ProjectChecker, call_name, register
from repro.analysis.callgraph import Project
from repro.analysis.cfg import ControlFlowGraph, Header, WithEnter, WithExit
from repro.analysis.findings import Finding
from repro.analysis.summaries import (
    ACQUIRE_CALLS,
    RELEASE_CALLS,
    RELEASE_TAILS,
    acquired_call_kind,
)


@register
class ResourceLifecycleChecker(ProjectChecker):
    code = "RL010"
    name = "resource-lifecycle"
    summary = (
        "file/mmap/socket acquired on a path that can exit without release"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        graph = project.graph
        def params_of(callee_id: str) -> tuple:
            info = graph.functions.get(callee_id)
            if info is None:
                return ()
            from repro.analysis.summaries import _positional_params

            return tuple(arg.arg for arg in _positional_params(info.node))

        for function_id in sorted(graph.functions):
            info = graph.functions[function_id]
            site_by_call = {
                id(site.node): site
                for site in graph.calls.get(function_id, [])
            }
            cfg = info.cfg()
            for block in cfg.blocks:
                for position, item in enumerate(block.body):
                    acquired = _acquisition(item, site_by_call, summaries.by_id)
                    if acquired is None:
                        continue
                    var, kind = acquired
                    if _leaks(
                        cfg, block.index, position + 1, var,
                        site_by_call, summaries.by_id, params_of,
                    ):
                        helper = ""
                        if call_name(item.value) not in _PRIMITIVE_NAMES:
                            helper = (
                                f" (acquired via '{call_name(item.value)}')"
                            )
                        yield self.finding_in(
                            project,
                            info,
                            item,
                            f"'{var}' holds a fresh {kind}{helper} but some "
                            f"path through '{info.qualname}' reaches the "
                            "function exit without releasing it.",
                            f"close '{var}' in a 'finally:' (or hold it in a "
                            "'with' block), or hand ownership to the caller "
                            "explicitly.",
                            metadata={"resource": kind, "variable": var},
                        )


_PRIMITIVE_NAMES = frozenset(ACQUIRE_CALLS)


def _acquisition(item, site_by_call, summaries):
    """``(variable, kind)`` when ``item`` binds a fresh resource to a name."""
    if (
        isinstance(item, ast.Assign)
        and len(item.targets) == 1
        and isinstance(item.targets[0], ast.Name)
        and isinstance(item.value, ast.Call)
    ):
        kind = acquired_call_kind(item.value, site_by_call, summaries)
        if kind is not None:
            return item.targets[0].id, kind
    return None


def _leaks(
    cfg: ControlFlowGraph,
    start_block: int,
    start_position: int,
    var: str,
    site_by_call: dict,
    summaries: dict,
    params_of,
) -> bool:
    """Whether some CFG path from the acquisition exits with ``var`` live."""
    work = [(start_block, start_position)]
    seen: set[int] = set()
    while work:
        block_index, position = work.pop()
        block = cfg.blocks[block_index]
        status = "live"
        for item in block.body[position:]:
            status = _transfer(item, var, site_by_call, summaries, params_of)
            if status != "live":
                break
        if status != "live":
            continue
        for edge in cfg.successors(block):
            if edge.target == cfg.exit.index:
                return True
            if edge.target not in seen:
                seen.add(edge.target)
                work.append((edge.target, 0))
    return False


def _transfer(
    item, var: str, site_by_call: dict, summaries: dict, params_of
) -> str:
    """``live`` / ``released`` / ``escaped`` for one block item."""
    if isinstance(item, WithEnter):
        expr = item.item.context_expr
        if isinstance(expr, ast.Name) and expr.id == var:
            return "released"  # __exit__ closes files/sockets/mmaps
        return "escaped" if _mentions(expr, var) else "live"
    if isinstance(item, WithExit):
        return "live"
    if isinstance(item, Header):
        stmt = item.stmt
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return "escaped" if _mentions(stmt.iter, var) else "live"
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return "live"  # its WithEnter items carry the transfer
        return "live"
    if isinstance(item, ast.Return):
        if item.value is not None and _mentions(item.value, var):
            return "escaped"
        return "live"
    if isinstance(item, ast.Raise):
        mentioned = any(
            _mentions(part, var)
            for part in (item.exc, item.cause)
            if part is not None
        )
        return "escaped" if mentioned else "live"
    if isinstance(item, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            item.targets if isinstance(item, ast.Assign) else [item.target]
        )
        rebinds = any(
            isinstance(target, ast.Name) and target.id == var
            for target in targets
        )
        value = item.value
        if value is not None and _mentions(value, var):
            # Resource value stored somewhere else: new owner.
            outcome = _call_transfer(
                value, var, site_by_call, summaries, params_of
            )
            if outcome is not None:
                return outcome if not rebinds else "escaped"
            return "escaped"
        if rebinds:
            return "escaped"  # old value's fate unknown: stop quietly
        return "live"
    if isinstance(item, ast.Expr):
        outcome = _call_transfer(
            item.value, var, site_by_call, summaries, params_of
        )
        if outcome is not None:
            return outcome
        return "escaped" if _mentions(item.value, var) else "live"
    if isinstance(item, ast.stmt):
        return "escaped" if _mentions(item, var) else "live"
    return "live"


def _call_transfer(
    expr, var: str, site_by_call: dict, summaries: dict, params_of
):
    """Classify a call expression w.r.t. ``var``, or ``None`` if not a call."""
    if not isinstance(expr, ast.Call):
        return None
    name = call_name(expr)
    func = expr.func
    # A method on the resource itself: release tails end it, others use it.
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == var
    ):
        if func.attr in RELEASE_TAILS:
            return "released"
        args_touch = any(_mentions(arg, var) for arg in expr.args) or any(
            _mentions(kw.value, var) for kw in expr.keywords
        )
        return "escaped" if args_touch else "live"
    if (
        name in RELEASE_CALLS
        and expr.args
        and isinstance(expr.args[0], ast.Name)
        and expr.args[0].id == var
    ):
        return "released"
    # var passed positionally to a single resolved callee that releases it.
    site = site_by_call.get(id(expr))
    if site is not None and len(site.callees) == 1:
        summary = summaries.get(site.callees[0])
        if summary is not None:
            for position, arg in enumerate(expr.args):
                if isinstance(arg, ast.Name) and arg.id == var:
                    params = params_of(site.callees[0])
                    if (
                        position < len(params)
                        and params[position] in summary.releases_params
                    ):
                        return "released"
    if _mentions(expr, var):
        return "escaped"
    return "live"


def _mentions(node: ast.AST, var: str) -> bool:
    return any(
        isinstance(inner, ast.Name) and inner.id == var
        for inner in ast.walk(node)
    )
