"""RL017 — provably negative or overflowing index/offset into flat storage.

The storage tier is flat memory: slab files addressed by byte offset,
CSR-style arrays addressed by computed positions.  Python list semantics
(negative wraps, ``IndexError`` past the end) do not protect these —
``seek`` to a negative offset raises mid-request, ``unpack_from`` past the
buffer corrupts the read, and a numpy fancy index computed one element
too far throws under load with a traceback pointing far from the bug.

Flagged, using the value instance of the abstract interpreter
(:mod:`repro.analysis.absint` — constants, arithmetic, ``range`` loop
bounds and branch refinement all participate):

* a **computed index into an array-origin name** (assigned from
  ``frombuffer``/``zeros``/``empty``/… ) whose interval is provably
  negative — a literal ``arr[-1]`` is the accepted Python idiom and never
  flags, a wraparound the author *computed into* is a bug;
* an index **provably past a known length**: the interpreter tracks exact
  ``len()`` facts for literal containers, so ``xs = [a, b, c]; xs[i]``
  with ``i ∈ [3, …)`` (or a literal ``xs[3]``) is out of bounds;
* a **provably negative offset** to ``seek(offset)`` (single-argument
  form — with an explicit ``whence`` a negative offset is legitimate),
  ``unpack_from(fmt, buf, offset)`` or an ``offset=`` keyword.

Everything unprovable stays quiet: ⊤ intervals, unknown lengths and
refined-away branches produce no finding, so the rule only speaks when
the arithmetic itself convicts the code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.absint import (
    _ARRAY_CALL_TAILS,
    _OFFSET_ARG_TAILS,
    _len_key,
    _sink_roots,
    states_before_items,
    value_solution,
)
from repro.analysis.base import (
    Checker,
    SourceFile,
    call_name,
    literal_number,
    register,
)
from repro.analysis.callgraph import walk_in_scope
from repro.analysis.domains import state_get
from repro.analysis.findings import Finding


@register
class IndexBoundsChecker(Checker):
    code = "RL017"
    name = "index-out-of-bounds"
    summary = (
        "index/offset into slab or array storage that is provably negative "
        "or past a known length"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for func in source.functions():
            yield from self._check_function(source, func)

    def _check_function(self, source: SourceFile, func) -> Iterator[Finding]:
        array_names = _array_origin_names(func)
        if not _worth_solving(func, array_names):
            return
        solution = value_solution(source, func)
        if not solution.converged:
            return
        problem = solution.problem
        seen: set[int] = set()
        for block in source.cfg_for(func).blocks:
            pairs, test_state = states_before_items(solution, block)
            roots = [
                (root, state)
                for item, state in pairs
                for root in _sink_roots(item)
            ]
            if block.test is not None:
                roots.append((block.test, test_state))
            for root, state in roots:
                if state is None:
                    continue  # unreachable program point
                for node in walk_in_scope(root):
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                    if isinstance(node, ast.Subscript):
                        yield from self._check_subscript(
                            source, node, state, problem, array_names
                        )
                    elif isinstance(node, ast.Call):
                        yield from self._check_offsets(
                            source, node, state, problem
                        )

    def _check_subscript(
        self, source, node: ast.Subscript, state, problem, array_names
    ) -> Iterator[Finding]:
        base = node.value
        if not isinstance(base, ast.Name) or isinstance(node.slice, ast.Slice):
            return
        length = state_get(state, _len_key(base.id))
        exact = length.as_constant() if length is not None else None
        literal = literal_number(node.slice)
        if literal is not None:
            # Literal indexes only flag against a *known* length — negative
            # literals are the idiomatic tail access.
            if exact is not None and (literal >= exact or literal < -exact):
                yield self.finding(
                    source,
                    node,
                    f"index {int(literal)} is out of bounds for "
                    f"'{base.id}', whose length is provably "
                    f"{int(exact)}.",
                    "fix the index or the container construction; this "
                    "raises IndexError on every execution of the path.",
                    metadata={"index": int(literal), "length": int(exact)},
                )
            return
        interval = problem.eval(node.slice, state)
        if interval.definitely_negative() and base.id in array_names:
            yield self.finding(
                source,
                node,
                f"computed index into array '{base.id}' is provably "
                f"negative ({interval!r}) — on slab/CSR storage a "
                "wrapped read addresses the wrong record.",
                "clamp or validate the index before subscripting (an "
                "explicit 'if i < 0' guard lets the analysis prove it "
                "non-negative).",
                metadata={"interval": repr(interval)},
            )
        elif exact is not None and interval.definitely_at_least(exact):
            yield self.finding(
                source,
                node,
                f"index into '{base.id}' is provably at least "
                f"{interval.lo!r} but the container's length is "
                f"{int(exact)} — out of bounds on every path reaching "
                "here.",
                "bound the index below the container length.",
                metadata={"interval": repr(interval), "length": int(exact)},
            )

    def _check_offsets(
        self, source, node: ast.Call, state, problem
    ) -> Iterator[Finding]:
        name = call_name(node)
        tail = name.rsplit(".", 1)[-1] if name else ""
        offsets: list[ast.expr] = []
        position = _OFFSET_ARG_TAILS.get(tail)
        if position is not None and position < len(node.args):
            # seek(offset, whence) with an explicit whence legitimately
            # takes negative offsets (relative seeks); only judge the
            # absolute single-argument form.
            if not (tail == "seek" and len(node.args) > 1):
                offsets.append(node.args[position])
        for keyword in node.keywords:
            if keyword.arg == "offset":
                offsets.append(keyword.value)
        for expr in offsets:
            interval = problem.eval(expr, state)
            if interval.definitely_negative():
                yield self.finding(
                    source,
                    expr,
                    f"offset passed to {tail}() is provably negative "
                    f"({interval!r}) — flat-storage offsets must be "
                    "non-negative byte positions.",
                    "validate the offset against the slab layout before "
                    "the call.",
                    metadata={"interval": repr(interval)},
                )


def _array_origin_names(func) -> set[str]:
    """Names first assigned from a numpy-ish array constructor."""
    names: set[str] = set()
    for node in walk_in_scope(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and call_name(node.value).rsplit(".", 1)[-1] in _ARRAY_CALL_TAILS
        ):
            names.add(node.targets[0].id)
    return names


def _worth_solving(func, array_names: set[str]) -> bool:
    """Cheap gate: any subscript or offset-taking call in the body?"""
    for node in walk_in_scope(func):
        if isinstance(node, ast.Subscript) and isinstance(
            node.value, ast.Name
        ):
            return True
        if isinstance(node, ast.Call):
            tail = call_name(node).rsplit(".", 1)[-1]
            if tail in _OFFSET_ARG_TAILS or any(
                keyword.arg == "offset" for keyword in node.keywords
            ):
                return True
    return False
