"""RL007 — flow-sensitive lockset discipline + lock-ordering cycles.

RL003 verifies *lexical* containment: a guarded attribute access must sit
inside a ``with self.<lock>:`` block.  This rule verifies the actual
concurrency invariant — at every control-flow point that reads or writes a
guarded attribute, the annotated lock is in the *lockset* (the set of locks
certainly held there, computed by the must-analysis in
:mod:`repro.analysis.lockset` over the per-function CFG).  That closes the
two gaps lexical matching leaves open:

* **aliases** — ``lock = self._rates_lock; with lock: ...`` holds the lock
  (resolved through reaching definitions), where RL003 would flag it;
* **paths** — an access reachable both under and outside the lock is a race
  on the unlocked path, even when some ``with`` block encloses it lexically
  somewhere else.

On top of the per-method locksets, the rule collects every acquisition of a
lock while another is held into a per-class *acquisition-order graph* and
flags edges that participate in a cycle — two methods taking the same two
locks in opposite orders is the classic deadly-embrace shape, invisible to
any single-method analysis.

Attribute-to-lock binding, the exemptions (constructors, ``*_locked``
helpers), and the pragma escape hatch are exactly RL003's.  Each finding
carries the lock name in ``metadata["lock"]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, SourceFile, is_self_attribute, register
from repro.analysis.checkers.lock_discipline import (
    _CONSTRUCTORS,
    guarded_attributes,
    lock_attributes,
)
from repro.analysis.findings import Finding
from repro.analysis.lockset import (
    MethodLocksets,
    OrderEdge,
    analyze_method_locksets,
    order_cycles,
    self_attribute_accesses,
)


@register
class LocksetDisciplineChecker(Checker):
    code = "RL007"
    name = "lockset-discipline"
    summary = (
        "guarded attribute accessed at a point whose computed lockset lacks "
        "its lock, or locks acquired in cycle-forming order"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        locks = lock_attributes(class_def)
        if not locks:
            return
        guarded = guarded_attributes(source, class_def, locks)
        order_edges: list[OrderEdge] = []
        for method in class_def.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _CONSTRUCTORS:
                # Constructors run before concurrent aliases exist: no
                # races, and their acquisition order cannot deadlock.
                continue
            model = analyze_method_locksets(
                source.cfg_for(method), locks, method.name
            )
            order_edges.extend(model.order_edges)
            if guarded and not method.name.endswith("_locked"):
                yield from self._check_accesses(source, class_def, method, model, guarded)
        for edge in order_cycles(order_edges):
            yield self.finding(
                source,
                edge.node,
                f"'self.{edge.acquired}' is acquired while 'self.{edge.held}' "
                f"is held in '{class_def.name}.{edge.method}', but the class "
                "also acquires these locks in the opposite order — a "
                "lock-ordering cycle that can deadlock.",
                "pick one global acquisition order for the class's locks "
                "(document it next to their definitions) or merge the "
                "critical sections.",
                metadata={"lock": edge.acquired, "held": edge.held},
            )

    def _check_accesses(
        self,
        source: SourceFile,
        class_def: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        model: MethodLocksets,
        guarded: dict[str, str],
    ) -> Iterator[Finding]:
        for _block, item, held in model.held_at_items():
            if held is None:  # unreachable: no path, no race
                continue
            for access in self_attribute_accesses(item):
                yield from self._check_access(
                    source, class_def, method, access, held, guarded
                )
        for block in model.cfg.blocks:
            if block.test is None:
                continue
            held = model.held_at_test(block)
            if held is None:
                continue
            for node in ast.walk(block.test):
                if is_self_attribute(node):
                    yield from self._check_access(
                        source, class_def, method, node, held, guarded
                    )

    def _check_access(
        self,
        source: SourceFile,
        class_def: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        access: ast.Attribute,
        held: frozenset,
        guarded: dict[str, str],
    ) -> Iterator[Finding]:
        lock = guarded.get(access.attr)
        if lock is None or lock in held:
            return
        action = "written" if isinstance(access.ctx, ast.Store) else "read"
        held_text = (
            "the lockset there is {" + ", ".join(sorted(f"'self.{name}'" for name in held)) + "}"
            if held
            else "no lock is held there"
        )
        yield self.finding(
            source,
            access,
            f"'self.{access.attr}' is guarded by 'self.{lock}' but {action} "
            f"in '{class_def.name}.{method.name}' on a path where "
            f"{held_text}.",
            f"extend the 'with self.{lock}:' region to cover this access on "
            "every path, rename the method '*_locked' if callers hold the "
            "lock, or pragma it with a rationale.",
            metadata={"lock": lock},
        )
