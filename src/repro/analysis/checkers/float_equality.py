"""RL005 — exact equality against float literals in numeric code.

Authority-flow math is numerically silent: a convergence check or weight
guard written with ``==`` against a float literal either never fires (the
value is ``1e-17``, not ``0.0``) or fires for the wrong reason, and no test
notices because the ranking is merely *wrong*, not crashing.  The PR 2 audit
found exactly this shape in the precomputed-ranker's total-weight guard.

Flagged: any ``==`` / ``!=`` comparison where at least one comparator is a
float literal (``0.0``, ``1.0``, ``0.85`` ...).  Integer literals are not
flagged — ``count == 0`` on an int is exact and idiomatic, and the AST does
not carry types.

Remedies, in preference order: an inequality that states the real intent
(``total <= 0.0`` for an accumulated non-negative weight), ``math.isclose``
/ ``np.isclose`` with an explicit tolerance, or — where exact comparison is
genuinely meant, e.g. testing an unmodified sentinel default — a
``# repro-lint: ignore[RL005]`` pragma carrying the rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, SourceFile, register
from repro.analysis.findings import Finding


@register
class FloatEqualityChecker(Checker):
    code = "RL005"
    name = "float-equality"
    summary = "exact ==/!= comparison against a float literal"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparators = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, comparators, comparators[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                literal = _float_literal(left)
                if literal is None:
                    literal = _float_literal(right)
                if literal is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    source,
                    node,
                    f"exact '{symbol} {literal!r}' float comparison; "
                    "accumulated floats rarely hit a literal exactly.",
                    "state the intent with an inequality (e.g. '<= 0.0'), "
                    "use math.isclose with a tolerance, or pragma with a "
                    "rationale if exactness is the point.",
                )


def _float_literal(node: ast.AST) -> float | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _float_literal(node.operand)
        if inner is not None:
            return -inner if isinstance(node.op, ast.USub) else inner
    return None
