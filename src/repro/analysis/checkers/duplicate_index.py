"""RL001 — last-write-wins fancy-indexing writes on numpy arrays.

The PR 2 bug this rule encodes: ``restart[nodes] = weights`` (and
``restart[nodes] += w``) where ``nodes`` contains duplicate indices keeps
only the *last* occurrence's value — numpy fancy assignment is not
accumulating.  A base-set object matched by two keywords silently lost half
its restart mass and every downstream ranking was wrong without a single
test failing.  The fix is ``np.add.at(restart, nodes, weights)``.

Heuristics (tuned for this codebase, suppressible with
``# repro-lint: ignore[RL001]``):

* ``a[idx] += v`` is flagged whenever ``idx`` is *array-like*: a list
  literal, a call producing an index array (``np.asarray``, ``np.nonzero``,
  ``np.where``, ``np.argsort``, ...), a name assigned from such a call, or a
  parameter whose name says it holds indices (``*_nodes``, ``*_indices``,
  ``*_idx``, ``*_ids``).
* ``a[idx] = v`` is flagged only when ``v`` is non-constant — assigning a
  *constant* under duplicate indices is idempotent and therefore safe, while
  assigning a per-index vector drops all but the last duplicate.
* Scalar loop indices (``for i in range(n)``), integer literals, slices and
  tuple subscripts are never flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import Checker, SourceFile, call_name, register
from repro.analysis.findings import Finding

#: Calls whose result is (or selects) an integer index array.
_INDEX_PRODUCERS = {
    "np.array",
    "np.asarray",
    "np.asanyarray",
    "np.nonzero",
    "np.flatnonzero",
    "np.where",
    "np.argwhere",
    "np.argsort",
    "np.argmax",
    "np.argmin",
    "np.searchsorted",
    "np.concatenate",
    "np.hstack",
    "np.repeat",
    "np.fromiter",
    "numpy.array",
    "numpy.asarray",
    "numpy.nonzero",
    "numpy.flatnonzero",
    "numpy.where",
    "numpy.argsort",
    "numpy.searchsorted",
    "numpy.concatenate",
}

#: Parameter / variable names that declare "I am an array of indices".
_INDEX_NAME = re.compile(r"(^|_)(indices|index_array|idx|idxs|nodes|ids)$")


@register
class DuplicateIndexWriteChecker(Checker):
    code = "RL001"
    name = "duplicate-index-write"
    summary = (
        "fancy-indexing write that keeps only the last duplicate index "
        "(use np.add.at)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for func in _functions(source.tree):
            yield from self._check_function(source, func)

    def _check_function(
        self, source: SourceFile, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        array_names = _array_index_names(func)
        scalar_names = _scalar_loop_names(func)
        for node in ast.walk(func):
            if isinstance(node, ast.AugAssign):
                target, value, op = node.target, node.value, node.op
                if not isinstance(op, (ast.Add, ast.Sub)):
                    continue
                if self._is_fancy_write(target, array_names, scalar_names):
                    base = _subscript_base(target)
                    yield self.finding(
                        source,
                        node,
                        f"augmented fancy-indexing write to {base!r}: duplicate "
                        "indices are applied once, not accumulated.",
                        f"use np.add.at({base}, <indices>, <values>) so every "
                        "duplicate index contributes.",
                    )
            elif isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.Constant) or (
                    isinstance(value, ast.UnaryOp)
                    and isinstance(value.operand, ast.Constant)
                ):
                    # Constant stores are idempotent under duplicate indices.
                    continue
                for target in node.targets:
                    if self._is_fancy_write(target, array_names, scalar_names):
                        base = _subscript_base(target)
                        yield self.finding(
                            source,
                            node,
                            f"fancy-indexing assignment to {base!r} with a "
                            "non-constant value: under duplicate indices only "
                            "the last write survives.",
                            "accumulate with np.add.at (or de-duplicate the "
                            "index array first) if duplicates are possible.",
                        )

    def _is_fancy_write(
        self,
        target: ast.AST,
        array_names: set[str],
        scalar_names: set[str],
    ) -> bool:
        if not isinstance(target, ast.Subscript):
            return False
        index = target.slice
        if isinstance(index, ast.List):
            return True
        if isinstance(index, ast.Call):
            return call_name(index) in _INDEX_PRODUCERS
        if isinstance(index, ast.Name):
            if index.id in scalar_names:
                return False
            return index.id in array_names
        return False


def _functions(tree: ast.Module) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _array_index_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names that plausibly hold an integer index *array* in ``func``."""
    names: set[str] = set()
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if _INDEX_NAME.search(arg.arg):
            names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if call_name(node.value) in _INDEX_PRODUCERS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.List):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _scalar_loop_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Loop variables of ``range``/``enumerate`` — scalar, never flagged."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.For) and isinstance(node.iter, ast.Call):
            if call_name(node.iter) in {"range", "enumerate"}:
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _subscript_base(target: ast.Subscript) -> str:
    base = target.value
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return "<array>"
