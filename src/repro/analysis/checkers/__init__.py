"""Built-in checkers; importing this package registers RL001–RL009.

============ ========================== =====================================
Code         Name                       Hazard class
============ ========================== =====================================
``RL001``    duplicate-index-write      numpy fancy-indexing writes that keep
                                        only the last duplicate index
``RL002``    stale-cache-latch          build-once latches whose inputs change
                                        without invalidation
``RL003``    lock-discipline            guarded attributes touched outside
                                        their ``with self._lock:`` block
``RL004``    caller-owned-mutation      in-place mutation of dict/array
                                        parameters that were never copied
``RL005``    float-equality             exact ``==``/``!=`` against float
                                        literals in numeric code
``RL006``    transfer-rate-invariant    negative or non-normalized literal
                                        transfer rates at schema build sites
``RL007``    lockset-discipline         guarded attribute accessed where the
                                        computed lockset lacks its lock;
                                        lock-ordering cycles across methods
``RL008``    unbounded-fixpoint-loop    residual-testing ``while`` loops with
                                        no iteration cap on any path
``RL009``    use-after-invalidate       cached attribute read on a path after
                                        ``None``/clear with no rebuild
============ ========================== =====================================

RL001–RL006 are per-node AST visitors; RL007–RL009 are flow-sensitive — they
consume the per-function CFGs of :mod:`repro.analysis.cfg` through the
fixpoint solver of :mod:`repro.analysis.dataflow`.
"""

from repro.analysis.checkers.cache_latch import CacheLatchChecker
from repro.analysis.checkers.duplicate_index import DuplicateIndexWriteChecker
from repro.analysis.checkers.fixpoint_loops import FixpointLoopChecker
from repro.analysis.checkers.float_equality import FloatEqualityChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.lockset_discipline import LocksetDisciplineChecker
from repro.analysis.checkers.param_mutation import ParamMutationChecker
from repro.analysis.checkers.rate_invariants import RateInvariantChecker
from repro.analysis.checkers.use_after_invalidate import UseAfterInvalidateChecker

__all__ = [
    "CacheLatchChecker",
    "DuplicateIndexWriteChecker",
    "FixpointLoopChecker",
    "FloatEqualityChecker",
    "LockDisciplineChecker",
    "LocksetDisciplineChecker",
    "ParamMutationChecker",
    "RateInvariantChecker",
    "UseAfterInvalidateChecker",
]
