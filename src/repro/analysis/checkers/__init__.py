"""Built-in checkers; importing this package registers RL001–RL017.

============ ========================== =====================================
Code         Name                       Hazard class
============ ========================== =====================================
``RL001``    duplicate-index-write      numpy fancy-indexing writes that keep
                                        only the last duplicate index
``RL002``    stale-cache-latch          build-once latches whose inputs change
                                        without invalidation
``RL003``    lock-discipline            guarded attributes touched outside
                                        their ``with self._lock:`` block
``RL004``    caller-owned-mutation      in-place mutation of dict/array
                                        parameters that were never copied
``RL005``    float-equality             exact ``==``/``!=`` against float
                                        literals in numeric code
``RL006``    transfer-rate-invariant    negative or non-normalized literal
                                        transfer rates at schema build sites
``RL007``    lockset-discipline         guarded attribute accessed where the
                                        computed lockset lacks its lock;
                                        lock-ordering cycles across methods
``RL008``    unbounded-fixpoint-loop    residual-testing ``while`` loops with
                                        no iteration cap on any path
``RL009``    use-after-invalidate       cached attribute read on a path after
                                        ``None``/clear with no rebuild
``RL010``    resource-lifecycle         file/mmap/socket acquired on a path
                                        that can exit without release
``RL011``    interprocedural-lock-order deadlock cycles, self-deadlock
                                        re-acquisition and unheld ``*_locked``
                                        helpers across call chains
``RL012``    cache-key-fencing          serve-tier cache key missing the rate
                                        fingerprint or ingest-epoch component
``RL013``    blocking-under-lock        I/O, subprocess, sleep or fixpoint
                                        solve reachable while a lock is held
``RL014``    wire-input-to-sink         wire-parsed input reaching an index/
                                        offset/path/rate sink unvalidated
``RL015``    zero-denominator           division by an accumulated total or
                                        ``len()`` not provably non-zero
``RL016``    rate-out-of-range          damping/rate/epsilon argument whose
                                        interval is provably out of range
``RL017``    index-out-of-bounds        index/offset into slab/array storage
                                        provably negative or past the length
============ ========================== =====================================

RL001–RL006 are per-node AST visitors; RL007–RL009 are flow-sensitive — they
consume the per-function CFGs of :mod:`repro.analysis.cfg` through the
fixpoint solver of :mod:`repro.analysis.dataflow`.  RL010–RL014 and RL016
are *interprocedural* (:class:`~repro.analysis.base.ProjectChecker`) — the
runner builds one :class:`~repro.analysis.callgraph.Project` (call graph +
bottom-up :mod:`~repro.analysis.summaries`) and runs them once over the
whole file set, serially, after the per-file phase.  RL015 and RL017 are
per-file instances of the abstract interpreter
(:mod:`repro.analysis.absint`): they share one value-domain solve per
function through :meth:`~repro.analysis.base.SourceFile.solution_cache`.
"""

from repro.analysis.checkers.blocking_under_lock import BlockingUnderLockChecker
from repro.analysis.checkers.cache_key_fencing import CacheKeyFencingChecker
from repro.analysis.checkers.cache_latch import CacheLatchChecker
from repro.analysis.checkers.duplicate_index import DuplicateIndexWriteChecker
from repro.analysis.checkers.fixpoint_loops import FixpointLoopChecker
from repro.analysis.checkers.float_equality import FloatEqualityChecker
from repro.analysis.checkers.index_bounds import IndexBoundsChecker
from repro.analysis.checkers.interprocedural_locks import InterproceduralLockChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.lockset_discipline import LocksetDisciplineChecker
from repro.analysis.checkers.numeric_ranges import NumericRangeChecker
from repro.analysis.checkers.param_mutation import ParamMutationChecker
from repro.analysis.checkers.rate_invariants import RateInvariantChecker
from repro.analysis.checkers.resource_lifecycle import ResourceLifecycleChecker
from repro.analysis.checkers.use_after_invalidate import UseAfterInvalidateChecker
from repro.analysis.checkers.wire_taint import WireTaintChecker
from repro.analysis.checkers.zero_denominator import ZeroDenominatorChecker

__all__ = [
    "BlockingUnderLockChecker",
    "CacheKeyFencingChecker",
    "CacheLatchChecker",
    "DuplicateIndexWriteChecker",
    "FixpointLoopChecker",
    "FloatEqualityChecker",
    "IndexBoundsChecker",
    "InterproceduralLockChecker",
    "LockDisciplineChecker",
    "LocksetDisciplineChecker",
    "NumericRangeChecker",
    "ParamMutationChecker",
    "RateInvariantChecker",
    "ResourceLifecycleChecker",
    "UseAfterInvalidateChecker",
    "WireTaintChecker",
    "ZeroDenominatorChecker",
]
