"""Built-in checkers; importing this package registers RL001–RL006.

============ ========================== =====================================
Code         Name                       Hazard class
============ ========================== =====================================
``RL001``    duplicate-index-write      numpy fancy-indexing writes that keep
                                        only the last duplicate index
``RL002``    stale-cache-latch          build-once latches whose inputs change
                                        without invalidation
``RL003``    lock-discipline            guarded attributes touched outside
                                        their ``with self._lock:`` block
``RL004``    caller-owned-mutation      in-place mutation of dict/array
                                        parameters that were never copied
``RL005``    float-equality             exact ``==``/``!=`` against float
                                        literals in numeric code
``RL006``    transfer-rate-invariant    negative or non-normalized literal
                                        transfer rates at schema build sites
============ ========================== =====================================
"""

from repro.analysis.checkers.cache_latch import CacheLatchChecker
from repro.analysis.checkers.duplicate_index import DuplicateIndexWriteChecker
from repro.analysis.checkers.float_equality import FloatEqualityChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.param_mutation import ParamMutationChecker
from repro.analysis.checkers.rate_invariants import RateInvariantChecker

__all__ = [
    "CacheLatchChecker",
    "DuplicateIndexWriteChecker",
    "FloatEqualityChecker",
    "LockDisciplineChecker",
    "ParamMutationChecker",
    "RateInvariantChecker",
]
