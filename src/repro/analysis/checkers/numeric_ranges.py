"""RL016 — damping/transfer-rate provably out of range at a call site.

The paper's ranking guarantees hold only inside tight numeric ranges: the
damping factor ``d`` lives in the *open* unit interval (``d = 1.0`` never
converges, ``d = 0.0`` ignores the graph entirely), transfer rates in
``[0, 1]`` (Eq. 2's normalization), and convergence epsilons must be
strictly positive.  RL006 rejects bad *literals* at schema build sites;
this rule is its flow-sensitive sharpening — it evaluates the **interval**
of whatever expression actually feeds a rate-valued position, through
constant propagation, arithmetic, branch refinement and (via the summary
fixpoint) the return ranges of resolved callees.

A finding means the entire interval lies **outside** the valid range — a
proof of misuse, not a heuristic: ``d = 1.0`` passed as ``damping=``,
``eps - eps`` as ``epsilon=``, a rate computed as ``1.0 + bonus`` with
``bonus ≥ 0``.  Values the analysis cannot bound stay quiet (⊤ overlaps
every range), preserving the suite's no-false-positives discipline.

Two shapes:

* a **direct rate position** — ``set_rate(..., x)`` /
  ``set_default_rate(x)`` positional tails and the ``rates=`` /
  ``default_rate=`` / ``rate=`` / ``epsilon=`` / ``damping=`` keywords;
* an argument to a resolved callee that (per its summary's
  ``requires_unit_interval``) forwards the parameter into a rate position
  — the witness chain down to the sink lands in ``metadata["call_chain"]``.
"""

from __future__ import annotations

import ast
import math
from typing import Iterator

from repro.analysis.absint import (
    RATE_KEYWORDS,
    SET_RATE_TAILS,
    ValueProblem,
    states_before_items,
)
from repro.analysis.base import ProjectChecker, call_chain_metadata, register
from repro.analysis.callgraph import (
    FunctionInfo,
    Project,
    calls_in_item,
)
from repro.analysis.dataflow import solve
from repro.analysis.domains import UNIT, Interval
from repro.analysis.findings import Finding

#: keyword -> the interval a value in that position must stay inside.
_VALID_RANGES = {
    "damping": Interval(0.0, 1.0, True, True),
    "rate": UNIT,
    "rates": UNIT,
    "default_rate": UNIT,
    "epsilon": Interval(0.0, math.inf, True, False),
}

_RANGE_TEXT = {
    "damping": "the open interval (0, 1)",
    "rate": "[0, 1]",
    "rates": "[0, 1]",
    "default_rate": "[0, 1]",
    "epsilon": "(0, +inf)",
}


@register
class NumericRangeChecker(ProjectChecker):
    code = "RL016"
    name = "rate-out-of-range"
    summary = (
        "damping/rate/epsilon argument whose interval is provably outside "
        "its valid range"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        graph = project.graph
        for function_id in sorted(graph.functions):
            info = graph.functions[function_id]
            sites = graph.calls.get(function_id, [])
            site_by_call = {id(site.node): site for site in sites}
            if not self._worth_solving(sites, summaries):
                continue
            solution = self._solve(info, site_by_call, summaries)
            if not solution.converged:
                continue
            yield from self._check_function(
                project, info, function_id, solution, site_by_call, summaries
            )

    def _worth_solving(self, sites, summaries) -> bool:
        """Cheap syntactic gate: any rate-relevant call site at all?"""
        for site in sites:
            tail = site.name.rsplit(".", 1)[-1] if site.name else ""
            if tail in SET_RATE_TAILS:
                return True
            if any(
                keyword.arg in RATE_KEYWORDS
                for keyword in site.node.keywords
            ):
                return True
            for callee_id in site.callees:
                summary = summaries.get(callee_id)
                if summary is not None and summary.requires_unit_interval:
                    return True
        return False

    def _solve(self, info: FunctionInfo, site_by_call, summaries):
        def call_ranges(call: ast.Call):
            site = site_by_call.get(id(call))
            if site is None:
                return None
            result = None
            for callee_id in site.callees:
                summary = summaries.get(callee_id)
                if summary is None or summary.return_range is None:
                    return None  # one unbounded target spoils the join
                result = (
                    summary.return_range
                    if result is None
                    else result.join(summary.return_range)
                )
            return result

        return solve(info.cfg(), ValueProblem(call_ranges=call_ranges))

    def _check_function(
        self, project, info, function_id, solution, site_by_call, summaries
    ) -> Iterator[Finding]:
        problem = solution.problem
        seen: set[int] = set()
        for block in info.cfg().blocks:
            pairs, test_state = states_before_items(solution, block)
            if block.test is not None:
                pairs = pairs + [(block.test, test_state)]
            for item, state in pairs:
                if state is None:
                    continue  # unreachable program point
                for call in calls_in_item(item):
                    if id(call) in seen:
                        continue
                    seen.add(id(call))
                    yield from self._check_call(
                        project,
                        info,
                        function_id,
                        call,
                        state,
                        problem,
                        site_by_call,
                        summaries,
                    )

    def _check_call(
        self,
        project,
        info,
        function_id,
        call: ast.Call,
        state,
        problem: ValueProblem,
        site_by_call,
        summaries,
    ) -> Iterator[Finding]:
        name = (
            site_by_call[id(call)].name
            if id(call) in site_by_call
            else ""
        )
        tail = name.rsplit(".", 1)[-1] if name else ""
        if tail in SET_RATE_TAILS and call.args:
            yield from self._judge(
                project, info, call, call.args[-1], "rate",
                f"{tail}()", state, problem, (),
            )
        for keyword in call.keywords:
            if keyword.arg in _VALID_RANGES:
                yield from self._judge(
                    project, info, call, keyword.value, keyword.arg,
                    f"{tail or 'call'}({keyword.arg}=...)", state, problem, (),
                )
        site = site_by_call.get(id(call))
        if site is None:
            return
        for callee_id in site.callees:
            summary = summaries.get(callee_id)
            if summary is None or not summary.requires_unit_interval:
                continue
            callee_info = project.graph.functions.get(callee_id)
            params = (
                _positional_param_names(callee_info.node)
                if callee_info is not None
                else []
            )
            for index in sorted(summary.requires_unit_interval):
                arg = _argument_at(call, index, params)
                if arg is None:
                    continue
                chain = (
                    (function_id, call.lineno),
                ) + summary.unit_interval_witness.get(index, ())
                yield from self._judge(
                    project, info, call, arg, "rate",
                    f"{site.name}() (forwards into a rate position)",
                    state, problem, chain,
                )

    def _judge(
        self, project, info, call, expr, kind, where, state, problem, chain
    ) -> Iterator[Finding]:
        valid = _VALID_RANGES[kind]
        interval = problem.eval(expr, state)
        if interval.is_top() or interval.meet(valid) is not None:
            return
        metadata = {"kind": kind, "interval": repr(interval)}
        if chain:
            metadata["call_chain"] = call_chain_metadata(project, chain)
        yield self.finding_in(
            project,
            info,
            expr if hasattr(expr, "lineno") else call,
            f"this {kind} argument to {where} is provably "
            f"{interval!r}, entirely outside the valid range "
            f"{_RANGE_TEXT[kind]} — the ranking invariants the paper "
            "proves do not hold for it.",
            f"keep the value inside {_RANGE_TEXT[kind]} (or normalize it "
            "before the call).",
            metadata=metadata,
        )


def _positional_param_names(node) -> list[str]:
    params = list(node.args.posonlyargs) + list(node.args.args)
    if params and params[0].arg in ("self", "cls"):
        params = params[1:]
    return [arg.arg for arg in params]


def _argument_at(call: ast.Call, index: int, params: list[str]):
    if index < len(call.args):
        return call.args[index]
    if index < len(params):
        for keyword in call.keywords:
            if keyword.arg == params[index]:
                return keyword.value
    return None
