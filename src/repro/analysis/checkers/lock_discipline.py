"""RL003 — guarded attributes touched outside their lock's ``with`` block.

The serving layer (``repro.serve``), the engine's transfer-view LRU
(``repro.query.engine``) and the metrics registry all rely on lock-guarded
mutable state.  A human reviewer will not re-verify on every PR that each
``self._views`` access sits inside ``with self._view_lock:`` — this rule
does.

Binding an attribute to its lock, two ways:

* **naming convention** — a lock ``self._<stem>_lock`` (assigned from
  ``threading.Lock()`` / ``RLock()`` / ``Condition()``) guards every
  underscore attribute of the class whose name starts with ``_<stem>``
  (``self._view_lock`` guards ``self._views`` and ``self._view_builds``);
* **annotation** — a ``#: guarded by self.<lock>`` comment on the attribute's
  ``__init__`` assignment (same line, or the line directly above) binds it
  explicitly; this is the only way to bind to a bare ``self._lock``.

Every load or store of a bound attribute must then be lexically inside a
``with self.<lock>:`` block, with three exemptions: constructors
(``__init__`` / ``__post_init__`` / ``__new__`` — no concurrent aliases
exist yet), methods whose name ends in ``_locked`` (the convention for
helpers documented as "caller holds the lock"), and lines carrying a
``# repro-lint: ignore[RL003]`` pragma with a rationale.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import Checker, SourceFile, call_name, is_self_attribute, register
from repro.analysis.findings import Finding

_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "Lock",
    "RLock",
    "Condition",
}

_GUARD_COMMENT = re.compile(r"#:\s*guarded by self\.(\w+)")

_NAMED_LOCK = re.compile(r"^_(?P<stem>\w+?)_lock$")


@register
class LockDisciplineChecker(Checker):
    code = "RL003"
    name = "lock-discipline"
    summary = (
        "lock-guarded attribute read or written outside its with-lock block"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        locks = lock_attributes(class_def)
        if not locks:
            return
        guarded = guarded_attributes(source, class_def, locks)
        if not guarded:
            return
        for method in class_def.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _CONSTRUCTORS or method.name.endswith("_locked"):
                continue
            yield from self._check_method(source, class_def, method, guarded)

    def _check_method(
        self,
        source: SourceFile,
        class_def: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: dict[str, str],
    ) -> Iterator[Finding]:
        for access, held in _walk_with_locks(method, frozenset()):
            if not is_self_attribute(access):
                continue
            attr = access.attr  # type: ignore[union-attr]
            lock = guarded.get(attr)
            if lock is None or lock in held:
                continue
            action = "written" if isinstance(access.ctx, ast.Store) else "read"
            yield self.finding(
                source,
                access,
                f"'self.{attr}' is guarded by 'self.{lock}' but {action} in "
                f"'{class_def.name}.{method.name}' outside a "
                f"'with self.{lock}:' block.",
                f"move the access inside 'with self.{lock}:', rename the "
                "method '*_locked' if the caller holds the lock, or pragma "
                "it with a rationale.",
            )


def _walk_with_locks(
    node: ast.AST, held: frozenset[str]
) -> Iterator[tuple[ast.Attribute, frozenset[str]]]:
    """Yield every Attribute node with the set of self-locks held there."""
    if isinstance(node, ast.With):
        acquired = set(held)
        for item in node.items:
            expr = item.context_expr
            if is_self_attribute(expr):
                acquired.add(expr.attr)  # type: ignore[union-attr]
            # The lock expressions themselves still count as accesses.
            yield from _walk_with_locks(expr, held)
            if item.optional_vars is not None:
                yield from _walk_with_locks(item.optional_vars, held)
        inner = frozenset(acquired)
        for stmt in node.body:
            yield from _walk_with_locks(stmt, inner)
        return
    if isinstance(node, ast.Attribute):
        yield node, held
        yield from _walk_with_locks(node.value, held)
        return
    # Nested function/class definitions keep the current held set — a
    # closure created under the lock is usually *run* later, but flagging
    # that correctly needs escape analysis; stay conservative and honest.
    for child in ast.iter_child_nodes(node):
        yield from _walk_with_locks(child, held)


def lock_attributes(class_def: ast.ClassDef) -> set[str]:
    """Attributes assigned from a lock factory anywhere in the class."""
    locks: set[str] = set()
    for node in ast.walk(class_def):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if call_name(node.value) in _LOCK_FACTORIES:
                for target in node.targets:
                    if is_self_attribute(target):
                        locks.add(target.attr)  # type: ignore[union-attr]
    return locks


def guarded_attributes(
    source: SourceFile, class_def: ast.ClassDef, locks: set[str]
) -> dict[str, str]:
    """attribute name -> lock name, from naming convention + annotations."""
    guarded: dict[str, str] = {}

    # Naming convention: self._<stem>_lock guards self._<stem>*.
    stems = []
    for lock in locks:
        match = _NAMED_LOCK.match(lock)
        if match is not None:
            stems.append((f"_{match.group('stem')}", lock))
    if stems:
        for attr in _all_self_attributes(class_def):
            if attr in locks:
                continue
            for prefix, lock in stems:
                if attr.startswith(prefix):
                    guarded[attr] = lock
                    break

    # Annotations: "#: guarded by self.<lock>" on or above an assignment.
    for node in ast.walk(class_def):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if not is_self_attribute(target):
                continue
            lock = _annotation_for(source, node.lineno)
            if lock is not None and lock in locks:
                guarded[target.attr] = lock  # type: ignore[union-attr]
    return guarded


def _annotation_for(source: SourceFile, lineno: int) -> str | None:
    for candidate in (lineno, lineno - 1):
        match = _GUARD_COMMENT.search(source.line_at(candidate))
        if match is not None:
            return match.group(1)
    return None


def _all_self_attributes(class_def: ast.ClassDef) -> set[str]:
    attrs: set[str] = set()
    for node in ast.walk(class_def):
        if is_self_attribute(node):
            attrs.add(node.attr)  # type: ignore[union-attr]
    return attrs
