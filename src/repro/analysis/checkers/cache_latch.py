"""RL002 — build-once cache latches whose inputs change without invalidation.

The PR 2 bug this rule encodes: ``SearchEngine.transfer_view`` once built its
transfer graph under ``if self._transfer_graph is None:`` and kept serving it
after the transfer *rates* it baked in had been replaced — a latch that
ignores its inputs.  The same shape nearly recurred in the serving layer's
``DatasetRuntime`` (saved only by a runtime ``is_stale`` check).

Detection, per class:

1. find latch sites — ``if self._x is None:`` or ``if not self._flag:``
   guards whose body assigns the latched attribute (``self._x = ...`` /
   ``self._flag = True``);
2. collect the latch's *inputs* — every other ``self.<attr>`` **read** inside
   the guard body;
3. flag the latch if any input attribute is **assigned** in some other
   method (``__init__``/``__post_init__`` excluded: construction precedes
   the latch) that does not also reset the latch attribute.

A method that rewrites an input *and* resets the latch (``self._x = None`` /
``self._flag = False``) is a correct invalidation and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, SourceFile, is_self_attribute, register
from repro.analysis.findings import Finding

_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}


@register
class CacheLatchChecker(Checker):
    code = "RL002"
    name = "stale-cache-latch"
    summary = (
        "build-once latch whose inputs are reassigned elsewhere without "
        "invalidating the cached attribute"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = [
            node
            for node in class_def.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        writes_by_method = {
            method.name: _attribute_writes(method) for method in methods
        }
        for method in methods:
            for latch in _latch_sites(method):
                inputs = latch.input_reads
                if not inputs:
                    continue
                for other in methods:
                    if other.name == method.name or other.name in _CONSTRUCTORS:
                        continue
                    written = writes_by_method[other.name]
                    stale_inputs = sorted(inputs & written)
                    if not stale_inputs:
                        continue
                    if latch.attr in written:
                        # The writer also touches the latch attribute —
                        # treated as an invalidation/refresh.
                        continue
                    yield self.finding(
                        source,
                        latch.guard,
                        f"build-once latch on 'self.{latch.attr}' reads "
                        f"{_fmt(stale_inputs)}, which "
                        f"'{class_def.name}.{other.name}' reassigns without "
                        f"invalidating 'self.{latch.attr}'.",
                        f"reset 'self.{latch.attr}' where its inputs change, "
                        "or key the cache by the inputs' value.",
                    )


class _Latch:
    __slots__ = ("guard", "attr", "input_reads")

    def __init__(self, guard: ast.If, attr: str, input_reads: set[str]) -> None:
        self.guard = guard
        self.attr = attr
        self.input_reads = input_reads


def _latch_sites(method: ast.FunctionDef | ast.AsyncFunctionDef) -> list[_Latch]:
    latches: list[_Latch] = []
    for node in ast.walk(method):
        if not isinstance(node, ast.If):
            continue
        attr = _latched_attr(node.test)
        if attr is None:
            continue
        assigned = _attribute_writes_in(node.body)
        if attr not in assigned:
            continue
        reads = _attribute_reads_in(node.body) - {attr}
        latches.append(_Latch(node, attr, reads))
    return latches


def _latched_attr(test: ast.AST) -> str | None:
    """The attribute a latch guard tests, for the two latch idioms."""
    # if self._x is None:
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
        and is_self_attribute(test.left)
    ):
        return test.left.attr  # type: ignore[union-attr]
    # if not self._built:
    if (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and is_self_attribute(test.operand)
    ):
        return test.operand.attr  # type: ignore[union-attr]
    return None


def _attribute_writes(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    return _attribute_writes_in(method.body)


def _attribute_writes_in(body: list[ast.stmt]) -> set[str]:
    written: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if is_self_attribute(target):
                        written.add(target.attr)  # type: ignore[union-attr]
    return written


def _attribute_reads_in(body: list[ast.stmt]) -> set[str]:
    read: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if is_self_attribute(node) and isinstance(node.ctx, ast.Load):
                read.add(node.attr)  # type: ignore[union-attr]
    return read


def _fmt(attrs: list[str]) -> str:
    return ", ".join(f"'self.{attr}'" for attr in attrs)
