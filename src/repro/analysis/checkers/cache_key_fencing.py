"""RL012 — serve-tier cache keys missing the rate-fingerprint/epoch fence.

PR 7's hardest bug class: a result cached under a key that does not encode
*everything* the answer depends on keeps serving stale authority scores
after the thing it omitted changes.  The serve tier's contract is that any
query-shaped cache key carries both

* the **rate fingerprint** (``rates_fingerprint`` / ``make_key``) — answers
  change when feedback reformulation retunes transfer rates, and
* the **ingest epoch** (a ``("epoch", …)`` component) — answers change when
  live mutations refresh the precomputed vectors.

This rule finds every cache sink (``….get(key)`` / ``….put(key, …)`` on a
receiver whose name contains ``cache``), reconstructs which fingerprint
components may flow into the key expression — through assignments, tuple
concatenation and project helpers via their summaries' ``cache_key_tags``
(so a key built by a helper function still counts) — and flags keys that
carry query/rate components but can *never* carry the epoch (or vice
versa).  The flow analysis is a may-union over paths, so the accepted
shape, where the epoch component is appended only when ingest is enabled,
stays clean; only keys with **no** path adding the component are findings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ProjectChecker, register
from repro.analysis.callgraph import Project
from repro.analysis.findings import Finding
from repro.analysis.summaries import (
    expression_tags,
    make_callee_tags,
    solve_key_tags,
)

#: Components every query-shaped key must carry.  The store generation
#: ("gen") is deliberately *not* accepted as the epoch fence: it only moves
#: on store-backed slab swaps, while in-memory ingest refreshes bump the
#: epoch alone — a key carrying gen but not epoch still serves stale
#: answers on the in-memory path.
_QUERY_TAGS = frozenset({"query", "rates"})
_EPOCH_TAGS = frozenset({"epoch"})


@register
class CacheKeyFencingChecker(ProjectChecker):
    code = "RL012"
    name = "cache-key-fencing"
    summary = (
        "serve-tier cache key misses the rate-fingerprint or ingest-epoch "
        "component"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        graph = project.graph
        for function_id in sorted(graph.functions):
            info = graph.functions[function_id]
            sinks = _cache_sinks(info.node)
            if not sinks:
                continue
            site_by_call = {
                id(site.node): site
                for site in graph.calls.get(function_id, [])
            }
            callee_tags = make_callee_tags(site_by_call, summaries.by_id)
            solution = solve_key_tags(info, callee_tags)
            reported: set = set()
            cfg = info.cfg()
            sink_ids = {id(call): (call, receiver) for call, receiver in sinks}
            for block in cfg.blocks:
                states = solution.states_through(block)
                pairs = list(zip(block.body, states))
                if block.test is not None:
                    pairs.append((block.test, solution.state_out_of(block)))
                for item, state in pairs:
                    for call, receiver in _sinks_in_item(item, sink_ids):
                        tags = expression_tags(
                            call.args[0], state, callee_tags
                        )
                        if not tags & _QUERY_TAGS:
                            continue  # not a query-shaped key
                        missing = []
                        if "rates" not in tags:
                            missing.append("rate fingerprint")
                        if not tags & _EPOCH_TAGS:
                            missing.append("ingest epoch")
                        if not missing:
                            continue
                        dedup = (receiver, tuple(missing))
                        if dedup in reported:
                            continue
                        reported.add(dedup)
                        yield self.finding_in(
                            project,
                            info,
                            call,
                            f"cache key used at '{receiver}."
                            f"{call.func.attr}' in '{info.qualname}' never "
                            f"carries the {' or the '.join(missing)}: "
                            "entries will keep serving stale scores after "
                            f"{_staleness_cause(missing)}.",
                            "append the missing component(s) to the key — "
                            "e.g. 'key += ((\"epoch\", staleness[\"epoch\"]"
                            "),)' next to the existing fingerprint parts.",
                            metadata={
                                "key_tags": sorted(tags),
                                "missing": list(missing),
                            },
                        )


def _staleness_cause(missing: list) -> str:
    causes = []
    if "rate fingerprint" in missing:
        causes.append("a feedback reformulation changes the rates")
    if "ingest epoch" in missing:
        causes.append("an ingest refresh republishes the vectors")
    return " or ".join(causes)


def _cache_sinks(func_node) -> list:
    """``(call, receiver_name)`` for every cache get/put in the function."""
    from repro.analysis.callgraph import walk_in_scope

    sinks = []
    for node in walk_in_scope(func_node):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in (
            "get",
            "put",
        ):
            continue
        receiver = _dotted(func.value)
        if receiver and "cache" in receiver.lower():
            sinks.append((node, receiver))
    return sinks


def _sinks_in_item(item, sink_ids: dict):
    """The registered cache sinks occurring inside one CFG block item."""
    roots: list[ast.AST] = []
    if isinstance(item, (ast.stmt, ast.expr)):
        roots = [item]
    else:
        stmt = getattr(item, "stmt", None)
        if stmt is not None and not isinstance(
            stmt, (ast.With, ast.AsyncWith, ast.For, ast.AsyncFor)
        ):
            roots = []
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            roots = [stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            roots = [with_item.context_expr for with_item in stmt.items]
    found = []
    for root in roots:
        for node in ast.walk(root):
            entry = sink_ids.get(id(node))
            if entry is not None:
                found.append(entry)
    return found


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return ""
    return ".".join(reversed(parts))
