"""RL013 — blocking work reachable while an instance lock is held.

The serve tier's locks fence microsecond-scale state: cache maps, staleness
flags, store generations.  Any thread that sleeps, forks a subprocess, hits
the filesystem/network, or runs a power-iteration fixpoint while holding
one stalls every request thread behind it — the latency cliff appears only
under load, never in unit tests.

Three shapes, all over the must-lockset from RL007's analysis so
conditionally-held locks are handled path-sensitively:

* a **blocking primitive called directly** under a held lock
  (``time.sleep``, ``subprocess.run``, ``open``, ``sock.accept``…);
* a **callee that may block**, transitively, via its summary — the witness
  call chain down to the primitive lands in ``metadata["call_chain"]``;
* a **residual-testing fixpoint loop** (RL008's shape — convergence solves
  are the most expensive thing this codebase does) in the region.

``self.<cond>.wait()`` on a held condition variable is exempt — waiting
*releases* the lock, that is the point of the idiom.  ``*_locked`` helpers
are still checked (their caller holds the lock by contract, which is
exactly why blocking inside them is a finding); constructors are not (no
concurrent aliases exist yet).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ProjectChecker, call_chain_metadata, register
from repro.analysis.callgraph import Project
from repro.analysis.cfg import Header
from repro.analysis.checkers.lock_discipline import (
    _CONSTRUCTORS,
    lock_attributes,
)
from repro.analysis.findings import Finding
from repro.analysis.lockset import analyze_method_locksets
from repro.analysis.summaries import SummaryIndex, is_fixpoint_while


@register
class BlockingUnderLockChecker(ProjectChecker):
    code = "RL013"
    name = "blocking-under-lock"
    summary = (
        "I/O, subprocess, sleep or fixpoint solve reachable while a lock "
        "is held"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        graph = project.graph
        for function_id in sorted(graph.functions):
            info = graph.functions[function_id]
            if info.name in _CONSTRUCTORS:
                continue
            summary = summaries.get(function_id)
            if summary is None:
                continue
            yield from self._check_held_calls(
                project, info, function_id, summary, summaries
            )
            yield from self._check_fixpoint_regions(project, info)

    def _check_held_calls(
        self, project, info, function_id, summary, summaries: SummaryIndex
    ) -> Iterator[Finding]:
        for site in summary.held_calls:
            if not site.held:
                continue
            held = _describe_locks(site.held)
            if site.blocking:
                yield self.finding_in(
                    project,
                    info,
                    site.node,
                    f"'{site.name}' blocks while '{info.qualname}' holds "
                    f"{held}; every thread contending for the lock stalls "
                    "behind this call.",
                    "move the blocking work outside the 'with' block and "
                    "publish its result under the lock.",
                    metadata={
                        "locks": sorted(site.held),
                        "blocking": site.name,
                    },
                )
                continue
            for callee_id in site.callees:
                callee = summaries.get(callee_id)
                if callee is None or not callee.may_block:
                    continue
                chain = ((function_id, site.line),) + tuple(
                    callee.blocking_chain
                )
                yield self.finding_in(
                    project,
                    info,
                    site.node,
                    f"'{site.name}' may block (it reaches "
                    f"{callee.blocking_reason or 'blocking work'}) while "
                    f"'{info.qualname}' holds {held}.",
                    "hoist the call out of the locked region, or split the "
                    "callee so its blocking part runs unlocked.",
                    metadata={
                        "locks": sorted(site.held),
                        "blocking": callee.blocking_reason,
                        "call_chain": call_chain_metadata(project, chain),
                    },
                )
                break  # one finding per call site is enough

    def _check_fixpoint_regions(self, project, info) -> Iterator[Finding]:
        if info.class_node is None:
            return
        locks = lock_attributes(info.class_node)
        if not locks:
            return
        model = analyze_method_locksets(info.cfg(), locks, info.name)
        reported: set = set()
        for _block, item, state in model.held_at_items():
            if not state or not isinstance(item, Header):
                continue
            stmt = item.stmt
            if not isinstance(stmt, ast.While) or not is_fixpoint_while(stmt):
                continue
            if id(stmt) in reported:
                continue
            reported.add(id(stmt))
            yield self.finding_in(
                project,
                info,
                stmt,
                f"a residual-testing fixpoint loop runs while "
                f"'{info.qualname}' holds {_describe_locks(state)} — "
                "convergence time is unbounded from the lock's point of "
                "view.",
                "solve outside the lock and swap the converged result in "
                "under it.",
                metadata={"locks": sorted(state)},
            )


def _describe_locks(held) -> str:
    names = ", ".join(f"'self.{lock}'" for lock in sorted(held))
    return names
