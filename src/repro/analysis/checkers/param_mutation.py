"""RL004 — in-place mutation of caller-owned parameters.

The PR 1 bug this rule encodes: ``SearchEngine`` mutated the *shared* rate
map a caller passed in, so one feedback session's learned rates contaminated
every other session against the same engine.  Rate maps, query-weight dicts
and score arrays are caller-owned values; a function that needs a modified
copy must copy first.

Flagged, for any parameter other than ``self``/``cls``:

* subscript stores — ``param[key] = value`` and ``param[key] += value``;
* mutating method calls — ``param.update(...)``, ``.pop()``, ``.popitem()``,
  ``.clear()``, ``.setdefault()``, ``.insert()``, ``.remove()``,
  ``.sort()``, ``.fill()``;
* ``del param[key]``.

Not flagged: parameters rebound to a copy *before* the mutation
(``rates = dict(rates)``, ``scores = scores.copy()`` — the idiom this rule
wants to push you toward), and parameters whose name declares the contract
(``out``, ``out_*``, ``*_out``, ``buffer``, ``sink``, ``acc``,
``accumulator`` — numpy-style output parameters).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import Checker, SourceFile, register
from repro.analysis.findings import Finding

_MUTATORS = {
    "update",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "insert",
    "remove",
    "sort",
    "fill",
}

#: Parameter names whose contract *is* "the callee writes into me".
_OUT_PARAM = re.compile(r"^(out(_\w+)?|\w+_out|buffer|sink|acc|accumulator)$")


@register
class ParamMutationChecker(Checker):
    code = "RL004"
    name = "caller-owned-mutation"
    summary = "caller-owned dict/array parameter mutated without copying first"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(source, node)

    def _check_function(
        self, source: SourceFile, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        args = func.args
        params = {
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if arg.arg not in {"self", "cls"} and not _OUT_PARAM.match(arg.arg)
        }
        if not params:
            return
        rebound_at = _rebind_lines(func, params)

        for node in _walk_scope(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    name = _subscript_param(target, params)
                    if name and not _rebound_before(rebound_at, name, node.lineno):
                        yield self.finding(
                            source,
                            node,
                            f"parameter {name!r} is mutated in place "
                            f"(item assignment) — the caller's object changes.",
                            f"copy first ({name} = dict({name}) / "
                            f"{name}.copy()) or document ownership transfer "
                            "with a pragma.",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    name = _subscript_param(target, params)
                    if name and not _rebound_before(rebound_at, name, node.lineno):
                        yield self.finding(
                            source,
                            node,
                            f"parameter {name!r} is mutated in place "
                            "(del of an item) — the caller's object changes.",
                            f"copy {name} before deleting from it.",
                        )
            elif isinstance(node, ast.Call):
                name = _mutator_call_param(node, params)
                if name and not _rebound_before(rebound_at, name, node.lineno):
                    method = node.func.attr  # type: ignore[union-attr]
                    yield self.finding(
                        source,
                        node,
                        f"parameter {name!r} is mutated in place "
                        f"(.{method}()) — the caller's object changes.",
                        f"copy first ({name} = dict({name}) / {name}.copy()) "
                        "or document ownership transfer with a pragma.",
                    )


def _walk_scope(func: ast.FunctionDef | ast.AsyncFunctionDef):
    """Walk ``func`` without descending into nested defs (own param scopes)."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _subscript_param(target: ast.AST, params: set[str]) -> str | None:
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Name)
        and target.value.id in params
    ):
        return target.value.id
    return None


def _mutator_call_param(node: ast.Call, params: set[str]) -> str | None:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _MUTATORS
        and isinstance(func.value, ast.Name)
        and func.value.id in params
    ):
        return func.value.id
    return None


def _rebind_lines(
    func: ast.FunctionDef | ast.AsyncFunctionDef, params: set[str]
) -> dict[str, int]:
    """First line where each parameter name is rebound (copy idiom)."""
    rebound: dict[str, int] = {}
    for node in _walk_scope(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in params:
                    line = rebound.get(target.id)
                    if line is None or node.lineno < line:
                        rebound[target.id] = node.lineno
    return rebound


def _rebound_before(rebound_at: dict[str, int], name: str, lineno: int) -> bool:
    line = rebound_at.get(name)
    return line is not None and line <= lineno
