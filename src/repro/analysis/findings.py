"""The unit of analyzer output: one :class:`Finding` per rule violation.

A finding carries everything a reporter or a baseline needs: location
(file, line, column), the rule code (``RL001``..), a human message, and a
concrete *suggestion* — the codebase-specific remedy (``np.add.at``, a lock
block, a pragma with a rationale).  ``fingerprint`` identifies a finding
across line drift: it hashes the rule code together with the stripped source
line, so a baseline survives unrelated edits above the finding but a change
to the flagged line itself resurfaces it for review.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    file: str
    line: int
    code: str
    message: str = field(compare=False)
    suggestion: str = field(default="", compare=False)
    column: int = field(default=0, compare=False)
    #: The stripped source line the finding points at (fingerprint input).
    source_line: str = field(default="", compare=False)
    #: Rule-specific extras (RL007: the lock name; RL008: the loop's line
    #: span) — reporters may surface it, but it is deliberately *not* part
    #: of :meth:`fingerprint`, so richer metadata never invalidates an
    #: existing baseline entry.
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number independent)."""
        payload = f"{self.code}:{self.source_line.strip()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``--format json`` reporter's rows)."""
        row = {
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
            "suggestion": self.suggestion,
            "fingerprint": self.fingerprint(),
        }
        if self.metadata:
            row["metadata"] = dict(self.metadata)
        return row
