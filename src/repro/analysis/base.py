"""The checker plugin API: :class:`SourceFile`, :class:`Checker`, registry.

A checker is a class with a ``code`` (``RL001``..), a one-line ``summary``
and a :meth:`Checker.check` that yields :class:`~repro.analysis.findings.Finding`
objects for one parsed module.  Checkers register themselves with
:func:`register` at import time; :func:`all_checkers` instantiates the full
set (optionally filtered by code) for a run.

The framework hands every checker a :class:`SourceFile` — the path, raw
text, split lines and parsed AST — so checkers can combine tree-level
analysis with line-level context (e.g. the ``#: guarded by self._lock``
annotations of RL003 live in comments the AST does not carry).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Type

from repro.analysis.findings import Finding


@dataclass
class SourceFile:
    """One module under analysis: path, text, lines and parsed tree."""

    path: str
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: Per-function CFG cache, keyed by ``id(func_node)`` — built lazily by
    #: :meth:`cfg_for` so a run with only per-node checkers never pays for
    #: graph construction, and flow-sensitive checkers share one graph per
    #: function instead of rebuilding it per rule.
    _cfgs: dict = field(default_factory=dict, repr=False, compare=False)
    #: Per-domain dataflow solution caches (same lifetime/idiom as ``_cfgs``)
    #: so RL015 and RL017 share one value-domain solve per function.
    _solutions: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        tree = ast.parse(text, filename=path)
        return cls(path=path, text=text, tree=tree, lines=text.splitlines())

    def line_at(self, lineno: int) -> str:
        """The 1-based source line, or ``""`` past EOF (synthetic nodes)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Every function/method definition in the module, outermost first."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def cfg_for(self, func: "ast.FunctionDef | ast.AsyncFunctionDef"):
        """The (cached) control-flow graph of one function in this module."""
        from repro.analysis.cfg import build_cfg

        cfg = self._cfgs.get(id(func))
        if cfg is None:
            cfg = build_cfg(func)
            self._cfgs[id(func)] = cfg
        return cfg

    def solution_cache(self, domain: str) -> dict:
        """The per-function solution cache of one abstract domain."""
        return self._solutions.setdefault(domain, {})


class Checker:
    """Base class for one rule; subclasses set the class attributes."""

    #: Rule code, e.g. ``"RL001"`` — what pragmas and baselines reference.
    code: str = ""
    #: Short name used in reports, e.g. ``duplicate-index-write``.
    name: str = ""
    #: One-line description of the hazard class the rule targets.
    summary: str = ""

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        source: SourceFile,
        node: ast.AST,
        message: str,
        suggestion: str = "",
        metadata: dict | None = None,
    ) -> Finding:
        """A :class:`Finding` anchored at ``node`` with fingerprint context."""
        lineno = getattr(node, "lineno", 1)
        return Finding(
            file=source.path,
            line=lineno,
            code=self.code,
            message=message,
            suggestion=suggestion,
            column=getattr(node, "col_offset", 0),
            source_line=source.line_at(lineno),
            metadata=dict(metadata) if metadata else {},
        )


class ProjectChecker(Checker):
    """Base class for interprocedural rules needing whole-project context.

    The runner collects every parseable file first, builds one
    :class:`~repro.analysis.callgraph.Project` (call graph + function
    summaries) and then calls :meth:`check_project` once — always in the
    main process, after the per-file phase, so ``--jobs`` stays
    byte-identical.  :meth:`Checker.check` is a no-op so a project checker
    accidentally run per-file yields nothing rather than crashing.
    """

    #: Lets the runner split the registry without isinstance gymnastics
    #: across pickled worker boundaries.
    interprocedural: bool = True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings over a :class:`~repro.analysis.callgraph.Project`."""
        raise NotImplementedError

    def finding_in(
        self,
        project,
        function_info,
        node: ast.AST,
        message: str,
        suggestion: str = "",
        metadata: dict | None = None,
    ) -> Finding:
        """A finding anchored at ``node`` inside ``function_info``'s module."""
        return self.finding(
            function_info.source, node, message, suggestion, metadata
        )


def call_chain_metadata(project, chain) -> list:
    """Render a summary witness chain for finding metadata / SARIF codeFlows.

    ``chain`` is a tuple of ``(function_id, line)`` steps, outermost caller
    first; each becomes ``{"function", "file", "line"}``.
    """
    rendered = []
    for function_id, line in chain:
        info = project.graph.functions.get(function_id)
        rendered.append(
            {
                "function": function_id,
                "file": info.source.path if info is not None else "",
                "line": line,
            }
        )
    return rendered


_REGISTRY: dict[str, Type[Checker]] = {}


def register(checker_class: Type[Checker]) -> Type[Checker]:
    """Class decorator: add a checker to the global registry (keyed by code)."""
    code = checker_class.code
    if not code:
        raise ValueError(f"{checker_class.__name__} has no rule code")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not checker_class:
        raise ValueError(f"rule code {code} registered twice")
    _REGISTRY[code] = checker_class
    return checker_class


def checker_codes() -> list[str]:
    """All registered rule codes, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def all_checkers(select: Iterable[str] | None = None) -> list[Checker]:
    """Instantiate registered checkers, optionally only the ``select`` codes."""
    _ensure_builtins()
    if select is None:
        wanted = sorted(_REGISTRY)
    else:
        wanted = list(select)
        unknown = [code for code in wanted if code not in _REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown rule codes: {', '.join(unknown)}; "
                f"registered: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[code]() for code in wanted]


def _ensure_builtins() -> None:
    """Import the built-in checker package so registration has happened."""
    import repro.analysis.checkers  # noqa: F401  (import for side effect)


# -- shared AST helpers used by several checkers ------------------------------


def is_self_attribute(node: ast.AST, attr: str | None = None) -> bool:
    """Whether ``node`` is ``self.<attr>`` (any attribute when ``attr=None``)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def call_name(node: ast.Call) -> str:
    """Dotted name of a call target: ``np.add.at`` -> ``"np.add.at"``."""
    parts: list[str] = []
    target: ast.AST = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
    elif parts:
        # A non-name head (call/subscript); keep the attribute chain only.
        pass
    return ".".join(reversed(parts))


def literal_number(node: ast.AST) -> float | None:
    """The numeric value of a literal (including ``-x``), else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = literal_number(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    return None
