"""The accepted-findings baseline: ``.repro-lint-baseline.json``.

A baseline freezes the findings a team has reviewed and chosen to live with,
so CI fails only on *new* findings.  Entries match by ``(file, code,
fingerprint)`` — the fingerprint hashes the flagged source line, so findings
survive line drift from unrelated edits but resurface when the flagged line
itself changes.  Each entry carries an optional ``reason``; ``repro lint
--write-baseline`` preserves reasons of entries that are still live.

The file format is deliberately boring JSON::

    {
      "version": 1,
      "entries": [
        {"file": "src/repro/x.py", "code": "RL004",
         "fingerprint": "ab12...", "reason": "fills caller's out-dict"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: location-independent identity plus rationale."""

    file: str
    code: str
    fingerprint: str
    reason: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.file, self.code, self.fingerprint)


@dataclass
class Baseline:
    """The set of accepted findings, with O(1) membership checks."""

    entries: list[BaselineEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index = {entry.key(): entry for entry in self.entries}

    def __len__(self) -> int:
        return len(self._index)

    def contains(self, finding: Finding) -> bool:
        return (finding.file, finding.code, finding.fingerprint()) in self._index

    def reason_for(self, finding: Finding) -> str:
        entry = self._index.get((finding.file, finding.code, finding.fingerprint()))
        return entry.reason if entry is not None else ""

    @classmethod
    def from_findings(
        cls, findings: list[Finding], reasons: "Baseline | None" = None
    ) -> "Baseline":
        """A baseline accepting ``findings``, keeping prior entries' reasons."""
        entries = []
        seen: set[tuple[str, str, str]] = set()
        for finding in findings:
            entry = BaselineEntry(
                file=finding.file,
                code=finding.code,
                fingerprint=finding.fingerprint(),
                reason=reasons.reason_for(finding) if reasons is not None else "",
            )
            if entry.key() not in seen:
                seen.add(entry.key())
                entries.append(entry)
        return cls(entries=entries)


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    file_path = Path(path)
    if not file_path.exists():
        return Baseline()
    payload = json.loads(file_path.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {file_path} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = [
        BaselineEntry(
            file=row["file"],
            code=row["code"],
            fingerprint=row["fingerprint"],
            reason=row.get("reason", ""),
        )
        for row in payload.get("entries", [])
    ]
    return Baseline(entries=entries)


def save_baseline(baseline: Baseline, path: str | Path) -> None:
    """Write the baseline deterministically (sorted entries, stable diffs)."""
    rows = [
        {
            "file": entry.file,
            "code": entry.code,
            "fingerprint": entry.fingerprint,
            **({"reason": entry.reason} if entry.reason else {}),
        }
        for entry in sorted(baseline.entries, key=BaselineEntry.key)
    ]
    payload = {"version": BASELINE_VERSION, "entries": rows}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
