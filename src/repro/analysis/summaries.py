"""Bottom-up function summaries over the project call graph.

One :class:`FunctionSummary` per ``def``, computed from the existing
CFG/dataflow machinery (PR 5) and composed along the call graph in SCC
order — the same summary-propagation shape as the paper's authority-flow
fixpoint, lifted from score vectors to program facts.  Summaries of callees
outside a strongly connected component are final before the component is
processed; members of one SCC (recursion, mutual recursion) iterate to a
local fixpoint, which terminates because every summary field is a finite
set growing monotonically.

What a summary carries (the facts RL010–RL013 consume):

* **locks** — which instance locks the function acquires (directly and
  transitively, qualified ``module.Class.lock``), which locks are *held* at
  each call site (from the must-lockset analysis), and which locks a
  ``*_locked`` helper *requires* its caller to hold (the guarded attributes
  it touches without acquiring the lock itself);
* **blocking** — whether the function may block: a direct primitive
  (``time.sleep``, ``subprocess.run``, socket/file I/O) or a
  residual-testing fixpoint loop, or any resolved callee that may block;
  with a witness chain for reporting;
* **resources** — whether the function returns a freshly acquired
  file/mmap/socket (so callers inherit ownership) and which of its
  parameters it reliably releases (so passing a resource to it counts as a
  release, not an escape);
* **exceptions** — exception names raised directly and the transitive
  propagated set (an over-approximation: handlers are not subtracted);
* **cache-key tags** — which fingerprint components (``query``, ``rates``,
  ``epoch``, ``gen``…) the function's return value may carry, so RL012 can
  see through key-building helpers.

Unknown callees contribute nothing: every fact here is a *may* fact whose
absence keeps a checker quiet, so unresolved calls under-approximate and
never invent findings (RL010's escape analysis handles ownership transfer
to unknown callees separately, at the call site).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.absint import (
    TaintFacts,
    gather_taint_facts,
    resolve_labels,
)
from repro.analysis.base import call_name, literal_number
from repro.analysis.callgraph import (
    CallSite,
    FunctionInfo,
    Project,
    calls_in_function,
    calls_in_item,
    walk_in_scope,
)
from repro.analysis.cfg import Header, WithEnter
from repro.analysis.dataflow import DataflowProblem, solve
from repro.analysis.lockset import analyze_method_locksets

#: Hard cap on fixpoint rounds inside one SCC — the lattice is finite so
#: real projects converge in 2–3 rounds; the cap only guards a logic bug.
MAX_SCC_ROUNDS = 50

#: Calls that block the calling thread, by exact dotted name.
BLOCKING_CALLS = {
    "time.sleep",
    "sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "select.select",
    "socket.create_connection",
    "urllib.request.urlopen",
    "urlopen",
    "open",
    "os.open",
    "os.fdopen",
    "mmap.mmap",
}

#: Attribute tails that block regardless of receiver (socket/path/event I/O).
BLOCKING_TAILS = {
    "accept",
    "recv",
    "recvfrom",
    "sendall",
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
    "wait",
}

#: Acquisition primitives RL010 tracks, dotted name -> resource kind.
ACQUIRE_CALLS = {
    "open": "file",
    "os.fdopen": "file",
    "mmap.mmap": "mmap",
    "socket.socket": "socket",
    "socket.create_server": "socket",
    "socket.create_connection": "socket",
    "tempfile.NamedTemporaryFile": "file",
    "tempfile.TemporaryFile": "file",
}

#: Key-building helpers of the serve tier, by bare name -> tags produced.
KEY_TAG_FUNCTIONS = {
    "make_key": frozenset({"query", "rates"}),
    "query_fingerprint": frozenset({"query"}),
    "rates_fingerprint": frozenset({"rates"}),
}


@dataclass(frozen=True)
class HeldCall:
    """One call site with the lockset certainly held when it executes."""

    node: ast.Call
    name: str
    callees: tuple[str, ...]
    #: Local lock attribute names (``_lock``) held at the call.
    held: frozenset
    line: int
    #: Whether the call itself is a blocking primitive.
    blocking: bool = False


#: One step of a witness chain: (function id, line in that function).
ChainStep = tuple[str, int]


@dataclass
class FunctionSummary:
    """Everything the interprocedural checkers know about one function."""

    function: str
    #: Qualified (``module.Class.lock``) locks acquired in the body itself.
    locks_acquired: frozenset = frozenset()
    #: Locks acquired here or in any transitively resolved callee.
    locks_acquired_transitive: frozenset = frozenset()
    #: qualified lock -> call chain from this function to its acquisition.
    acquire_witness: dict = field(default_factory=dict)
    #: Local lock names a ``*_locked`` helper needs its caller to hold
    #: (empty for other functions — RL007 owns their direct violations).
    locks_required: frozenset = frozenset()
    #: local lock -> chain to the guarded access that needs it.
    required_witness: dict = field(default_factory=dict)
    held_calls: tuple = ()
    #: (description, line) of direct blocking primitive calls.
    blocking_sites: tuple = ()
    has_fixpoint_loop: bool = False
    fixpoint_line: int = 0
    may_block: bool = False
    #: Chain to the first blocking witness; last step names the primitive.
    blocking_chain: tuple = ()
    blocking_reason: str = ""
    #: Resource kind the return value carries fresh ownership of, if any.
    returns_resource: str | None = None
    #: Parameter names this function reliably releases on every path it
    #: controls (``.close()``, ``with param:``, or a releasing callee).
    releases_params: frozenset = frozenset()
    #: Exception names raised by ``raise`` statements in the body.
    raises: frozenset = frozenset()
    #: Transitive raised set (handlers not subtracted — over-approximate).
    propagates: frozenset = frozenset()
    #: Fingerprint components the return value may carry (RL012).
    cache_key_tags: frozenset = frozenset()
    #: Concrete taint the return value may carry (``{"wire"}`` or empty).
    returns_taint: frozenset = frozenset()
    #: Parameter indices whose taint may flow into the return value.
    taint_param_to_return: frozenset = frozenset()
    #: param index -> sink kind its value may reach unsanitized (here or in
    #: a transitively resolved callee).
    sink_params: dict = field(default_factory=dict)
    #: param index -> call chain to the sink (frozen at first discovery).
    sink_witness: dict = field(default_factory=dict)
    #: ``(kind, line)`` -> ``(chain, detail)`` for sinks reached by concrete
    #: wire taint inside this function — RL014's finding material.
    wire_sinks: dict = field(default_factory=dict)
    #: Parameter indices flowing into a transfer-rate/damping position.
    requires_unit_interval: frozenset = frozenset()
    #: param index -> chain to the rate position (frozen at first discovery).
    unit_interval_witness: dict = field(default_factory=dict)
    #: Interval of the return value when provable (round-independent).
    return_range: object = None


class SummaryIndex:
    """Summaries by function id, plus fixpoint accounting for the tests."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.by_id: dict[str, FunctionSummary] = {}
        #: Rounds each SCC took to converge (property-tested to stay small).
        self.scc_rounds: list[int] = []
        self.converged: bool = True

    def get(self, function_id: str) -> FunctionSummary | None:
        return self.by_id.get(function_id)

    def __getitem__(self, function_id: str) -> FunctionSummary:
        return self.by_id[function_id]

    def __contains__(self, function_id: str) -> bool:
        return function_id in self.by_id

    def __len__(self) -> int:
        return len(self.by_id)


# -- direct (intraprocedural) facts -------------------------------------------


@dataclass
class _Facts:
    """Per-function groundwork shared by the summary fixpoint rounds."""

    info: FunctionInfo
    locks: set
    guarded: dict
    site_by_call: dict
    held_calls: list
    blocking_sites: list
    has_fixpoint_loop: bool
    fixpoint_line: int
    raises: frozenset
    #: (local lock, access line) pairs for guarded attrs touched unheld.
    direct_required: list
    #: local lock -> first acquisition line (witness anchor).
    acquire_lines: dict
    param_names: tuple
    direct_releases: set
    #: (callee ids, [(position, param name passed)]) for release closure.
    release_calls: list
    #: var -> first call assigned to it (returns-resource resolution).
    assign_calls: dict
    return_stmts: list
    mentions_key_api: bool
    #: Frozen intraprocedural taint groundwork (one solve, reused per round).
    taint: TaintFacts
    #: Interval of the return value when provable, else ``None``.
    return_range: object


def _qualify(info: FunctionInfo, lock: str) -> str:
    owner = info.class_name or info.qualname
    return f"{info.module}.{owner}.{lock}"


def _gather_facts(info: FunctionInfo, sites: list[CallSite]) -> _Facts:
    # Imported here, not at module level: the checkers package imports the
    # RL010–RL013 modules, which import this one — a top-level import of
    # ``repro.analysis.checkers.*`` would close the cycle.
    from repro.analysis.checkers.lock_discipline import (
        guarded_attributes,
        lock_attributes,
    )

    node = info.node
    site_by_call = {id(site.node): site for site in sites}
    locks = lock_attributes(info.class_node) if info.class_node is not None else set()
    guarded = (
        guarded_attributes(info.source, info.class_node, locks)
        if locks
        else {}
    )

    held_calls: list[HeldCall] = []
    direct_required: list[tuple[str, int]] = []
    acquire_lines: dict[str, int] = {}
    if locks:
        model = analyze_method_locksets(info.cfg(), locks, info.name)
        for block, item, state in model.held_at_items():
            if isinstance(item, WithEnter):
                lock = model.resolved.get(id(item))
                if lock is not None:
                    acquire_lines.setdefault(lock, item.item.context_expr.lineno)
            if state is None:
                continue  # unreachable: the call never executes
            for call in calls_in_item(item):
                held_calls.append(_held_call(call, site_by_call, state))
            if guarded:
                for access in _guarded_accesses_in(item, guarded):
                    lock = guarded[access.attr]
                    if lock not in state:
                        direct_required.append((lock, access.lineno))
        for block in model.cfg.blocks:
            if block.test is None:
                continue
            state = model.held_at_test(block)
            if state is None:
                continue
            for call in calls_in_item(block.test):
                held_calls.append(_held_call(call, site_by_call, state))
    else:
        for call in calls_in_function(node):
            held_calls.append(_held_call(call, site_by_call, frozenset()))

    fixpoint_line = _find_fixpoint_loop(node)
    raises = frozenset(_raised_names(node))
    param_names = tuple(arg.arg for arg in _positional_params(node))
    direct_releases, release_calls = _param_releases(
        node, param_names, site_by_call
    )

    assign_calls: dict[str, ast.Call] = {}
    return_stmts: list[ast.Return] = []
    for inner in walk_in_scope(node):
        if (
            isinstance(inner, ast.Assign)
            and len(inner.targets) == 1
            and isinstance(inner.targets[0], ast.Name)
            and isinstance(inner.value, ast.Call)
        ):
            assign_calls.setdefault(inner.targets[0].id, inner.value)
        elif isinstance(inner, ast.Return) and inner.value is not None:
            return_stmts.append(inner)

    mentions_key_api = any(
        isinstance(inner, ast.Name) and inner.id in KEY_TAG_FUNCTIONS
        for inner in walk_in_scope(node)
    ) or any(
        isinstance(inner, ast.Tuple) and _pair_tags(inner)
        for inner in walk_in_scope(node)
    )

    return _Facts(
        info=info,
        locks=locks,
        guarded=guarded,
        site_by_call=site_by_call,
        held_calls=held_calls,
        blocking_sites=[
            (call.name, call.line) for call in held_calls if call.blocking
        ],
        has_fixpoint_loop=fixpoint_line > 0,
        fixpoint_line=fixpoint_line,
        raises=raises,
        direct_required=direct_required,
        acquire_lines=acquire_lines,
        param_names=param_names,
        direct_releases=direct_releases,
        release_calls=release_calls,
        assign_calls=assign_calls,
        return_stmts=return_stmts,
        mentions_key_api=mentions_key_api,
        taint=gather_taint_facts(info, sites),
        return_range=_return_range(info, return_stmts),
    )


def _return_range(info: FunctionInfo, return_stmts: list):
    """The joined interval over every return value, when it proves anything.

    Gated on a cheap syntactic scan — most functions return nothing
    numeric, and a value-domain solve per function would dominate the
    summary phase otherwise.
    """
    values = [stmt.value for stmt in return_stmts]
    if not values or not all(_numericish(value) for value in values):
        return None
    from repro.analysis.absint import value_solution

    solution = value_solution(info.source, info.node)
    if not solution.converged:
        return None
    problem = solution.problem
    wanted = {id(stmt) for stmt in return_stmts}
    result = None
    for block in info.cfg().blocks:
        states = solution.states_through(block)
        for item, state in zip(block.body, states):
            if id(item) not in wanted or state is None:
                continue
            interval = problem.eval(item.value, state)
            result = interval if result is None else result.join(interval)
    if result is None or result.is_top():
        return None
    return result


def _numericish(value: ast.expr | None) -> bool:
    """Whether a return expression could yield a provable interval."""
    if value is None:
        return False
    return literal_number(value) is not None or isinstance(
        value, (ast.Name, ast.BinOp, ast.UnaryOp, ast.IfExp)
    )


def _held_call(
    call: ast.Call, site_by_call: dict, held: frozenset
) -> HeldCall:
    site = site_by_call.get(id(call))
    name = site.name if site is not None else call_name(call)
    return HeldCall(
        node=call,
        name=name,
        callees=site.callees if site is not None else (),
        held=held,
        line=call.lineno,
        blocking=is_blocking_call(call, name, held),
    )


def is_blocking_call(call: ast.Call, name: str, held: frozenset) -> bool:
    """Whether this call is a known blocking primitive.

    ``self.<cond>.wait()`` where ``<cond>`` is itself a *held* lock is the
    condition-variable idiom — waiting releases the lock — so it is exempt.
    """
    if name in BLOCKING_CALLS:
        return True
    tail = name.rsplit(".", 1)[-1] if name else ""
    if tail not in BLOCKING_TAILS:
        return False
    if tail == "wait" and isinstance(call.func, ast.Attribute):
        receiver = call.func.value
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and receiver.attr in held
        ):
            return False
    return True


def _guarded_accesses_in(item, guarded: dict) -> list[ast.Attribute]:
    from repro.analysis.lockset import self_attribute_accesses

    return [
        access
        for access in self_attribute_accesses(item)
        if access.attr in guarded
    ]


def is_fixpoint_while(node: ast.While) -> bool:
    """Whether a ``while`` is a residual-testing fixpoint loop (RL008 shape)."""
    from repro.analysis.checkers.fixpoint_loops import (
        _is_while_true,
        _residual_break_in,
        _residual_compare_in,
    )

    residual = _residual_compare_in(node.test)
    if residual is None and _is_while_true(node.test):
        residual = _residual_break_in(node.body)
    return residual is not None


def _find_fixpoint_loop(node) -> int:
    """Line of the first residual-testing ``while`` in the body, else 0."""
    for inner in walk_in_scope(node):
        if isinstance(inner, ast.While) and is_fixpoint_while(inner):
            return inner.lineno
    return 0


def _raised_names(node) -> list[str]:
    names = []
    for inner in walk_in_scope(node):
        if not isinstance(inner, ast.Raise) or inner.exc is None:
            continue
        exc = inner.exc
        if isinstance(exc, ast.Call):
            name = call_name(exc)
        elif isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = call_name(ast.Call(func=exc, args=[], keywords=[]))
        else:
            continue
        if name:
            names.append(name.rsplit(".", 1)[-1])
    return names


def _positional_params(node) -> list[ast.arg]:
    params = list(node.args.posonlyargs) + list(node.args.args)
    if params and params[0].arg in ("self", "cls"):
        params = params[1:]
    return params


RELEASE_TAILS = {"close"}
RELEASE_CALLS = {"os.close"}


def _param_releases(node, param_names: tuple, site_by_call: dict):
    """Directly released params + the call sites that may release more."""
    direct: set[str] = set()
    release_calls: list[tuple[tuple, list]] = []
    params = set(param_names)
    for inner in walk_in_scope(node):
        if isinstance(inner, (ast.With, ast.AsyncWith)):
            for item in inner.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id in params:
                    direct.add(expr.id)
                if (
                    isinstance(expr, ast.Call)
                    and call_name(expr).rsplit(".", 1)[-1] == "closing"
                    and expr.args
                    and isinstance(expr.args[0], ast.Name)
                    and expr.args[0].id in params
                ):
                    direct.add(expr.args[0].id)
        elif isinstance(inner, ast.Call):
            name = call_name(inner)
            if (
                isinstance(inner.func, ast.Attribute)
                and isinstance(inner.func.value, ast.Name)
                and inner.func.value.id in params
                and inner.func.attr in RELEASE_TAILS
            ):
                direct.add(inner.func.value.id)
            elif (
                name in RELEASE_CALLS
                and inner.args
                and isinstance(inner.args[0], ast.Name)
                and inner.args[0].id in params
            ):
                direct.add(inner.args[0].id)
            else:
                site = site_by_call.get(id(inner))
                if site is not None and site.callees:
                    passed = [
                        (position, arg.id)
                        for position, arg in enumerate(inner.args)
                        if isinstance(arg, ast.Name) and arg.id in params
                    ]
                    if passed:
                        release_calls.append((site.callees, passed))
    return direct, release_calls


# -- cache-key tag analysis ----------------------------------------------------


def _pair_tags(node: ast.expr) -> frozenset:
    """Tags of a tuple-of-pairs augmentation: ``(("epoch", e),)`` -> {epoch}."""
    tags = set()
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            if (
                isinstance(element, (ast.Tuple, ast.List))
                and element.elts
                and isinstance(element.elts[0], ast.Constant)
                and isinstance(element.elts[0].value, str)
            ):
                tags.add(element.elts[0].value)
    return frozenset(tags)


def expression_tags(
    expr: ast.expr, state: frozenset, callee_tags
) -> frozenset:
    """Fingerprint components an expression's value may carry.

    ``state`` is the key-tag dataflow state (``(name, tag)`` pairs);
    ``callee_tags(call)`` resolves a call's contribution (registry names
    like ``make_key`` plus resolved-callee summaries).
    """
    if isinstance(expr, ast.Name):
        return frozenset(tag for name, tag in state if name == expr.id)
    if isinstance(expr, ast.Call):
        tags = set(callee_tags(expr))
        for arg in expr.args:
            tags |= expression_tags(arg, state, callee_tags)
        for keyword in expr.keywords:
            tags |= expression_tags(keyword.value, state, callee_tags)
        return frozenset(tags)
    if isinstance(expr, (ast.Tuple, ast.List)):
        tags = set(_pair_tags(expr))
        for element in expr.elts:
            tags |= expression_tags(element, state, callee_tags)
        return frozenset(tags)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        return expression_tags(expr.left, state, callee_tags) | expression_tags(
            expr.right, state, callee_tags
        )
    if isinstance(expr, ast.IfExp):
        return expression_tags(expr.body, state, callee_tags) | expression_tags(
            expr.orelse, state, callee_tags
        )
    if isinstance(expr, ast.Starred):
        return expression_tags(expr.value, state, callee_tags)
    return frozenset()


class KeyTagProblem(DataflowProblem):
    """May-analysis of fingerprint components flowing into key variables.

    States are frozensets of ``(variable, tag)`` pairs; join is union, so a
    component added on *any* path counts — matching the serve tier's
    conditional augmentations (the epoch lands on the key only when ingest
    is enabled, and that is the accepted shape).
    """

    direction = "forward"

    def __init__(self, callee_tags) -> None:
        self.callee_tags = callee_tags

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def transfer_item(self, item, state: frozenset) -> frozenset:
        if isinstance(item, ast.Assign) and len(item.targets) == 1:
            target = item.targets[0]
            if isinstance(target, ast.Name):
                tags = expression_tags(item.value, state, self.callee_tags)
                kept = frozenset(
                    pair for pair in state if pair[0] != target.id
                )
                return kept | frozenset((target.id, tag) for tag in tags)
        elif (
            isinstance(item, ast.AugAssign)
            and isinstance(item.op, ast.Add)
            and isinstance(item.target, ast.Name)
        ):
            tags = expression_tags(item.value, state, self.callee_tags)
            return state | frozenset(
                (item.target.id, tag) for tag in tags
            )
        return state


def solve_key_tags(info: FunctionInfo, callee_tags):
    """The key-tag dataflow solution over one function's CFG."""
    return solve(info.cfg(), KeyTagProblem(callee_tags))


def make_callee_tags(site_by_call: dict, summaries: dict):
    """A ``callee_tags(call)`` resolver over registry names + summaries."""

    def callee_tags(call: ast.Call) -> frozenset:
        name = call_name(call)
        tags = set(KEY_TAG_FUNCTIONS.get(name.rsplit(".", 1)[-1], frozenset()))
        site = site_by_call.get(id(call))
        if site is not None:
            for callee in site.callees:
                summary = summaries.get(callee)
                if summary is not None:
                    tags |= summary.cache_key_tags
        return frozenset(tags)

    return callee_tags


# -- the bottom-up fixpoint ----------------------------------------------------


def compute_summaries(project: Project) -> SummaryIndex:
    """Summaries for every function, SCC-ordered, fixpointed per SCC."""
    graph = project.graph
    index = SummaryIndex(project)
    facts: dict[str, _Facts] = {}
    for function_id in sorted(graph.functions):
        info = graph.functions[function_id]
        sites = graph.calls.get(function_id, [])
        facts[function_id] = _gather_facts(info, sites)
        index.by_id[function_id] = FunctionSummary(function=function_id)

    for component in graph.sccs():
        rounds = 0
        changed = True
        while changed and rounds < MAX_SCC_ROUNDS:
            changed = False
            rounds += 1
            for function_id in component:
                if _update_summary(function_id, facts, index.by_id):
                    changed = True
        index.scc_rounds.append(rounds)
        if changed:
            index.converged = False
    return index


def _update_summary(
    function_id: str, facts: dict, summaries: dict
) -> bool:
    """Recompute one function's summary from current callee summaries."""
    fact = facts[function_id]
    info = fact.info
    old = summaries[function_id]

    # Witness chains are FROZEN at first discovery: inside an SCC, a chain
    # rebuilt every round can route through a member whose chain routes
    # back, prepending one step per round and never converging.  A frozen
    # chain stays a valid witness (its (function, line) steps don't move),
    # and freezing keeps every compared field monotone.
    locks_acquired = frozenset(
        _qualify(info, lock) for lock in fact.acquire_lines
    )
    acquire_witness = dict(old.acquire_witness)
    for lock, line in sorted(fact.acquire_lines.items()):
        acquire_witness.setdefault(
            _qualify(info, lock), ((function_id, line),)
        )
    transitive = set(locks_acquired)

    may_block = bool(fact.blocking_sites) or fact.has_fixpoint_loop
    blocking_chain: tuple = ()
    blocking_reason = ""
    if fact.blocking_sites:
        name, line = fact.blocking_sites[0]
        blocking_chain = ((function_id, line),)
        blocking_reason = name
    elif fact.has_fixpoint_loop:
        blocking_chain = ((function_id, fact.fixpoint_line),)
        blocking_reason = "a residual-testing fixpoint loop"
    elif old.may_block:
        may_block = True
        blocking_chain = old.blocking_chain
        blocking_reason = old.blocking_reason

    # Requirements only propagate out of *_locked helpers: other methods'
    # direct violations belong to RL007, and constructors are exempt.
    exports_requirements = info.name.endswith("_locked")
    required: set = set()
    required_witness: dict = dict(old.required_witness)  # frozen, as above
    if exports_requirements:
        for lock, line in fact.direct_required:
            required.add(lock)
            required_witness.setdefault(lock, ((function_id, line),))

    releases = set(fact.direct_releases)
    for callee_ids, passed in fact.release_calls:
        for callee_id in callee_ids:
            callee = summaries.get(callee_id)
            if callee is None:
                continue
            callee_params = facts[callee_id].param_names if callee_id in facts else ()
            for position, param in passed:
                if (
                    position < len(callee_params)
                    and callee_params[position] in callee.releases_params
                ):
                    releases.add(param)

    propagates = set(fact.raises)

    for site in fact.held_calls:
        for callee_id in site.callees:
            callee = summaries.get(callee_id)
            if callee is None:
                continue
            propagates |= callee.propagates
            for lock in callee.locks_acquired_transitive:
                if lock not in transitive:
                    transitive.add(lock)
                if lock not in acquire_witness:
                    tail = callee.acquire_witness.get(lock, ())
                    acquire_witness[lock] = ((function_id, site.line),) + tail
            if callee.may_block and not may_block:
                may_block = True
                blocking_chain = ((function_id, site.line),) + callee.blocking_chain
                blocking_reason = callee.blocking_reason
            if exports_requirements:
                for lock in callee.locks_required:
                    if lock not in site.held and lock not in required:
                        required.add(lock)
                        if lock not in required_witness:
                            tail = callee.required_witness.get(lock, ())
                            required_witness[lock] = (
                                (function_id, site.line),
                            ) + tail

    returns_resource = _returned_resource(fact, summaries)
    cache_key_tags = _return_tags(fact, summaries)
    taint_fields = _update_taint_fields(function_id, fact, facts, summaries, old)

    new = FunctionSummary(
        function=function_id,
        locks_acquired=locks_acquired,
        locks_acquired_transitive=frozenset(transitive),
        acquire_witness=acquire_witness,
        locks_required=frozenset(required),
        required_witness=required_witness,
        held_calls=tuple(fact.held_calls),
        blocking_sites=tuple(fact.blocking_sites),
        has_fixpoint_loop=fact.has_fixpoint_loop,
        fixpoint_line=fact.fixpoint_line,
        may_block=may_block,
        blocking_chain=blocking_chain,
        blocking_reason=blocking_reason,
        returns_resource=returns_resource,
        releases_params=frozenset(releases),
        raises=fact.raises,
        propagates=frozenset(propagates),
        cache_key_tags=cache_key_tags,
        return_range=fact.return_range,
        **taint_fields,
    )
    # Always store (held_calls and the other round-independent fields are
    # only present on the recomputed record); the change flag that drives
    # the SCC fixpoint considers the monotone fields alone.  The in-place
    # update IS the fixpoint: later functions in the SCC must see it.
    # repro-lint: ignore[RL004] shared accumulator across SCC rounds
    summaries[function_id] = new
    return not _fixpoint_fields_equal(old, new)


def _update_taint_fields(
    function_id: str, fact: _Facts, facts: dict, summaries: dict, old: FunctionSummary
) -> dict:
    """One round of taint/rate summary fields from current callee summaries.

    All witness chains follow the freeze-at-first-discovery discipline of
    the lock/blocking fields above; every set grows monotonically, so the
    SCC fixpoint still converges.
    """
    taint = fact.taint
    memo: dict = {}

    def summary_of(callee_id: str):
        return summaries.get(callee_id)

    def params_of(callee_id: str) -> tuple:
        callee_fact = facts.get(callee_id)
        return callee_fact.taint.param_names if callee_fact is not None else ()

    def resolve(labels: frozenset) -> frozenset:
        return resolve_labels(labels, taint, summary_of, params_of, memo)

    resolved_return = resolve(taint.return_labels)
    returns_taint = frozenset(
        label for label in resolved_return if label == "wire"
    )
    taint_param_to_return = frozenset(
        label[1]
        for label in resolved_return
        if isinstance(label, tuple) and label[0] == "param"
    )

    sink_params = dict(old.sink_params)
    sink_witness = dict(old.sink_witness)
    wire_sinks = dict(old.wire_sinks)
    requires_unit = set(old.requires_unit_interval)
    unit_witness = dict(old.unit_interval_witness)

    def note_sink(kind, resolved, here_chain, tail_chain, detail) -> None:
        if "wire" in resolved:
            wire_sinks.setdefault(
                (kind, here_chain[0][1]), (here_chain + tail_chain, detail)
            )
        for label in resolved:
            if isinstance(label, tuple) and label[0] == "param":
                sink_params.setdefault(label[1], kind)
                sink_witness.setdefault(label[1], here_chain + tail_chain)

    for sink in taint.sinks:
        note_sink(
            sink.kind,
            resolve(sink.labels),
            ((function_id, sink.line),),
            (),
            sink.detail,
        )

    for call_key, position, keyword, line in taint.rate_args:
        call_taint = taint.calls.get(call_key)
        if call_taint is None:
            continue
        labels = (
            call_taint.pos[position]
            if position is not None and position < len(call_taint.pos)
            else call_taint.kw_labels(keyword)
        )
        for label in resolve(labels):
            if isinstance(label, tuple) and label[0] == "param":
                requires_unit.add(label[1])
                unit_witness.setdefault(label[1], ((function_id, line),))

    # Cross-function step: arguments at resolved call sites inherit the
    # callee's sink/rate parameter facts.
    for site in fact.held_calls:
        call_taint = taint.calls.get(id(site.node))
        if call_taint is None:
            continue
        for callee_id in site.callees:
            callee = summaries.get(callee_id)
            if callee is None:
                continue
            callee_params = params_of(callee_id)
            for index, kind in callee.sink_params.items():
                resolved = resolve(
                    call_taint.labels_for_param(index, callee_params)
                )
                note_sink(
                    kind,
                    resolved,
                    ((function_id, site.line),),
                    callee.sink_witness.get(index, ()),
                    f"{call_taint.name}()",
                )
            for index in callee.requires_unit_interval:
                resolved = resolve(
                    call_taint.labels_for_param(index, callee_params)
                )
                tail = callee.unit_interval_witness.get(index, ())
                for label in resolved:
                    if isinstance(label, tuple) and label[0] == "param":
                        requires_unit.add(label[1])
                        unit_witness.setdefault(
                            label[1], ((function_id, site.line),) + tail
                        )

    return {
        "returns_taint": returns_taint,
        "taint_param_to_return": taint_param_to_return,
        "sink_params": sink_params,
        "sink_witness": sink_witness,
        "wire_sinks": wire_sinks,
        "requires_unit_interval": frozenset(requires_unit),
        "unit_interval_witness": unit_witness,
    }


def _fixpoint_fields_equal(
    left: FunctionSummary, right: FunctionSummary
) -> bool:
    return (
        left.locks_acquired == right.locks_acquired
        and left.locks_acquired_transitive == right.locks_acquired_transitive
        and left.acquire_witness == right.acquire_witness
        and left.locks_required == right.locks_required
        and left.required_witness == right.required_witness
        and left.may_block == right.may_block
        and left.blocking_chain == right.blocking_chain
        and left.returns_resource == right.returns_resource
        and left.releases_params == right.releases_params
        and left.propagates == right.propagates
        and left.cache_key_tags == right.cache_key_tags
        and left.returns_taint == right.returns_taint
        and left.taint_param_to_return == right.taint_param_to_return
        and left.sink_params == right.sink_params
        and left.sink_witness == right.sink_witness
        and left.wire_sinks == right.wire_sinks
        and left.requires_unit_interval == right.requires_unit_interval
        and left.unit_interval_witness == right.unit_interval_witness
    )


def acquired_call_kind(
    call: ast.Call, site_by_call: dict, summaries: dict
) -> str | None:
    """Resource kind a call acquires: a primitive or a returning helper."""
    name = call_name(call)
    kind = ACQUIRE_CALLS.get(name)
    if kind is not None:
        return kind
    site = site_by_call.get(id(call))
    if site is not None:
        for callee_id in site.callees:
            summary = summaries.get(callee_id)
            if summary is not None and summary.returns_resource is not None:
                return summary.returns_resource
    return None


def _returned_resource(fact: _Facts, summaries: dict) -> str | None:
    for stmt in fact.return_stmts:
        value = stmt.value
        if isinstance(value, ast.Call):
            kind = acquired_call_kind(value, fact.site_by_call, summaries)
            if kind is not None:
                return kind
        elif isinstance(value, ast.Name):
            call = fact.assign_calls.get(value.id)
            if call is not None:
                kind = acquired_call_kind(call, fact.site_by_call, summaries)
                if kind is not None:
                    return kind
    return None


def _return_tags(fact: _Facts, summaries: dict) -> frozenset:
    """Union of key tags over every return expression (with dataflow state)."""
    has_callee_tags = any(
        summaries.get(callee_id) is not None
        and summaries[callee_id].cache_key_tags
        for site in fact.site_by_call.values()
        for callee_id in site.callees
    )
    if not fact.return_stmts or not (fact.mentions_key_api or has_callee_tags):
        return frozenset()
    callee_tags = make_callee_tags(fact.site_by_call, summaries)
    solution = solve_key_tags(fact.info, callee_tags)
    tags: set = set()
    cfg = fact.info.cfg()
    wanted = {id(stmt) for stmt in fact.return_stmts}
    for block in cfg.blocks:
        if not any(id(item) in wanted for item in block.body):
            continue
        states = solution.states_through(block)
        for item, state in zip(block.body, states):
            if id(item) in wanted and item.value is not None:
                tags |= expression_tags(item.value, state, callee_tags)
    return frozenset(tags)
