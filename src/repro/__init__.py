"""repro: a reproduction of "Explaining and Reformulating Authority Flow
Queries" (Varadarajan, Hristidis, Raschid — ICDE 2008).

The library implements, from scratch:

* **ObjectRank2** — authority-flow keyword ranking over typed data graphs
  with an IR-weighted (BM25) base set (:mod:`repro.ranking`);
* **result explanation** — explaining subgraphs with the iterative
  flow-adjustment fixpoint (:mod:`repro.explain`);
* **query reformulation from relevance feedback** — content-based term
  expansion and structure-based authority-transfer-rate learning
  (:mod:`repro.reformulate`), with the survey/training harness of the
  paper's evaluation (:mod:`repro.feedback`);
* every substrate those need: typed graphs (:mod:`repro.graph`), an IR
  engine (:mod:`repro.ir`), a mini relational store (:mod:`repro.storage`),
  PageRank-family baselines, and synthetic DBLP/biological datasets
  (:mod:`repro.datasets`).

Quickstart::

    from repro import ObjectRankSystem, SystemConfig, load_dataset

    dataset = load_dataset("dblp_tiny")
    system = ObjectRankSystem(dataset.data_graph, dataset.transfer_schema)
    result = system.query("olap cube")
    explanation = system.explain(result.top[0][0])
    outcome = system.feedback([result.top[0][0]])
"""

from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing-time eager imports
    from repro.core.config import SystemConfig
    from repro.core.system import FeedbackOutcome, ObjectRankSystem
    from repro.datasets.registry import load_dataset
    from repro.explain import explain
    from repro.query.engine import SearchEngine, SearchResult
    from repro.query.query import KeywordQuery, QueryVector

__version__ = "1.0.0"

#: Lazy re-exports (PEP 562): attribute name -> defining module.  Keeping the
#: package root import-light means stdlib-only tooling built on subpackages —
#: ``repro lint`` in a bare CI job, most prominently — never pays for (or
#: requires) numpy/scipy, which the ranking stack needs but the analyzer
#: does not.
_LAZY_EXPORTS = {
    "SystemConfig": "repro.core.config",
    "FeedbackOutcome": "repro.core.system",
    "ObjectRankSystem": "repro.core.system",
    "load_dataset": "repro.datasets.registry",
    "explain": "repro.explain",
    "SearchEngine": "repro.query.engine",
    "SearchResult": "repro.query.engine",
    "KeywordQuery": "repro.query.query",
    "QueryVector": "repro.query.query",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

__all__ = [
    "FeedbackOutcome",
    "KeywordQuery",
    "ObjectRankSystem",
    "QueryVector",
    "ReproError",
    "SearchEngine",
    "SearchResult",
    "SystemConfig",
    "__version__",
    "explain",
    "load_dataset",
]
