"""Synthetic DBLP-like bibliographic datasets.

The paper evaluates on the real DBLP dump (Table 1), which is not available
offline; this generator produces a faithful synthetic stand-in:

* the exact relational schema of Figure 2 (conference, year, paper, author,
  paper_author, citation), built through the mini relational store and then
  *shredded* into a data graph, as the paper describes;
* topically clustered titles (papers about OLAP cite papers about OLAP),
  which is what gives ObjectRank its base-set communities;
* preferential-attachment citations biased toward same-topic and older
  papers, producing the hub/authority skew authority flow exploits;
* Zipf-like author productivity with per-topic author pools.

Everything is driven by one ``random.Random(seed)``, so datasets are
reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import (
    DBLP_GROUND_TRUTH_VECTOR,
    Dataset,
    dblp_transfer_schema,
)
from repro.datasets.vocabulary import DATABASE_TOPICS, Topic, make_person_name, make_title
from repro.errors import DatasetError
from repro.storage.relational import Database, ForeignKey, TableSchema
from repro.storage.shred import (
    EdgeFromForeignKey,
    EdgeTable,
    NodeTable,
    ShredSpec,
    shred_to_graph,
)

DBLP_SHRED_SPEC = ShredSpec(
    node_tables=(
        NodeTable("conference", "Conference", ("name",)),
        NodeTable("year", "Year", ("name", "year", "location")),
        NodeTable("paper", "Paper", ("title", "venue")),
        NodeTable("author", "Author", ("name",)),
    ),
    fk_edges=(
        EdgeFromForeignKey("year", "conference_id", "has", reverse=True),
        EdgeFromForeignKey("paper", "year_id", "contains", reverse=True),
    ),
    edge_tables=(
        EdgeTable("paper_author", "paper_id", "author_id", "paper", "author", "by"),
        EdgeTable("citation", "citing_id", "cited_id", "paper", "paper", "cites"),
    ),
)

_LOCATIONS = (
    "Birmingham", "Sydney", "Taipei", "Boston", "Heidelberg", "Bombay",
    "Cairo", "Roma", "Seattle", "Santiago", "Trondheim", "Vienna",
)


@dataclass(frozen=True)
class DblpConfig:
    """Size and shape parameters of a synthetic DBLP dataset."""

    num_papers: int = 4000
    num_authors: int = 1200
    num_conferences: int = 12
    first_year: int = 1990
    last_year: int = 2007
    mean_citations: float = 4.0
    max_authors_per_paper: int = 4
    topic_coherence: float = 0.8  # probability a citation stays on-topic
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_papers < 1 or self.num_authors < 1 or self.num_conferences < 1:
            raise DatasetError("DBLP generator sizes must be positive")
        if self.last_year < self.first_year:
            raise DatasetError("last_year must be >= first_year")
        if not 0.0 <= self.topic_coherence <= 1.0:
            raise DatasetError("topic_coherence must be in [0, 1]")


def build_dblp_database(config: DblpConfig) -> tuple[Database, dict[int, Topic]]:
    """Generate the relational form; returns (database, paper-id -> topic)."""
    rng = random.Random(config.seed)
    topics = DATABASE_TOPICS
    database = Database()
    database.create_table(TableSchema("conference", ("id", "name")))
    database.create_table(
        TableSchema(
            "year",
            ("id", "conference_id", "name", "year", "location"),
            foreign_keys=(ForeignKey("conference_id", "conference"),),
        )
    )
    database.create_table(
        TableSchema(
            "paper",
            ("id", "year_id", "title", "venue"),
            foreign_keys=(ForeignKey("year_id", "year"),),
        )
    )
    database.create_table(TableSchema("author", ("id", "name")))
    database.create_table(
        TableSchema(
            "paper_author",
            ("id", "paper_id", "author_id"),
            foreign_keys=(ForeignKey("paper_id", "paper"), ForeignKey("author_id", "author")),
        )
    )
    database.create_table(
        TableSchema(
            "citation",
            ("id", "citing_id", "cited_id"),
            foreign_keys=(ForeignKey("citing_id", "paper"), ForeignKey("cited_id", "paper")),
        )
    )

    # Conferences with topic profiles; a year row per (conference, year).
    conference_topics: dict[int, tuple[Topic, ...]] = {}
    year_ids: dict[int, list[int]] = {}
    year_row = 0
    for conf_id in range(config.num_conferences):
        name = "CONF" + str(conf_id)
        database.insert("conference", {"id": conf_id, "name": name})
        profile = tuple(rng.sample(topics, k=min(3, len(topics))))
        conference_topics[conf_id] = profile
        year_ids[conf_id] = []
        for year in range(config.first_year, config.last_year + 1):
            database.insert(
                "year",
                {
                    "id": year_row,
                    "conference_id": conf_id,
                    "name": name,
                    "year": str(year),
                    "location": rng.choice(_LOCATIONS),
                },
            )
            year_ids[conf_id].append(year_row)
            year_row += 1

    # Authors: each belongs to 1-2 topics; productivity is Zipf-like via
    # weighted choice by 1/rank.  Author rows are inserted only for authors
    # that end up with at least one paper (no isolated Author nodes), so
    # authorship rows are buffered until the paper loop finishes.
    author_topics: dict[str, list[int]] = {topic.name: [] for topic in topics}
    for author_id in range(config.num_authors):
        for topic in rng.sample(topics, k=rng.randint(1, 2)):
            author_topics[topic.name].append(author_id)
    author_rank_weight = [1.0 / (1 + i) for i in range(config.num_authors)]
    authorship_buffer: list[tuple[int, int]] = []  # (paper_id, author_id)

    # Papers in chronological order so citations can point backward in time.
    paper_topic: dict[int, Topic] = {}
    papers_by_topic: dict[str, list[int]] = {topic.name: [] for topic in topics}
    citation_row = 0
    authorship_row = 0
    all_papers: list[int] = []
    for paper_id in range(config.num_papers):
        conf_id = rng.randrange(config.num_conferences)
        topic = rng.choice(conference_topics[conf_id])
        secondary = rng.choice(topics) if rng.random() < 0.3 else None
        year_index = rng.randrange(len(year_ids[conf_id]))
        year_id = year_ids[conf_id][year_index]
        year_value = config.first_year + year_index
        database.insert(
            "paper",
            {
                "id": paper_id,
                "year_id": year_id,
                "title": make_title(rng, topic, secondary),
                "venue": f"CONF{conf_id} {year_value}",
            },
        )
        paper_topic[paper_id] = topic

        # Authorship: prefer prolific authors from the paper's topic pool.
        pool = author_topics[topic.name] or list(range(config.num_authors))
        pool_weights = [author_rank_weight[a] for a in pool]
        num_authors = rng.randint(1, config.max_authors_per_paper)
        chosen: set[int] = set()
        for _ in range(num_authors):
            chosen.add(rng.choices(pool, weights=pool_weights, k=1)[0])
        for author_id in sorted(chosen):
            authorship_buffer.append((paper_id, author_id))

        # Citations: preferential attachment (recent papers cite earlier
        # ones, earlier ones accumulate citations), biased on-topic.
        num_citations = min(
            _poisson(rng, config.mean_citations), len(all_papers)
        )
        cited: set[int] = set()
        for _ in range(num_citations):
            if rng.random() < config.topic_coherence and papers_by_topic[topic.name]:
                candidates = papers_by_topic[topic.name]
            else:
                candidates = all_papers
            # Quadratic skew toward low indices approximates preferential
            # attachment without per-node counters.
            pick = candidates[int(len(candidates) * rng.random() * rng.random())]
            if pick != paper_id:
                cited.add(pick)
        for cited_id in cited:
            database.insert(
                "citation",
                {"id": citation_row, "citing_id": paper_id, "cited_id": cited_id},
            )
            citation_row += 1

        papers_by_topic[topic.name].append(paper_id)
        all_papers.append(paper_id)

    # Materialize only the authors that were actually used, then their rows.
    used_authors = sorted({author_id for _, author_id in authorship_buffer})
    for author_id in used_authors:
        database.insert("author", {"id": author_id, "name": make_person_name(rng)})
    for paper_id, author_id in authorship_buffer:
        database.insert(
            "paper_author",
            {"id": authorship_row, "paper_id": paper_id, "author_id": author_id},
        )
        authorship_row += 1

    return database, paper_topic


def _poisson(rng: random.Random, mean: float) -> int:
    """Small-mean Poisson sample via inversion (Knuth)."""
    if mean <= 0:
        return 0
    limit = pow(2.718281828459045, -mean)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def generate_dblp(config: DblpConfig = DblpConfig(), name: str = "dblp") -> Dataset:
    """Generate a synthetic DBLP dataset ready for ObjectRank2.

    The returned dataset's ``transfer_schema`` carries the [BHP04]
    ground-truth rates of Figure 3; ``extras["paper_topics"]`` maps paper node
    ids to topic names (used by simulated users and quality metrics).
    """
    database, paper_topic = build_dblp_database(config)
    graph = shred_to_graph(database, DBLP_SHRED_SPEC)
    transfer_schema = dblp_transfer_schema(DBLP_GROUND_TRUTH_VECTOR)
    return Dataset(
        name=name,
        data_graph=graph,
        transfer_schema=transfer_schema,
        ground_truth_rates=transfer_schema,
        extras={
            "paper_topics": {
                f"paper:{paper_id}": topic.name for paper_id, topic in paper_topic.items()
            },
            "config": config,
        },
    )
