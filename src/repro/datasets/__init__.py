"""Synthetic datasets reproducing the shape of Table 1's corpora."""

from repro.datasets.base import (
    BIOLOGICAL_GROUND_TRUTH_VECTOR,
    DBLP_GROUND_TRUTH_VECTOR,
    DBLP_INITIAL_TRAINING_RATE,
    Dataset,
    biological_edge_order,
    biological_schema,
    biological_transfer_schema,
    dblp_edge_order,
    dblp_schema,
    dblp_transfer_schema,
)
from repro.datasets.analysis import (
    StructuralSummary,
    citation_topic_purity,
    gini_coefficient,
    in_degree_distribution,
    structural_summary,
)
from repro.datasets.biological import BiologicalConfig, generate_biological
from repro.datasets.dblp import DblpConfig, generate_dblp
from repro.datasets.figure1 import figure1_dataset
from repro.datasets.registry import (
    TABLE1_DATASETS,
    dataset_names,
    load_dataset,
)
from repro.datasets.stats import DatasetStatistics, dataset_statistics
from repro.datasets.subset import keyword_subset
from repro.datasets.vocabulary import (
    BIOLOGY_TOPICS,
    DATABASE_TOPICS,
    Topic,
)

__all__ = [
    "BIOLOGICAL_GROUND_TRUTH_VECTOR",
    "BIOLOGY_TOPICS",
    "BiologicalConfig",
    "DATABASE_TOPICS",
    "DBLP_GROUND_TRUTH_VECTOR",
    "DBLP_INITIAL_TRAINING_RATE",
    "Dataset",
    "DatasetStatistics",
    "DblpConfig",
    "StructuralSummary",
    "TABLE1_DATASETS",
    "Topic",
    "biological_edge_order",
    "biological_schema",
    "biological_transfer_schema",
    "citation_topic_purity",
    "dataset_names",
    "dataset_statistics",
    "dblp_edge_order",
    "dblp_schema",
    "dblp_transfer_schema",
    "figure1_dataset",
    "generate_biological",
    "generate_dblp",
    "gini_coefficient",
    "in_degree_distribution",
    "keyword_subset",
    "load_dataset",
    "structural_summary",
]
