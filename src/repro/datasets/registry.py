"""The four named datasets of Table 1, at laptop scale.

The paper's datasets (sizes as published):

    DBLPcomplete   876,110 nodes   4,166,626 edges
    DBLPtop         22,653 nodes     166,960 edges
    DS7            699,199 nodes   3,533,756 edges
    DS7cancer       37,796 nodes     138,146 edges

Real DBLP/PubMed data is unavailable offline, so the registry generates
synthetic datasets preserving the *relative* scale (complete >> focused
subset) while staying laptop-friendly.  ``scale`` multiplies every size knob
for users who want larger runs; tests use the ``*_tiny`` entries.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import Dataset
from repro.datasets.biological import BiologicalConfig, generate_biological
from repro.datasets.dblp import DblpConfig, generate_dblp
from repro.datasets.subset import keyword_subset
from repro.errors import DatasetError


def _dblp_complete(scale: float, seed: int) -> Dataset:
    config = DblpConfig(
        num_papers=int(24000 * scale),
        num_authors=int(7000 * scale),
        num_conferences=40,
        mean_citations=4.5,
        seed=seed,
    )
    return generate_dblp(config, name="dblp_complete")


def _dblp_top(scale: float, seed: int) -> Dataset:
    config = DblpConfig(
        num_papers=int(3000 * scale),
        num_authors=int(900 * scale),
        num_conferences=10,
        mean_citations=5.0,
        seed=seed,
    )
    return generate_dblp(config, name="dblp_top")


def _dblp_tiny(scale: float, seed: int) -> Dataset:
    config = DblpConfig(
        num_papers=max(int(250 * scale), 20),
        num_authors=max(int(80 * scale), 8),
        num_conferences=4,
        mean_citations=3.0,
        seed=seed,
    )
    return generate_dblp(config, name="dblp_tiny")


def _ds7(scale: float, seed: int) -> Dataset:
    config = BiologicalConfig(
        num_genes=int(2200 * scale),
        num_publications=int(9000 * scale),
        num_omim=int(500 * scale),
        seed=seed,
    )
    return generate_biological(config, name="ds7")


def _ds7_cancer(scale: float, seed: int) -> Dataset:
    return keyword_subset(
        _ds7(scale, seed), "cancer", hops=1, seed_labels=("PubMed",), name="ds7_cancer"
    )


def _bio_tiny(scale: float, seed: int) -> Dataset:
    config = BiologicalConfig(
        num_genes=max(int(60 * scale), 10),
        num_publications=max(int(220 * scale), 20),
        num_omim=max(int(20 * scale), 4),
        seed=seed,
    )
    return generate_biological(config, name="bio_tiny")


_REGISTRY: dict[str, Callable[[float, int], Dataset]] = {
    "dblp_complete": _dblp_complete,
    "dblp_top": _dblp_top,
    "dblp_tiny": _dblp_tiny,
    "ds7": _ds7,
    "ds7_cancer": _ds7_cancer,
    "bio_tiny": _bio_tiny,
}

# The four datasets of Table 1, in the paper's order.
TABLE1_DATASETS = ("dblp_complete", "dblp_top", "ds7", "ds7_cancer")


def dataset_names() -> list[str]:
    """All names accepted by :func:`load_dataset`."""
    return list(_REGISTRY)


def load_dataset(name: str, scale: float = 1.0, seed: int = 7) -> Dataset:
    """Generate one of the named datasets.

    ``scale`` multiplies the size knobs; ``seed`` drives the generator.
    Generation is deterministic: same (name, scale, seed) -> same graph.
    """
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None
    return factory(scale, seed)
