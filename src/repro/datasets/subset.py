"""Keyword-focused dataset subsets.

The paper derives DS7cancer from DS7 as "PubMed publications related to
'cancer' and all biological entities related to these publications", and
DBLPtop from DBLPcomplete as a databases-related subset.  This module
implements that derivation generically: take the nodes matching a keyword,
expand by a bounded number of hops (in either edge direction), and keep the
induced subgraph.
"""

from __future__ import annotations

from collections import deque

from repro.datasets.base import Dataset
from repro.errors import DatasetError
from repro.graph.data_graph import DataGraph
from repro.ir.index import InvertedIndex
from repro.ir.tokenize import DEFAULT_ANALYZER, Analyzer


def keyword_subset(
    dataset: Dataset,
    keyword: str,
    hops: int = 1,
    seed_labels: tuple[str, ...] | None = None,
    name: str | None = None,
    analyzer: Analyzer = DEFAULT_ANALYZER,
) -> Dataset:
    """The induced subgraph around nodes containing ``keyword``.

    ``seed_labels`` restricts which node types can seed the subset (e.g. only
    ``PubMed`` publications for DS7cancer); expansion then includes any node
    within ``hops`` undirected hops of a seed.  Edges are kept when both
    endpoints survive.
    """
    if hops < 0:
        raise DatasetError(f"hops must be non-negative, got {hops}")
    source = dataset.data_graph
    index = InvertedIndex.from_graph(source, analyzer)
    term = analyzer.terms(keyword)
    if not term:
        raise DatasetError(f"keyword {keyword!r} has no indexable term")
    seeds = [
        doc_id
        for doc_id in index.documents_with_term(term[0])
        if seed_labels is None or source.node(doc_id).label in seed_labels
    ]
    if not seeds:
        raise DatasetError(f"no node matches keyword {keyword!r}")

    kept: dict[str, int] = {node_id: 0 for node_id in seeds}
    frontier = deque(seeds)
    while frontier:
        node_id = frontier.popleft()
        depth = kept[node_id]
        if depth >= hops:
            continue
        for edge in source.out_edges(node_id):
            if edge.target not in kept:
                kept[edge.target] = depth + 1
                frontier.append(edge.target)
        for edge in source.in_edges(node_id):
            if edge.source not in kept:
                kept[edge.source] = depth + 1
                frontier.append(edge.source)

    subgraph = DataGraph()
    for node in source.nodes():
        if node.node_id in kept:
            subgraph.add_node(node.node_id, node.label, node.attributes)
    for edge in source.edges():
        if edge.source in kept and edge.target in kept:
            subgraph.add_edge(edge.source, edge.target, edge.role)

    extras = dict(dataset.extras)
    extras["subset_keyword"] = keyword
    return Dataset(
        name=name or f"{dataset.name}_{keyword}",
        data_graph=subgraph,
        transfer_schema=dataset.transfer_schema,
        ground_truth_rates=dataset.ground_truth_rates,
        extras=extras,
    )
