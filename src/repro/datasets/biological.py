"""Synthetic biological datasets over the Figure 4 schema.

The paper's DS7 dataset is "a collection of biological sources downloaded
from PubMed" (Entrez Gene/Protein/Nucleotide, PubMed, OMIM); it is not
redistributable, so this generator synthesizes a graph with the same shape:

* genes as hubs, each linked to its protein and nucleotide records, disease
  (OMIM) entries and supporting publications;
* publications with topic-clustered abstract-like text (so that queries like
  "cancer" carve out a topical subgraph, which is how the paper derives
  DS7cancer from DS7);
* citation-like skew: a minority of publications accumulate most links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import (
    BIOLOGICAL_GROUND_TRUTH_VECTOR,
    Dataset,
    biological_transfer_schema,
)
from repro.datasets.vocabulary import (
    BIOLOGY_TOPICS,
    Topic,
    make_gene_symbol,
    make_title,
)
from repro.errors import DatasetError
from repro.graph.data_graph import DataGraph


@dataclass(frozen=True)
class BiologicalConfig:
    """Size and shape parameters of a synthetic biological dataset."""

    num_genes: int = 800
    num_publications: int = 3000
    num_omim: int = 200
    proteins_per_gene: float = 1.5
    nucleotides_per_gene: float = 1.5
    publications_per_gene: float = 4.0
    seed: int = 11

    def __post_init__(self) -> None:
        if min(self.num_genes, self.num_publications, self.num_omim) < 1:
            raise DatasetError("biological generator sizes must be positive")


def generate_biological(
    config: BiologicalConfig = BiologicalConfig(), name: str = "ds7"
) -> Dataset:
    """Generate a synthetic Figure-4-style biological dataset."""
    rng = random.Random(config.seed)
    topics = BIOLOGY_TOPICS
    graph = DataGraph()

    # Publications first: topic-clustered titles, skewed popularity.
    publication_topic: dict[str, Topic] = {}
    publications_by_topic: dict[str, list[str]] = {t.name: [] for t in topics}
    for pub_index in range(config.num_publications):
        topic = rng.choice(topics)
        secondary = rng.choice(topics) if rng.random() < 0.25 else None
        node_id = f"pubmed:{pub_index}"
        graph.add_node(
            node_id,
            "PubMed",
            {
                "title": make_title(rng, topic, secondary, min_words=6, max_words=14),
                "year": str(rng.randint(1985, 2007)),
            },
        )
        publication_topic[node_id] = topic
        publications_by_topic[topic.name].append(node_id)

    def pick_publication(topic: Topic) -> str:
        pool = publications_by_topic[topic.name]
        # Quadratic skew: early (low-index) publications act as citation hubs.
        return pool[int(len(pool) * rng.random() * rng.random())]

    # OMIM disease entries.
    omim_topics: dict[str, Topic] = {}
    omim_by_topic: dict[str, list[str]] = {t.name: [] for t in topics}
    for omim_index in range(config.num_omim):
        topic = rng.choice(topics)
        node_id = f"omim:{omim_index}"
        graph.add_node(
            node_id,
            "OMIM",
            {"title": make_title(rng, topic, None, min_words=3, max_words=6)},
        )
        omim_topics[node_id] = topic
        omim_by_topic[topic.name].append(node_id)
        for _ in range(_count(rng, 2.0)):
            graph.add_edge(node_id, pick_publication(topic), "omimPubMedAssociates")

    # Genes and their satellite records.
    gene_topic: dict[str, Topic] = {}
    protein_index = 0
    nucleotide_index = 0
    for gene_index in range(config.num_genes):
        topic = rng.choice(topics)
        gene_id = f"gene:{gene_index}"
        symbol = make_gene_symbol(rng)
        graph.add_node(
            gene_id,
            "EntrezGene",
            {"symbol": symbol, "description": make_title(rng, topic, None, 3, 6)},
        )
        gene_topic[gene_id] = topic

        for _ in range(_count(rng, config.publications_per_gene)):
            graph.add_edge(gene_id, pick_publication(topic), "genePubMedAssociates")

        if omim_by_topic[topic.name] and rng.random() < 0.4:
            graph.add_edge(
                gene_id, rng.choice(omim_by_topic[topic.name]), "geneOmimAssociates"
            )

        for _ in range(_count(rng, config.proteins_per_gene)):
            protein_id = f"protein:{protein_index}"
            protein_index += 1
            graph.add_node(
                protein_id,
                "EntrezProtein",
                {"name": f"{symbol} protein", "description": make_title(rng, topic, None, 3, 6)},
            )
            graph.add_edge(gene_id, protein_id, "geneProteinAssociates")
            for _ in range(_count(rng, 1.0)):
                graph.add_edge(protein_id, pick_publication(topic), "proteinPubMedAssociates")

        for _ in range(_count(rng, config.nucleotides_per_gene)):
            nucleotide_id = f"nucleotide:{nucleotide_index}"
            nucleotide_index += 1
            graph.add_node(
                nucleotide_id,
                "EntrezNucleotide",
                {"name": f"{symbol} mrna", "description": make_title(rng, topic, None, 3, 6)},
            )
            graph.add_edge(gene_id, nucleotide_id, "geneNucleotideAssociates")
            for _ in range(_count(rng, 0.7)):
                graph.add_edge(
                    nucleotide_id, pick_publication(topic), "nucleotidePubMedAssociates"
                )

    transfer_schema = biological_transfer_schema(BIOLOGICAL_GROUND_TRUTH_VECTOR)
    return Dataset(
        name=name,
        data_graph=graph,
        transfer_schema=transfer_schema,
        ground_truth_rates=transfer_schema,
        extras={
            "publication_topics": {
                node_id: topic.name for node_id, topic in publication_topic.items()
            },
            "gene_topics": {node_id: topic.name for node_id, topic in gene_topic.items()},
            "config": config,
        },
    )


def _count(rng: random.Random, mean: float) -> int:
    """A small non-negative count with the given mean (geometric-ish)."""
    if mean <= 0:
        return 0
    count = 0
    while rng.random() < mean / (mean + 1.0):
        count += 1
        if count > mean * 10 + 10:
            break
    return count
