"""Structural analysis of datasets.

The substitution argument of DESIGN.md rests on the synthetic generators
producing the *graph properties* the paper's algorithms exploit: skewed
citation in-degrees (hub/authority structure), topical clustering of links,
and connectedness.  This module measures those properties so tests and
benchmarks can assert them instead of trusting the generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import Dataset
from repro.graph.data_graph import DataGraph


def in_degree_distribution(graph: DataGraph, role: str | None = None) -> dict[str, int]:
    """In-degree per node, optionally restricted to one edge role."""
    degrees = {node_id: 0 for node_id in graph.node_ids()}
    for edge in graph.edges():
        if role is None or edge.role == role:
            degrees[edge.target] += 1
    return degrees


def gini_coefficient(values: list[int | float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = equal, 1 = one
    node holds everything).  The standard skew summary for degree
    distributions."""
    if not values:
        return 0.0
    sorted_values = sorted(values)
    total = sum(sorted_values)
    if total == 0:
        return 0.0
    n = len(sorted_values)
    cumulative = 0.0
    weighted = 0.0
    for index, value in enumerate(sorted_values, start=1):
        cumulative += value
        weighted += cumulative
    # Gini = 1 - 2 * B where B is the area under the Lorenz curve.
    return 1.0 - 2.0 * (weighted / (n * total)) + 1.0 / n


def citation_topic_purity(dataset: Dataset, role: str = "cites") -> float:
    """Fraction of ``role`` edges whose endpoints share a topic label.

    Uses the generator's ``paper_topics``/``publication_topics`` extras;
    returns 0 when no labels are available.
    """
    labels = dataset.extras.get("paper_topics") or dataset.extras.get(
        "publication_topics"
    )
    if not labels:
        return 0.0
    matched = 0
    total = 0
    for edge in dataset.data_graph.edges():
        if edge.role != role:
            continue
        source_topic = labels.get(edge.source)
        target_topic = labels.get(edge.target)
        if source_topic is None or target_topic is None:
            continue
        total += 1
        if source_topic == target_topic:
            matched += 1
    return matched / total if total else 0.0


@dataclass(frozen=True)
class StructuralSummary:
    """The structural facts the reproduction depends on."""

    num_nodes: int
    num_edges: int
    citation_gini: float
    topic_purity: float
    isolated_nodes: int

    def is_plausible_bibliographic_graph(self) -> bool:
        """Sanity gate used by tests: skewed citations, clustered topics."""
        return self.citation_gini >= 0.3 and self.topic_purity >= 0.5


def structural_summary(dataset: Dataset, citation_role: str = "cites") -> StructuralSummary:
    """Measure the structural facts of a dataset in one pass."""
    graph = dataset.data_graph
    citation_degrees = [
        degree
        for node_id, degree in in_degree_distribution(graph, citation_role).items()
        if graph.node(node_id).label == "Paper"
    ]
    isolated = sum(
        1
        for node_id in graph.node_ids()
        if graph.out_degree(node_id) == 0 and graph.in_degree(node_id) == 0
    )
    return StructuralSummary(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        citation_gini=gini_coefficient(citation_degrees) if citation_degrees else 0.0,
        topic_purity=citation_topic_purity(dataset, citation_role),
        isolated_nodes=isolated,
    )
