"""Table-1-style dataset statistics."""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.datasets.base import Dataset
from repro.graph.serialization import data_graph_to_dict


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of Table 1: name, node count, edge count, serialized size."""

    name: str
    num_nodes: int
    num_edges: int
    size_bytes: int
    label_counts: dict[str, int]

    @property
    def size_megabytes(self) -> float:
        return self.size_bytes / (1024 * 1024)

    def row(self) -> tuple[str, int, int, str]:
        return (self.name, self.num_nodes, self.num_edges, f"{self.size_megabytes:.1f}")


def dataset_statistics(dataset: Dataset) -> DatasetStatistics:
    """Compute the Table 1 row for a dataset.

    Size is the JSON-serialized size of the data graph — our analogue of the
    paper's on-disk size column.
    """
    payload = json.dumps(data_graph_to_dict(dataset.data_graph))
    return DatasetStatistics(
        name=dataset.name,
        num_nodes=dataset.num_nodes,
        num_edges=dataset.num_edges,
        size_bytes=len(payload.encode("utf-8")),
        label_counts=dataset.data_graph.label_counts(),
    )
