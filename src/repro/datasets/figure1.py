"""The paper's running example: the DBLP subset of Figures 1, 5, 6 and 9.

Seven objects (nodes ``v1``-``v7``), the DBLP schema of Figure 2 and the
[BHP04] transfer rates of Figure 3.  Tests, examples and documentation all
use this graph because the paper works its equations on it: the "Data Cube"
paper (``v7``) tops the "OLAP" query without containing the keyword, and the
explaining subgraph of ``v4`` ("Range Queries in OLAP Data Cubes") excludes
``v7`` because no path leads from it to ``v4`` (Example 1).
"""

from __future__ import annotations

from repro.datasets.base import Dataset, dblp_transfer_schema
from repro.graph.data_graph import DataGraph

_NODES = (
    ("v1", "Paper", {
        "authors": "H. Gupta, V. Harinarayan, A. Rajaraman, J. Ullman",
        "title": "Index Selection for OLAP.",
        "year": "ICDE 1997",
    }),
    ("v2", "Conference", {"name": "ICDE"}),
    ("v3", "Year", {"name": "ICDE", "year": "1997", "location": "Birmingham"}),
    ("v4", "Paper", {
        "authors": "C. Ho, R. Agrawal, N. Megiddo, R. Srikant",
        "title": "Range Queries in OLAP Data Cubes.",
        "year": "SIGMOD 1997",
    }),
    ("v5", "Paper", {
        "authors": "R. Agrawal, A. Gupta, S. Sarawagi",
        "title": "Modeling Multidimensional Databases.",
        "year": "ICDE 1997",
    }),
    ("v6", "Author", {"name": "R. Agrawal"}),
    ("v7", "Paper", {
        "authors": "J. Gray, A. Bosworth, A. Layman, H. Pirahesh",
        "title": "Data Cube: A Relational Aggregation Operator Generalizing "
                 "Group-By, Cross-Tab, and Sub-Total.",
        "year": "ICDE 1996",
    }),
)

_EDGES = (
    ("v1", "v7", "cites"),
    ("v5", "v7", "cites"),
    ("v5", "v1", "cites"),
    ("v4", "v7", "cites"),
    ("v2", "v3", "has"),
    ("v3", "v1", "contains"),
    ("v3", "v5", "contains"),
    ("v4", "v6", "by"),
    ("v5", "v6", "by"),
)


def figure1_dataset() -> Dataset:
    """Build the Figure 1 data graph with Figure 3's transfer rates."""
    graph = DataGraph()
    for node_id, label, attributes in _NODES:
        graph.add_node(node_id, label, attributes)
    for source, target, role in _EDGES:
        graph.add_edge(source, target, role)
    transfer_schema = dblp_transfer_schema()
    return Dataset(
        name="figure1",
        data_graph=graph,
        transfer_schema=transfer_schema,
        ground_truth_rates=transfer_schema,
    )
