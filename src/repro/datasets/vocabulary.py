"""Topic vocabularies for the synthetic dataset generators.

The paper's quality experiments depend on keyword *clustering*: papers about
OLAP cite papers about OLAP, and the base set of a query lands inside a
topical community whose citation structure the authority flow then exploits.
These vocabularies give the generators that clustering — each topic is a set
of characteristic terms drawn into titles, with shared filler words providing
realistic overlap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Topic:
    """A named topic with its characteristic vocabulary."""

    name: str
    words: tuple[str, ...]


DATABASE_TOPICS: tuple[Topic, ...] = (
    Topic("olap", ("olap", "cube", "cubes", "aggregation", "multidimensional",
                   "warehouse", "rollup", "drilldown", "materialized", "views")),
    Topic("xml", ("xml", "xpath", "xquery", "semistructured", "documents",
                  "schema", "twig", "elements", "dtd", "trees")),
    Topic("mining", ("mining", "patterns", "association", "rules", "frequent",
                     "itemsets", "clustering", "classification", "outliers", "discovery")),
    Topic("indexing", ("index", "indexing", "btree", "hashing", "access",
                       "structures", "selection", "bitmap", "spatial", "rtree")),
    Topic("optimization", ("query", "optimization", "plans", "cost", "join",
                           "selectivity", "cardinality", "estimation", "optimizer", "rewriting")),
    Topic("search", ("keyword", "search", "ranked", "ranking", "proximity",
                     "retrieval", "relevance", "answers", "results", "scoring")),
    Topic("streams", ("streams", "streaming", "continuous", "windows", "sliding",
                      "sensors", "realtime", "approximation", "sketches", "load")),
    Topic("transactions", ("transactions", "concurrency", "locking", "recovery",
                           "logging", "serializability", "isolation", "commit", "protocols", "acid")),
    Topic("distributed", ("distributed", "parallel", "replication", "partitioning",
                          "fragments", "sites", "consensus", "scalable", "cluster", "grid")),
    Topic("web", ("web", "pages", "hyperlink", "crawling", "pagerank",
                  "authority", "graph", "links", "sites", "navigation")),
)

BIOLOGY_TOPICS: tuple[Topic, ...] = (
    Topic("cancer", ("cancer", "tumor", "carcinoma", "oncogene", "metastasis",
                     "apoptosis", "proliferation", "malignant", "leukemia", "lymphoma")),
    Topic("immunology", ("immune", "antibody", "antigen", "cytokine", "inflammation",
                         "lymphocyte", "interleukin", "macrophage", "autoimmune", "response")),
    Topic("neuroscience", ("neuron", "synaptic", "brain", "cortical", "receptor",
                           "dopamine", "axon", "neural", "cognition", "plasticity")),
    Topic("cardiovascular", ("cardiac", "heart", "vascular", "artery", "hypertension",
                             "myocardial", "ischemia", "atherosclerosis", "endothelial", "pressure")),
    Topic("metabolism", ("metabolic", "insulin", "glucose", "diabetes", "obesity",
                         "lipid", "mitochondrial", "oxidative", "enzyme", "pathway")),
    Topic("genetics", ("mutation", "genome", "polymorphism", "allele", "expression",
                       "transcription", "regulation", "sequencing", "variant", "heritability")),
)

FILLER_WORDS: tuple[str, ...] = (
    "analysis", "approach", "efficient", "evaluation", "effective", "study",
    "model", "framework", "system", "method", "novel", "improved", "general",
    "processing", "management", "performance", "data", "large", "scale",
    "adaptive", "dynamic", "robust", "practical", "techniques",
)

_CONSONANTS = "bcdfgklmnprstvz"
_VOWELS = "aeiou"


def topic_by_name(topics: tuple[Topic, ...], name: str) -> Topic:
    """Look up a topic by name; raises KeyError when unknown."""
    for topic in topics:
        if topic.name == name:
            return topic
    raise KeyError(name)


def make_title(
    rng: random.Random,
    topic: Topic,
    secondary: Topic | None = None,
    min_words: int = 4,
    max_words: int = 9,
) -> str:
    """A synthetic title mixing topic terms with filler words."""
    length = rng.randint(min_words, max_words)
    num_topic = max(1, round(length * 0.5))
    words = [rng.choice(topic.words) for _ in range(num_topic)]
    if secondary is not None and length - num_topic > 1:
        words.append(rng.choice(secondary.words))
    while len(words) < length:
        words.append(rng.choice(FILLER_WORDS))
    rng.shuffle(words)
    return " ".join(words)


def make_person_name(rng: random.Random) -> str:
    """A synthetic author name like ``K. Velano``."""
    initial = rng.choice("ABCDEFGHJKLMNPRSTVW")
    surname = make_symbol(rng, syllables=rng.randint(2, 3)).capitalize()
    return f"{initial}. {surname}"

def make_symbol(rng: random.Random, syllables: int = 2) -> str:
    """A pronounceable synthetic identifier (gene symbols, surnames...)."""
    return "".join(
        rng.choice(_CONSONANTS) + rng.choice(_VOWELS) for _ in range(syllables)
    )


def make_gene_symbol(rng: random.Random) -> str:
    """An uppercase gene-like symbol such as ``TNK3``."""
    letters = "".join(rng.choice("ABCDEFGHIKLMNPRSTUVWXYZ") for _ in range(rng.randint(2, 4)))
    return letters + str(rng.randint(1, 19))
