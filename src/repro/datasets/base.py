"""Dataset bundles and the reference schemas of the paper.

:class:`Dataset` carries everything an experiment needs: the data graph, the
authority transfer schema with its *initial* rates, and (when known) the
ground-truth rates of [BHP04] that the Figure 11 training experiment tries to
recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graph.authority import AuthorityTransferSchemaGraph, Direction, EdgeType
from repro.graph.data_graph import DataGraph
from repro.graph.schema import SchemaGraph


@dataclass
class Dataset:
    """A named data graph plus its authority transfer schema."""

    name: str
    data_graph: DataGraph
    transfer_schema: AuthorityTransferSchemaGraph
    ground_truth_rates: AuthorityTransferSchemaGraph | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def schema(self) -> SchemaGraph:
        return self.transfer_schema.schema

    @property
    def num_nodes(self) -> int:
        return self.data_graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.data_graph.num_edges


# --------------------------------------------------------------------------
# DBLP (Figures 2 and 3)
# --------------------------------------------------------------------------

def dblp_schema() -> SchemaGraph:
    """The DBLP schema graph of Figure 2."""
    schema = SchemaGraph()
    for label in ("Paper", "Author", "Conference", "Year"):
        schema.add_label(label)
    schema.add_edge("Paper", "Paper", "cites")
    schema.add_edge("Paper", "Author", "by")
    schema.add_edge("Conference", "Year", "has")
    schema.add_edge("Year", "Paper", "contains")
    return schema


def dblp_edge_order(schema: SchemaGraph) -> list[EdgeType]:
    """The paper's rate-vector order [PP, PPb, PA, AP, CY, YC, YP, PY]."""
    cites, by, has, contains = schema.edges
    forward, backward = Direction.FORWARD, Direction.BACKWARD
    return [
        EdgeType(cites, forward),      # PP
        EdgeType(cites, backward),     # PP backward ("cited")
        EdgeType(by, forward),         # PA
        EdgeType(by, backward),        # AP
        EdgeType(has, forward),        # CY
        EdgeType(has, backward),       # YC
        EdgeType(contains, forward),   # YP
        EdgeType(contains, backward),  # PY
    ]


# Ground truth of [BHP04] as quoted in Section 6.1.1:
# [PP, PPb, PA, AP, CY, YC, YP, PY]
DBLP_GROUND_TRUTH_VECTOR = [0.7, 0.0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1]
# The surveys initialize every rate to 0.3 before training (Section 6.1.1).
DBLP_INITIAL_TRAINING_RATE = 0.3


def dblp_transfer_schema(
    vector: list[float] | None = None, epsilon: float = 0.0
) -> AuthorityTransferSchemaGraph:
    """Figure 3's authority transfer schema graph.

    ``vector`` overrides the [BHP04] ground-truth rates, in the canonical
    [PP, PPb, PA, AP, CY, YC, YP, PY] order.
    """
    schema = dblp_schema()
    transfer = AuthorityTransferSchemaGraph(schema, epsilon=epsilon)
    order = dblp_edge_order(schema)
    values = vector if vector is not None else DBLP_GROUND_TRUTH_VECTOR
    return transfer.with_vector(values, order)


# --------------------------------------------------------------------------
# Biological sources (Figure 4)
# --------------------------------------------------------------------------

def biological_schema() -> SchemaGraph:
    """A biological schema following Figure 4.

    Entrez Gene is the hub: it associates with PubMed publications, OMIM
    disease entries, Entrez Protein and Entrez Nucleotide records; protein
    and nucleotide records also cite PubMed publications.
    """
    schema = SchemaGraph()
    for label in ("EntrezGene", "EntrezProtein", "EntrezNucleotide", "PubMed", "OMIM"):
        schema.add_label(label)
    schema.add_edge("EntrezGene", "PubMed", "genePubMedAssociates")
    schema.add_edge("EntrezGene", "EntrezProtein", "geneProteinAssociates")
    schema.add_edge("EntrezGene", "EntrezNucleotide", "geneNucleotideAssociates")
    schema.add_edge("EntrezGene", "OMIM", "geneOmimAssociates")
    schema.add_edge("EntrezProtein", "PubMed", "proteinPubMedAssociates")
    schema.add_edge("EntrezNucleotide", "PubMed", "nucleotidePubMedAssociates")
    schema.add_edge("OMIM", "PubMed", "omimPubMedAssociates")
    return schema


def biological_edge_order(schema: SchemaGraph) -> list[EdgeType]:
    """Canonical edge-type order: forward then backward per schema edge."""
    order: list[EdgeType] = []
    for edge in schema.edges:
        order.append(EdgeType(edge, Direction.FORWARD))
        order.append(EdgeType(edge, Direction.BACKWARD))
    return order


# Plausible expert rates for the biological graph: publications confer
# authority to the biological entities citing them and vice versa, with
# gene-publication links strongest (the paper's motivating example asks what
# flows from a gene to a PubMed publication vs. to a protein).
BIOLOGICAL_GROUND_TRUTH_VECTOR = [
    0.40, 0.30,  # gene <-> pubmed
    0.25, 0.20,  # gene <-> protein
    0.15, 0.20,  # gene <-> nucleotide
    0.10, 0.10,  # gene <-> omim
    0.40, 0.10,  # protein <-> pubmed
    0.30, 0.10,  # nucleotide <-> pubmed
    0.40, 0.10,  # omim <-> pubmed
]
# Every label's outgoing rate sum stays below 1 (required for convergence):
# gene 0.9, protein 0.6, nucleotide 0.5, pubmed 0.6, omim 0.5.


def biological_transfer_schema(
    vector: list[float] | None = None, epsilon: float = 0.0
) -> AuthorityTransferSchemaGraph:
    """The authority transfer schema for the Figure 4 biological graph."""
    schema = biological_schema()
    transfer = AuthorityTransferSchemaGraph(schema, epsilon=epsilon)
    order = biological_edge_order(schema)
    values = vector if vector is not None else BIOLOGICAL_GROUND_TRUTH_VECTOR
    return transfer.with_vector(values, order)
