"""Stage timing instrumentation.

The paper's performance study (Section 6.2, Figures 14-17) decomposes each
feedback-and-reformulate iteration into four stages:

  (a) ObjectRank2 execution for the initial or reformulated query,
  (b) explaining subgraph creation,
  (c) explaining ObjectRank2 execution (the flow-adjustment fixpoint),
  (d) query reformulation.

:class:`StageClock` collects wall-clock durations for named stages so the
system facade can report exactly those rows.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

STAGE_SEARCH = "objectrank2_execution"
STAGE_SUBGRAPH = "explaining_subgraph_creation"
STAGE_ADJUST = "explaining_objectrank2_execution"
STAGE_REFORMULATE = "query_reformulation"

ALL_STAGES = (STAGE_SEARCH, STAGE_SUBGRAPH, STAGE_ADJUST, STAGE_REFORMULATE)


@dataclass
class StageClock:
    """Accumulates per-stage wall-clock seconds."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def snapshot(self) -> dict[str, float]:
        """Current per-stage totals; missing stages read as 0.0."""
        return {name: self.totals.get(name, 0.0) for name in ALL_STAGES}


@dataclass(frozen=True)
class IterationTiming:
    """Per-stage seconds for one query/feedback iteration (one bar group of
    Figures 14a-17a), plus the ObjectRank2 iteration count (14b-17b)."""

    label: str
    search_seconds: float
    subgraph_seconds: float
    adjust_seconds: float
    reformulate_seconds: float
    objectrank_iterations: int

    @property
    def total_seconds(self) -> float:
        return (
            self.search_seconds
            + self.subgraph_seconds
            + self.adjust_seconds
            + self.reformulate_seconds
        )
