"""Plain-text tables and series for the benchmark harness.

Every benchmark regenerates one table or figure of the paper; these helpers
print them in a uniform, diff-friendly format so EXPERIMENTS.md can quote the
output directly.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """Render one figure series as ``name: x=y`` pairs."""
    points = "  ".join(f"{x}={y:.4g}" for x, y in zip(xs, ys))
    return f"{name}: {points}"


def percent(value: float) -> str:
    """Format a 0-1 fraction as a percentage string, e.g. 0.4567 -> "45.67%"."""
    return f"{100.0 * value:.2f}%"
