"""Timing, reporting and workload helpers shared by the benchmark harness."""

from repro.bench.ascii_plot import ascii_chart
from repro.bench.report import collect_report, write_report
from repro.bench.reporting import format_series, format_table, percent
from repro.bench.workload import WorkloadGenerator, WorkloadQuery
from repro.bench.timing import (
    ALL_STAGES,
    STAGE_ADJUST,
    STAGE_REFORMULATE,
    STAGE_SEARCH,
    STAGE_SUBGRAPH,
    IterationTiming,
    StageClock,
)

__all__ = [
    "ALL_STAGES",
    "IterationTiming",
    "STAGE_ADJUST",
    "STAGE_REFORMULATE",
    "STAGE_SEARCH",
    "STAGE_SUBGRAPH",
    "StageClock",
    "WorkloadGenerator",
    "WorkloadQuery",
    "ascii_chart",
    "collect_report",
    "format_series",
    "format_table",
    "percent",
    "write_report",
]
