"""Collecting benchmark results into one report.

Every benchmark writes its table/series to ``benchmarks/results/<name>.txt``;
:func:`collect_report` stitches those files into a single markdown document
(used to refresh the measured numbers quoted in EXPERIMENTS.md after a run
on new hardware or at a different scale).
"""

from __future__ import annotations

from pathlib import Path

# Paper experiments first, in the paper's order; extensions after.
_SECTION_ORDER = (
    ("table1_datasets", "Table 1 — datasets"),
    ("fig10_internal_survey", "Figure 10 — internal survey"),
    ("fig11_training", "Figure 11 — rate training"),
    ("table2_or2_vs_or", "Table 2 — ObjectRank2 vs ObjectRank"),
    ("fig12_external_survey", "Figure 12 — external survey"),
    ("fig13_external_training", "Figure 13 — external training"),
    ("fig14_dblp_complete", "Figure 14 — DBLPcomplete performance"),
    ("fig15_dblp_top", "Figure 15 — DBLPtop performance"),
    ("fig16_ds7", "Figure 16 — DS7 performance"),
    ("fig17_ds7_cancer", "Figure 17 — DS7cancer performance"),
    ("table3_explain_iterations", "Table 3 — explaining iterations"),
    ("ablation_warm_start", "Ablation — warm vs cold start"),
    ("ablation_radius", "Ablation — radius L"),
    ("ablation_damping", "Ablation — damping factor"),
    ("ablation_base_weighting", "Ablation — base-set weighting"),
    ("ablation_aggregation", "Ablation — aggregation functions"),
    ("focused_execution", "Extension — focused execution"),
    ("rocchio_baseline", "Extension — Rocchio baseline"),
    ("scalability", "Extension — scalability sweep"),
)


def collect_report(
    results_dir: str | Path, title: str = "Benchmark results"
) -> str:
    """One markdown document from every result file present.

    Known result names appear in the paper's order with descriptive
    headings; unknown files (new benchmarks) are appended alphabetically so
    nothing silently disappears from the report.
    """
    directory = Path(results_dir)
    known = dict(_SECTION_ORDER)
    sections: list[str] = [f"# {title}", ""]
    seen: set[str] = set()

    for name, heading in _SECTION_ORDER:
        path = directory / f"{name}.txt"
        if not path.exists():
            continue
        seen.add(path.name)
        sections.extend([f"## {heading}", "", "```", path.read_text().rstrip(), "```", ""])

    for path in sorted(directory.glob("*.txt")):
        if path.name in seen:
            continue
        heading = path.stem.replace("_", " ")
        sections.extend([f"## {heading}", "", "```", path.read_text().rstrip(), "```", ""])

    if len(sections) == 2:
        sections.append("(no result files found — run the benchmark harness first)")
    return "\n".join(sections)


def write_report(
    results_dir: str | Path, output: str | Path, title: str = "Benchmark results"
) -> None:
    """Write :func:`collect_report` output to ``output``."""
    Path(output).write_text(collect_report(results_dir, title), encoding="utf-8")
