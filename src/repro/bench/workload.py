"""Query workload generation for the benchmark harness.

The paper evaluates on hand-picked queries ("[olap], [query, optimization],
..."); for parameter sweeps and scale studies the harness also needs *many*
queries with controlled properties.  The generator samples queries from a
dataset's own term statistics:

* ``topical`` queries draw 1-2 characteristic terms of one topic (using the
  generator-provided topic labels when present, falling back to mid-df
  index terms);
* ``selective`` queries draw rare terms (small base sets);
* ``popular`` queries draw high-df terms (large base sets — the regime where
  Equation 16's normalizing exponent and the weighted base set matter).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import Dataset
from repro.ir.index import InvertedIndex


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated query with its provenance."""

    text: str
    kind: str

    @property
    def keywords(self) -> tuple[str, ...]:
        return tuple(self.text.split())


class WorkloadGenerator:
    """Samples reproducible query workloads from a dataset."""

    def __init__(self, dataset: Dataset, seed: int = 0):
        self.dataset = dataset
        self.index = InvertedIndex.from_graph(dataset.data_graph)
        self._rng = random.Random(seed)
        frequencies = [
            (term, self.index.document_frequency(term))
            for term in self.index.vocabulary()
        ]
        frequencies.sort(key=lambda item: item[1])
        self._terms_by_rarity = [term for term, _ in frequencies]

    # -- term pools ---------------------------------------------------------

    def _slice(self, low: float, high: float) -> list[str]:
        n = len(self._terms_by_rarity)
        pool = self._terms_by_rarity[int(n * low) : max(int(n * high), 1)]
        return pool or self._terms_by_rarity

    def selective_terms(self) -> list[str]:
        """Rare terms: small base sets (but df >= 2 so results exist)."""
        return [
            term
            for term in self._slice(0.0, 0.4)
            if self.index.document_frequency(term) >= 2
        ] or self._slice(0.3, 0.6)

    def popular_terms(self) -> list[str]:
        """The most frequent terms: the popular-keyword-skew regime."""
        return self._slice(0.9, 1.0)

    def topical_terms(self) -> dict[str, list[str]]:
        """Topic -> characteristic terms, from the generator's labels."""
        topics: dict[str, list[str]] = {}
        labels = self.dataset.extras.get("paper_topics") or self.dataset.extras.get(
            "publication_topics"
        )
        if not labels:
            return topics
        for topic in set(labels.values()):
            if topic in self.index:
                topics[topic] = [topic]
        return topics

    # -- sampling ------------------------------------------------------------

    def sample(self, kind: str, count: int, max_keywords: int = 2) -> list[WorkloadQuery]:
        """``count`` queries of one kind: topical, selective or popular."""
        if kind == "topical":
            pools = list(self.topical_terms().values())
            if not pools:
                pools = [self.selective_terms()]
            queries = []
            for _ in range(count):
                pool = self._rng.choice(pools)
                size = self._rng.randint(1, min(max_keywords, len(pool)))
                queries.append(
                    WorkloadQuery(" ".join(self._rng.sample(pool, size)), kind)
                )
            return queries
        if kind == "selective":
            pool = self.selective_terms()
        elif kind == "popular":
            pool = self.popular_terms()
        else:
            raise ValueError(f"unknown workload kind {kind!r}")
        queries = []
        for _ in range(count):
            size = self._rng.randint(1, min(max_keywords, len(pool)))
            queries.append(WorkloadQuery(" ".join(self._rng.sample(pool, size)), kind))
        return queries

    def mixed(self, count: int) -> list[WorkloadQuery]:
        """A balanced mix of the three kinds."""
        per_kind, remainder = divmod(count, 3)
        workload = (
            self.sample("topical", per_kind + (1 if remainder > 0 else 0))
            + self.sample("selective", per_kind + (1 if remainder > 1 else 0))
            + self.sample("popular", per_kind)
        )
        self._rng.shuffle(workload)
        return workload
