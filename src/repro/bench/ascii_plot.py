"""Terminal line charts for experiment curves.

The harness runs offline with no plotting stack; these ASCII charts make the
Figure 10-13 curves readable directly in a terminal or a results file.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    y_min: float | None = None,
    y_max: float | None = None,
    title: str = "",
) -> str:
    """Plot one or more equal-length numeric series as an ASCII chart.

    Each series gets a marker character; a legend maps markers back to
    names.  Values are linearly mapped into a ``height``-row grid; the x axis
    is the sample index (iteration number in the survey/training figures).
    """
    if not series:
        raise ValueError("no series to plot")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    (num_points,) = lengths
    if num_points == 0:
        raise ValueError("series are empty")

    all_values = [v for values in series.values() for v in values]
    low = min(all_values) if y_min is None else y_min
    high = max(all_values) if y_max is None else y_max
    if high <= low:
        high = low + 1.0
    span = high - low

    grid = [[" "] * width for _ in range(height)]
    for series_index, (_name, values) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for point_index, value in enumerate(values):
            x = (
                0
                if num_points == 1
                else round(point_index * (width - 1) / (num_points - 1))
            )
            clamped = min(max(value, low), high)
            y = round((clamped - low) / span * (height - 1))
            grid[height - 1 - y][x] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{high:8.3f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{low:8.3f} +" + "-" * width)
    lines.append(" " * 10 + f"0 .. {num_points - 1} (iteration)")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
