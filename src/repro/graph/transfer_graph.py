"""Authority transfer data graphs (Section 2, Figure 5, Equation 1).

Given a data graph ``D`` that conforms to an authority transfer schema graph
``G^A``, the authority transfer data graph ``D^A`` has, for every data edge
``e = (u -> v)``, two transfer edges: ``e^f = (u -> v)`` and ``e^b =
(v -> u)``.  A transfer edge of type ``e_G^f`` leaving ``u`` carries the rate

    alpha(e^f) = alpha(e_G^f) / OutDeg(u, e_G^f)        (Equation 1)

where ``OutDeg(u, e_G^f)`` is the number of outgoing transfer edges of that
type at ``u`` (and 0-outdegree means rate 0, vacuously).

This module materializes ``D^A`` with dense integer node indices and flat
numpy edge arrays, so that:

* the ObjectRank transition matrix is one ``scipy.sparse`` construction away,
* transfer rates can be *recomputed in O(edges)* when a structure-based
  reformulation (Section 5.2) changes the schema-level rates — the topology
  and out-degree counts never change.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import GraphError, UnknownNodeError
from repro.graph.authority import AuthorityTransferSchemaGraph, Direction, EdgeType
from repro.graph.conformance import check_conformance, resolve_schema_edge
from repro.graph.data_graph import DataGraph


class AuthorityTransferDataGraph:
    """The materialized authority transfer data graph ``D^A``.

    Transfer edges are stored as parallel numpy arrays ``edge_source``,
    ``edge_target``, ``edge_type_index`` (index into :attr:`edge_types`) and
    ``edge_rate``.  Edge ids are positions into these arrays; data edge ``k``
    of the data graph produces transfer edges ``2k`` (forward) and ``2k + 1``
    (backward).
    """

    def __init__(
        self,
        data_graph: DataGraph,
        transfer_schema: AuthorityTransferSchemaGraph,
        validate: bool = True,
    ) -> None:
        if validate:
            check_conformance(data_graph, transfer_schema.schema)
        self.data_graph = data_graph
        self.node_ids: list[str] = data_graph.node_ids()
        self._node_index: dict[str, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        self.num_nodes = len(self.node_ids)

        self.edge_types: list[EdgeType] = transfer_schema.edge_types()
        type_index = {t: i for i, t in enumerate(self.edge_types)}

        sources: list[int] = []
        targets: list[int] = []
        types: list[int] = []
        schema = transfer_schema.schema
        for edge in data_graph.edges():
            schema_edge = resolve_schema_edge(data_graph, schema, edge)
            if schema_edge is None:  # pragma: no cover - caught by validate
                raise GraphError(f"edge {edge} has no schema edge")
            u = self._node_index[edge.source]
            v = self._node_index[edge.target]
            sources.extend((u, v))
            targets.extend((v, u))
            types.append(type_index[EdgeType(schema_edge, Direction.FORWARD)])
            types.append(type_index[EdgeType(schema_edge, Direction.BACKWARD)])

        self.edge_source = np.asarray(sources, dtype=np.int64)
        self.edge_target = np.asarray(targets, dtype=np.int64)
        self.edge_type_index = np.asarray(types, dtype=np.int64)
        self.num_edges = len(self.edge_source)

        # OutDeg(u, edge_type): count transfer edges grouped by (source, type).
        num_types = max(len(self.edge_types), 1)
        group_key = self.edge_source * num_types + self.edge_type_index
        counts = np.bincount(group_key, minlength=self.num_nodes * num_types)
        self._edge_out_degree = (
            counts[group_key] if self.num_edges else np.zeros(0, dtype=np.int64)
        )

        self._transfer_schema = transfer_schema
        self.edge_rate = np.zeros(self.num_edges, dtype=np.float64)
        self._matrix: sparse.csr_matrix | None = None
        self._out_index = _build_incidence(self.edge_source, self.num_nodes, self.num_edges)
        self._in_index = _build_incidence(self.edge_target, self.num_nodes, self.num_edges)
        self._node_degrees: np.ndarray | None = None
        self._recompute_rates()

    # -- node id <-> dense index ------------------------------------------

    def index_of(self, node_id: str) -> int:
        try:
            return self._node_index[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def node_id_of(self, index: int) -> str:
        return self.node_ids[index]

    def indices_of(self, node_ids: list[str]) -> np.ndarray:
        return np.asarray([self.index_of(nid) for nid in node_ids], dtype=np.int64)

    def label_of(self, index: int) -> str:
        return self.data_graph.node(self.node_ids[index]).label

    # -- transfer rates -----------------------------------------------------

    @property
    def transfer_schema(self) -> AuthorityTransferSchemaGraph:
        return self._transfer_schema

    def set_transfer_rates(self, transfer_schema: AuthorityTransferSchemaGraph) -> None:
        """Swap in new schema-level rates and recompute all edge rates.

        The new graph must be over the same schema (same canonical edge-type
        list); only the rate values may differ.  This is the cheap operation
        that makes iterative structure-based reformulation practical.
        """
        if transfer_schema.edge_types() != self.edge_types:
            raise GraphError("new transfer schema has different edge types")
        self._transfer_schema = transfer_schema
        self._recompute_rates()

    def _recompute_rates(self) -> None:
        alphas = np.asarray(
            [self._transfer_schema.rate(t) for t in self.edge_types], dtype=np.float64
        )
        if self.num_edges:
            self.edge_rate = alphas[self.edge_type_index] / self._edge_out_degree
        self._matrix = None

    def with_rates(
        self, transfer_schema: AuthorityTransferSchemaGraph
    ) -> "AuthorityTransferDataGraph":
        """A lightweight view of this graph under different schema-level rates.

        The view shares every topology structure (node index, edge arrays,
        out-degree counts, incidence indices) with this graph but carries its
        own ``edge_rate`` array and transition matrix, so concurrent sessions
        with different learned rates can rank against one materialized graph
        without mutating it.  Construction costs O(edges) — the same price as
        :meth:`set_transfer_rates` — and nothing else is copied.
        """
        if transfer_schema.edge_types() != self.edge_types:
            raise GraphError("new transfer schema has different edge types")
        view = object.__new__(AuthorityTransferDataGraph)
        view.data_graph = self.data_graph
        view.node_ids = self.node_ids
        view._node_index = self._node_index
        view.num_nodes = self.num_nodes
        view.edge_types = self.edge_types
        view.edge_source = self.edge_source
        view.edge_target = self.edge_target
        view.edge_type_index = self.edge_type_index
        view.num_edges = self.num_edges
        view._edge_out_degree = self._edge_out_degree
        view._out_index = self._out_index
        view._in_index = self._in_index
        view._node_degrees = self._node_degrees
        view._transfer_schema = transfer_schema
        view.edge_rate = np.zeros(self.num_edges, dtype=np.float64)
        view._matrix = None
        view._recompute_rates()
        return view

    # -- matrix + adjacency views --------------------------------------------

    def matrix(self) -> sparse.csr_matrix:
        """Transition matrix ``A`` with ``A[j, i] = alpha(e)`` for edge i->j.

        With this orientation one authority-flow step is the matrix-vector
        product ``A @ r`` (Equation 4).  Parallel transfer edges between the
        same node pair have their rates summed.
        """
        if self._matrix is None:
            self._matrix = sparse.csr_matrix(
                (self.edge_rate, (self.edge_target, self.edge_source)),
                shape=(self.num_nodes, self.num_nodes),
            )
        return self._matrix

    def out_edge_ids(self, index: int) -> np.ndarray:
        """Ids of transfer edges leaving node ``index``."""
        start, end = self._out_index[0][index], self._out_index[0][index + 1]
        return self._out_index[1][start:end]

    def in_edge_ids(self, index: int) -> np.ndarray:
        """Ids of transfer edges entering node ``index``."""
        start, end = self._in_index[0][index], self._in_index[0][index + 1]
        return self._in_index[1][start:end]

    def out_edge_ids_many(self, indices: np.ndarray) -> np.ndarray:
        """Ids of transfer edges leaving any of ``indices``, concatenated.

        One vectorized CSR-row gather instead of a Python loop over
        :meth:`out_edge_ids` — the workhorse of neighborhood expansion, whose
        cost is proportional to the touched edges, not the graph.  Within each
        node the edge ids keep their :meth:`out_edge_ids` order.
        """
        return _gather_rows(self._out_index, indices)

    def in_edge_ids_many(self, indices: np.ndarray) -> np.ndarray:
        """Ids of transfer edges entering any of ``indices``, concatenated."""
        return _gather_rows(self._in_index, indices)

    def node_degrees(self) -> np.ndarray:
        """Transfer-edge degree per node index (computed once, then cached).

        Every data-graph edge materializes a forward and a backward transfer
        edge, so out-degree equals in-degree equals the node's incident data
        edges — one array serves both directions.  Hub-capped neighborhood
        expansion reads this to decide which frontier nodes to expand through.
        """
        if self._node_degrees is None:
            offsets = self._out_index[0]
            self._node_degrees = np.diff(offsets)
        return self._node_degrees

    def edge_type_of(self, edge_id: int) -> EdgeType:
        return self.edge_types[self.edge_type_index[edge_id]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AuthorityTransferDataGraph(nodes={self.num_nodes}, "
            f"transfer_edges={self.num_edges})"
        )


def _gather_rows(
    incidence: tuple[np.ndarray, np.ndarray], indices: np.ndarray
) -> np.ndarray:
    """Concatenate the CSR rows of ``incidence`` selected by ``indices``."""
    indptr, order = incidence
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = indptr[indices]
    lengths = indptr[indices + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Row-start offset of each output position: repeat(starts - cum, lengths)
    # + arange recovers the classic vectorized multi-slice gather.
    offsets = np.zeros(indices.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    positions = np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)
    return order[positions]


def _build_incidence(
    endpoint: np.ndarray, num_nodes: int, num_edges: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style (indptr, edge_ids) index grouping edge ids by one endpoint."""
    order = np.argsort(endpoint, kind="stable").astype(np.int64)
    counts = np.bincount(endpoint, minlength=num_nodes) if num_edges else np.zeros(
        num_nodes, dtype=np.int64
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, order
