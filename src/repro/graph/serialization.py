"""JSON (de)serialization of graphs and transfer schemas.

The online ObjectRank2 demo the paper describes keeps its datasets on disk;
we provide a plain-JSON format so generated datasets can be saved, shared and
reloaded bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.graph.authority import AuthorityTransferSchemaGraph, Direction, EdgeType
from repro.graph.data_graph import DataGraph
from repro.graph.schema import SchemaEdge, SchemaGraph


def schema_to_dict(schema: SchemaGraph) -> dict[str, Any]:
    """A JSON-ready dict of a schema graph."""
    return {
        "labels": schema.labels,
        "edges": [[e.source, e.target, e.role] for e in schema.edges],
    }


def schema_from_dict(payload: dict[str, Any]) -> SchemaGraph:
    """Rebuild a schema graph from :func:`schema_to_dict` output."""
    schema = SchemaGraph()
    for label in payload["labels"]:
        schema.add_label(label)
    for source, target, role in payload["edges"]:
        schema.add_edge(source, target, role)
    return schema


def transfer_schema_to_dict(atsg: AuthorityTransferSchemaGraph) -> dict[str, Any]:
    """A JSON-ready dict of a transfer schema (schema + per-type rates)."""
    return {
        "schema": schema_to_dict(atsg.schema),
        "epsilon": atsg.epsilon,
        "rates": [
            {
                "source": t.schema_edge.source,
                "target": t.schema_edge.target,
                "role": t.schema_edge.role,
                "direction": t.direction.value,
                "rate": atsg.rate(t),
            }
            for t in atsg.edge_types()
        ],
    }


def transfer_schema_from_dict(payload: dict[str, Any]) -> AuthorityTransferSchemaGraph:
    """Rebuild a transfer schema from :func:`transfer_schema_to_dict` output."""
    schema = schema_from_dict(payload["schema"])
    rates = {
        EdgeType(
            SchemaEdge(entry["source"], entry["target"], entry["role"]),
            Direction(entry["direction"]),
        ): entry["rate"]
        for entry in payload["rates"]
    }
    return AuthorityTransferSchemaGraph(schema, rates, epsilon=payload.get("epsilon", 0.0))


def data_graph_to_dict(graph: DataGraph) -> dict[str, Any]:
    """A JSON-ready dict of a data graph (nodes, attributes, edges)."""
    return {
        "nodes": [
            {"id": n.node_id, "label": n.label, "attributes": n.attributes}
            for n in graph.nodes()
        ],
        "edges": [[e.source, e.target, e.role] for e in graph.edges()],
    }


def data_graph_from_dict(payload: dict[str, Any]) -> DataGraph:
    """Rebuild a data graph from :func:`data_graph_to_dict` output."""
    graph = DataGraph()
    for entry in payload["nodes"]:
        graph.add_node(entry["id"], entry["label"], entry.get("attributes", {}))
    for source, target, role in payload["edges"]:
        graph.add_edge(source, target, role)
    return graph


def save_dataset(
    path: str | Path,
    graph: DataGraph,
    transfer_schema: AuthorityTransferSchemaGraph,
    name: str = "",
) -> None:
    """Write a (data graph, transfer schema) pair to one JSON file."""
    payload = {
        "name": name,
        "transfer_schema": transfer_schema_to_dict(transfer_schema),
        "data_graph": data_graph_to_dict(graph),
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_dataset(path: str | Path) -> tuple[DataGraph, AuthorityTransferSchemaGraph, str]:
    """Read back a file written by :func:`save_dataset`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    graph = data_graph_from_dict(payload["data_graph"])
    transfer_schema = transfer_schema_from_dict(payload["transfer_schema"])
    return graph, transfer_schema, payload.get("name", "")
