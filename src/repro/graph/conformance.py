"""Conformance of a data graph to a schema graph (Section 2).

A data graph ``D`` conforms to a schema graph ``G`` when there is a unique
assignment of data-graph nodes to schema-graph nodes (here: the node label
must be a schema label) and a consistent assignment of edges (every data edge
must map to a schema edge between the corresponding labels, matching the
edge's role when one is given).
"""

from __future__ import annotations

from repro.errors import ConformanceError
from repro.graph.data_graph import DataEdge, DataGraph
from repro.graph.schema import SchemaEdge, SchemaGraph


def find_violations(data_graph: DataGraph, schema: SchemaGraph, limit: int = 50) -> list[str]:
    """Collect human-readable conformance violations (at most ``limit``)."""
    violations: list[str] = []
    for node in data_graph.nodes():
        if not schema.has_label(node.label):
            violations.append(f"node {node.node_id!r} has unknown label {node.label!r}")
            if len(violations) >= limit:
                return violations
    for edge in data_graph.edges():
        if resolve_schema_edge(data_graph, schema, edge) is None:
            source_label = data_graph.node(edge.source).label
            target_label = data_graph.node(edge.target).label
            violations.append(
                f"edge {edge.source!r}->{edge.target!r} (role {edge.role!r}) has no "
                f"matching schema edge {source_label!r}->{target_label!r}"
            )
            if len(violations) >= limit:
                return violations
    return violations


def resolve_schema_edge(
    data_graph: DataGraph, schema: SchemaGraph, edge: DataEdge
) -> SchemaEdge | None:
    """Map one data edge to its schema edge, or ``None`` when there is none."""
    source = data_graph.node(edge.source)
    target = data_graph.node(edge.target)
    if not schema.has_label(source.label) or not schema.has_label(target.label):
        return None
    return schema.resolve_edge(source.label, target.label, edge.role)


def check_conformance(data_graph: DataGraph, schema: SchemaGraph) -> None:
    """Raise :class:`ConformanceError` if the data graph does not conform."""
    violations = find_violations(data_graph, schema)
    if violations:
        raise ConformanceError(violations)


def conforms(data_graph: DataGraph, schema: SchemaGraph) -> bool:
    """Whether the data graph conforms to the schema graph."""
    return not find_violations(data_graph, schema, limit=1)
