"""NetworkX interoperability.

Downstream users often already hold their data as a ``networkx`` graph or
want to hand our graphs to networkx algorithms (visualization layouts,
connectivity analysis, alternative centralities).  This module converts in
both directions:

* :func:`to_networkx` / :func:`from_networkx` — data graphs, preserving node
  labels, attributes and edge roles;
* :func:`transfer_graph_to_networkx` — the materialized authority transfer
  data graph with per-edge rates, ready for e.g.
  ``networkx.pagerank(G, weight="rate")`` cross-checks.
"""

from __future__ import annotations

import networkx as nx

from repro.graph.data_graph import DataGraph
from repro.graph.transfer_graph import AuthorityTransferDataGraph

_LABEL_KEY = "label"
_ROLE_KEY = "role"


def to_networkx(graph: DataGraph) -> nx.MultiDiGraph:
    """A MultiDiGraph mirror of a data graph (parallel edges preserved)."""
    mirror = nx.MultiDiGraph()
    for node in graph.nodes():
        mirror.add_node(node.node_id, label=node.label, **node.attributes)
    for edge in graph.edges():
        mirror.add_edge(edge.source, edge.target, role=edge.role)
    return mirror


def from_networkx(mirror: nx.DiGraph | nx.MultiDiGraph) -> DataGraph:
    """Rebuild a data graph from a (Multi)DiGraph produced by
    :func:`to_networkx` or hand-built with the same conventions.

    Each node needs a ``label`` attribute; remaining attributes become the
    node's attribute map.  Edge ``role`` attributes are optional.
    """
    graph = DataGraph()
    for node_id, attributes in mirror.nodes(data=True):
        payload = dict(attributes)
        label = payload.pop(_LABEL_KEY, None)
        if label is None:
            raise ValueError(f"node {node_id!r} has no 'label' attribute")
        graph.add_node(str(node_id), str(label), {k: str(v) for k, v in payload.items()})
    if mirror.is_multigraph():
        edge_iter = ((u, v, data) for u, v, _key, data in mirror.edges(keys=True, data=True))
    else:
        edge_iter = mirror.edges(data=True)
    for source, target, data in edge_iter:
        graph.add_edge(str(source), str(target), data.get(_ROLE_KEY))
    return graph


def transfer_graph_to_networkx(graph: AuthorityTransferDataGraph) -> nx.MultiDiGraph:
    """The authority transfer data graph with ``rate`` and ``role`` per edge."""
    mirror = nx.MultiDiGraph()
    for node_id in graph.node_ids:
        node = graph.data_graph.node(node_id)
        mirror.add_node(node_id, label=node.label)
    for edge_id in range(graph.num_edges):
        edge_type = graph.edge_type_of(edge_id)
        mirror.add_edge(
            graph.node_id_of(int(graph.edge_source[edge_id])),
            graph.node_id_of(int(graph.edge_target[edge_id])),
            rate=float(graph.edge_rate[edge_id]),
            role=edge_type.role,
            direction=edge_type.direction.value,
        )
    return mirror
