"""Authority transfer schema graphs (Section 2, Figure 3).

For each schema edge ``e_G = (u -> v)`` the authority transfer schema graph
``G^A`` has two *authority transfer edges*: a forward edge ``e_G^f = (u -> v)``
and a backward edge ``e_G^b = (v -> u)``, each annotated with an authority
transfer rate ``alpha``.  The backward edge exists because authority
potentially flows in both directions (a paper passes authority to its authors
and vice versa), generally at different rates (citing an important paper does
not make a paper important, hence the DBLP "cited" rate of 0.0).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import RateError
from repro.graph.schema import SchemaEdge, SchemaGraph


class Direction(enum.Enum):
    """Direction of an authority transfer edge relative to its schema edge."""

    FORWARD = "forward"
    BACKWARD = "backward"

    def flipped(self) -> "Direction":
        return Direction.BACKWARD if self is Direction.FORWARD else Direction.FORWARD


@dataclass(frozen=True, order=True)
class EdgeType:
    """One authority transfer edge type: a schema edge plus a direction."""

    schema_edge: SchemaEdge
    direction: Direction = Direction.FORWARD

    @property
    def source(self) -> str:
        """Label that this edge type leaves from in the *transfer* graph."""
        if self.direction is Direction.FORWARD:
            return self.schema_edge.source
        return self.schema_edge.target

    @property
    def target(self) -> str:
        if self.direction is Direction.FORWARD:
            return self.schema_edge.target
        return self.schema_edge.source

    @property
    def role(self) -> str:
        return self.schema_edge.role

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arrow = "->" if self.direction is Direction.FORWARD else "<-"
        return f"{self.schema_edge.source}-[{self.role}]{arrow}{self.schema_edge.target}"


# Direction ordering for the canonical edge-type vector: forward before
# backward for each schema edge, schema edges in insertion order.
_DIRECTIONS = (Direction.FORWARD, Direction.BACKWARD)


class AuthorityTransferSchemaGraph:
    """A schema graph whose edges carry per-direction authority transfer rates.

    The rates are the quantities a domain expert had to set manually in
    ObjectRank [BHP04] and which Section 5.2 of the paper learns from user
    feedback.  :meth:`as_vector` / :meth:`with_vector` expose them in a fixed
    canonical order so that training curves (Figure 11) can compare a learned
    vector against a ground-truth vector with cosine similarity.
    """

    def __init__(
        self,
        schema: SchemaGraph,
        rates: dict[EdgeType, float] | None = None,
        default_rate: float = 0.0,
        epsilon: float = 0.0,
    ) -> None:
        """Create an authority transfer schema graph over ``schema``.

        ``rates`` assigns transfer rates to edge types; unspecified types get
        ``default_rate``.  ``epsilon`` is a floor applied to every rate: the
        paper assumes all edges are bidirectional with "arbitrarily small flow
        rates assigned to the direction of small importance" to guarantee the
        convergence of the explaining fixpoint (Theorem 1).
        """
        self._schema = schema
        self._rates: dict[EdgeType, float] = {}
        self.epsilon = float(epsilon)
        for schema_edge in schema.edges:
            for direction in _DIRECTIONS:
                edge_type = EdgeType(schema_edge, direction)
                rate = default_rate
                if rates is not None and edge_type in rates:
                    rate = rates[edge_type]
                self._set(edge_type, rate)
        if rates is not None:
            unknown = set(rates) - set(self._rates)
            if unknown:
                raise RateError(f"rates given for unknown edge types: {sorted(map(str, unknown))}")

    # -- basic access --------------------------------------------------------

    @property
    def schema(self) -> SchemaGraph:
        return self._schema

    def edge_types(self) -> list[EdgeType]:
        """All edge types in canonical (deterministic) order."""
        return list(self._rates)

    def rate(self, edge_type: EdgeType) -> float:
        if edge_type not in self._rates:
            raise RateError(f"unknown edge type: {edge_type}")
        return self._rates[edge_type]

    def set_rate(self, edge_type: EdgeType, rate: float) -> None:
        if edge_type not in self._rates:
            raise RateError(f"unknown edge type: {edge_type}")
        self._set(edge_type, rate)

    def _set(self, edge_type: EdgeType, rate: float) -> None:
        if rate < 0 or not math.isfinite(rate):
            raise RateError(f"invalid rate {rate!r} for edge type {edge_type}")
        self._rates[edge_type] = max(float(rate), self.epsilon)

    # -- vector view (for training / cosine similarity) -----------------------

    def as_vector(self, order: list[EdgeType] | None = None) -> list[float]:
        """Rates as a flat vector, in ``order`` (default: canonical order)."""
        keys = order if order is not None else self.edge_types()
        return [self.rate(k) for k in keys]

    def with_vector(
        self, vector: list[float], order: list[EdgeType] | None = None
    ) -> "AuthorityTransferSchemaGraph":
        """A copy of this graph with rates replaced by ``vector``."""
        keys = order if order is not None else self.edge_types()
        if len(vector) != len(keys):
            raise RateError(f"rate vector has length {len(vector)}, expected {len(keys)}")
        copy = self.copy()
        for edge_type, rate in zip(keys, vector):
            copy.set_rate(edge_type, rate)
        return copy

    def copy(self) -> "AuthorityTransferSchemaGraph":
        clone = AuthorityTransferSchemaGraph(self._schema, epsilon=self.epsilon)
        clone._rates = dict(self._rates)
        return clone

    # -- structural helpers ----------------------------------------------------

    def outgoing_types(self, label: str) -> list[EdgeType]:
        """Edge types whose transfer edges leave nodes labeled ``label``."""
        return [t for t in self._rates if t.source == label]

    def outgoing_rate_sum(self, label: str) -> float:
        """Sum of transfer rates leaving ``label`` in the schema.

        Convergence of ObjectRank2 requires this to be at most 1 for every
        label (step 4 of the Section 5.2 normalization enforces it after a
        structure-based reformulation).
        """
        return sum(self.rate(t) for t in self.outgoing_types(label))

    def is_convergent(self, tolerance: float = 1e-9) -> bool:
        """Whether every label's outgoing rate sum is at most 1."""
        return all(
            self.outgoing_rate_sum(label) <= 1.0 + tolerance for label in self._schema.labels
        )

    def scaled_to_convergent(self) -> "AuthorityTransferSchemaGraph":
        """A copy where labels with outgoing sum > 1 are scaled down to sum 1."""
        copy = self.copy()
        for label in self._schema.labels:
            total = copy.outgoing_rate_sum(label)
            if total > 1.0:
                for edge_type in copy.outgoing_types(label):
                    copy.set_rate(edge_type, copy.rate(edge_type) / total)
        return copy

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AuthorityTransferSchemaGraph):
            return NotImplemented
        return self._rates == other._rates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AuthorityTransferSchemaGraph(edge_types={len(self._rates)})"
