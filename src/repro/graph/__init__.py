"""Typed labeled graphs: data graphs, schema graphs and authority transfer
graphs (Section 2 of the paper)."""

from repro.graph.authority import AuthorityTransferSchemaGraph, Direction, EdgeType
from repro.graph.conformance import check_conformance, conforms, find_violations
from repro.graph.data_graph import DataEdge, DataGraph, DataNode
from repro.graph.nx_interop import from_networkx, to_networkx, transfer_graph_to_networkx
from repro.graph.schema import SchemaEdge, SchemaGraph
from repro.graph.serialization import load_dataset, save_dataset
from repro.graph.transfer_graph import AuthorityTransferDataGraph

__all__ = [
    "AuthorityTransferDataGraph",
    "AuthorityTransferSchemaGraph",
    "DataEdge",
    "DataGraph",
    "DataNode",
    "Direction",
    "EdgeType",
    "SchemaEdge",
    "SchemaGraph",
    "check_conformance",
    "conforms",
    "find_violations",
    "from_networkx",
    "load_dataset",
    "save_dataset",
    "to_networkx",
    "transfer_graph_to_networkx",
]
