"""Schema graphs (Section 2 of the paper).

A schema graph ``G(V_G, E_G)`` is a directed graph describing the structure of
a data graph: nodes are type labels (e.g. ``"Paper"``), and each edge carries a
role (e.g. ``"cites"``).  Figure 2 of the paper shows the DBLP schema graph and
Figure 4 a biological one; both are provided ready-made by
:mod:`repro.datasets`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import UnknownLabelError


@dataclass(frozen=True, order=True)
class SchemaEdge:
    """One directed edge of the schema graph.

    ``role`` disambiguates parallel edges between the same pair of labels
    (the paper's edge label ``λ(e)``); when the pair is unique the role can be
    a generated default.
    """

    source: str
    target: str
    role: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source}-[{self.role}]->{self.target}"


class SchemaGraph:
    """A directed, role-labeled schema graph.

    Nodes are type labels; edges are :class:`SchemaEdge` instances.  Insertion
    order is preserved so that iteration (and therefore every downstream
    canonical ordering, e.g. the authority-rate vector of Figure 11) is
    deterministic.
    """

    def __init__(self) -> None:
        self._labels: dict[str, None] = {}
        self._edges: dict[SchemaEdge, None] = {}
        self._out: dict[str, list[SchemaEdge]] = {}
        self._in: dict[str, list[SchemaEdge]] = {}

    # -- construction ------------------------------------------------------

    def add_label(self, label: str) -> None:
        """Register a node type; adding the same label twice is a no-op."""
        if label not in self._labels:
            self._labels[label] = None
            self._out[label] = []
            self._in[label] = []

    def add_edge(self, source: str, target: str, role: str | None = None) -> SchemaEdge:
        """Add a directed schema edge; both endpoints must exist.

        When ``role`` is omitted a default of ``"<source>_<target>"`` is used,
        which is unambiguous as long as there is a single edge between the two
        labels.
        """
        for label in (source, target):
            if label not in self._labels:
                raise UnknownLabelError(label)
        edge = SchemaEdge(source, target, role if role is not None else f"{source}_{target}")
        if edge not in self._edges:
            self._edges[edge] = None
            self._out[source].append(edge)
            self._in[target].append(edge)
        return edge

    # -- inspection --------------------------------------------------------

    @property
    def labels(self) -> list[str]:
        return list(self._labels)

    @property
    def edges(self) -> list[SchemaEdge]:
        return list(self._edges)

    def has_label(self, label: str) -> bool:
        return label in self._labels

    def has_edge(self, edge: SchemaEdge) -> bool:
        return edge in self._edges

    def out_edges(self, label: str) -> list[SchemaEdge]:
        if label not in self._labels:
            raise UnknownLabelError(label)
        return list(self._out[label])

    def in_edges(self, label: str) -> list[SchemaEdge]:
        if label not in self._labels:
            raise UnknownLabelError(label)
        return list(self._in[label])

    def edges_between(self, source: str, target: str) -> list[SchemaEdge]:
        """All schema edges from ``source`` to ``target`` (any role)."""
        if source not in self._labels:
            raise UnknownLabelError(source)
        return [e for e in self._out[source] if e.target == target]

    def resolve_edge(self, source: str, target: str, role: str | None) -> SchemaEdge | None:
        """Find the schema edge matching a data-graph edge.

        If ``role`` is given it must match exactly; otherwise the edge between
        the two labels must be unique (the paper omits edge labels "when the
        role is evident").  Returns ``None`` when no (or no unambiguous) match
        exists.
        """
        candidates = self.edges_between(source, target) if source in self._labels else []
        if role is not None:
            for edge in candidates:
                if edge.role == role:
                    return edge
            return None
        if len(candidates) == 1:
            return candidates[0]
        return None

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SchemaGraph(labels={len(self._labels)}, edges={len(self._edges)})"
