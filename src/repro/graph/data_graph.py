"""Labeled data graphs (Section 2).

A data graph ``D(V_D, E_D)`` is a labeled directed graph.  Every node has a
label (its role/type, e.g. ``"Paper"``), an id, and a tuple of attribute
name/value pairs; the keywords appearing in the attribute values comprise the
set of keywords associated with the node.  Edges are labeled with a role
(e.g. ``"cites"``), which may be omitted when it is evident from the endpoint
labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DuplicateNodeError, GraphError, UnknownNodeError


@dataclass(frozen=True)
class DataNode:
    """One object of the database.

    ``attributes`` maps attribute names to string values; the node's keyword
    set is derived from the attribute values (and optionally the attribute
    names themselves — the paper's "richer semantics by including the
    metadata").
    """

    node_id: str
    label: str
    attributes: dict[str, str] = field(default_factory=dict)

    def text(self, include_metadata: bool = False) -> str:
        """The node viewed as a document: its attribute values joined.

        With ``include_metadata`` the attribute *names* are included too
        (e.g. "Forum", "Year", "Location" become searchable keywords).
        """
        parts: list[str] = []
        for name, value in self.attributes.items():
            if include_metadata:
                parts.append(name)
            parts.append(value)
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}({self.node_id})"


@dataclass(frozen=True, order=True)
class DataEdge:
    """One directed edge of the data graph, optionally role-labeled."""

    source: str
    target: str
    role: str | None = None


class DataGraph:
    """A labeled directed graph of database objects.

    Node and edge iteration order is insertion order, so everything derived
    from a graph (dense node indices, rankings with ties, ...) is
    deterministic for a fixed construction sequence.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, DataNode] = {}
        self._edges: list[DataEdge] = []
        self._out: dict[str, list[DataEdge]] = {}
        self._in: dict[str, list[DataEdge]] = {}
        self._version = 0

    # -- construction ------------------------------------------------------

    def add_node(
        self, node_id: str, label: str, attributes: dict[str, str] | None = None
    ) -> DataNode:
        if node_id in self._nodes:
            raise DuplicateNodeError(node_id)
        node = DataNode(node_id, label, dict(attributes or {}))
        self._nodes[node_id] = node
        self._out[node_id] = []
        self._in[node_id] = []
        self._version += 1
        return node

    def add_edge(self, source: str, target: str, role: str | None = None) -> DataEdge:
        for node_id in (source, target):
            if node_id not in self._nodes:
                raise UnknownNodeError(node_id)
        edge = DataEdge(source, target, role)
        self._edges.append(edge)
        self._out[source].append(edge)
        self._in[target].append(edge)
        self._version += 1
        return edge

    # -- mutation ----------------------------------------------------------

    def update_attributes(self, node_id: str, attributes: dict[str, str]) -> DataNode:
        """Replace one node's attributes (label and edges untouched).

        The content-only mutation: the node set and edge set are unchanged,
        so everything derived from topology (dense indices, transfer
        matrices) stays valid — only the node's document text changes.
        """
        old = self._nodes.get(node_id)
        if old is None:
            raise UnknownNodeError(node_id)
        node = DataNode(node_id, old.label, dict(attributes))
        self._nodes[node_id] = node
        self._version += 1
        return node

    def remove_node(self, node_id: str) -> DataNode:
        """Remove a node and every edge incident to it."""
        node = self._nodes.pop(node_id, None)
        if node is None:
            raise UnknownNodeError(node_id)
        del self._out[node_id]
        del self._in[node_id]
        self._edges = [
            e for e in self._edges if e.source != node_id and e.target != node_id
        ]
        for edges in self._out.values():
            edges[:] = [e for e in edges if e.target != node_id]
        for edges in self._in.values():
            edges[:] = [e for e in edges if e.source != node_id]
        self._version += 1
        return node

    def remove_edge(
        self, source: str, target: str, role: str | None = None
    ) -> DataEdge:
        """Remove the first ``source -> target`` edge (any role when ``role``
        is ``None``; parallel duplicates are removed one at a time)."""
        for node_id in (source, target):
            if node_id not in self._nodes:
                raise UnknownNodeError(node_id)
        for position, edge in enumerate(self._edges):
            if (
                edge.source == source
                and edge.target == target
                and (role is None or edge.role == role)
            ):
                del self._edges[position]
                self._out[source].remove(edge)
                self._in[target].remove(edge)
                self._version += 1
                return edge
        wanted = f" [{role}]" if role is not None else ""
        raise GraphError(f"no edge {source!r} -> {target!r}{wanted} to remove")

    def copy(self) -> "DataGraph":
        """An independent copy (nodes are immutable and shared by reference)."""
        clone = DataGraph()
        clone._nodes = dict(self._nodes)
        clone._edges = list(self._edges)
        clone._out = {nid: list(edges) for nid, edges in self._out.items()}
        clone._in = {nid: list(edges) for nid, edges in self._in.items()}
        clone._version = self._version
        return clone

    @property
    def version(self) -> int:
        """A counter bumped by every successful mutation.

        Consumers that snapshot derived structures (precomputed score
        matrices, serve caches) record this and compare later: an unequal
        version means the graph they derived from no longer exists.
        """
        return self._version

    # -- inspection --------------------------------------------------------

    def node(self, node_id: str) -> DataNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self) -> Iterator[DataNode]:
        return iter(self._nodes.values())

    def node_ids(self) -> list[str]:
        return list(self._nodes)

    def edges(self) -> list[DataEdge]:
        return list(self._edges)

    def out_edges(self, node_id: str) -> list[DataEdge]:
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return list(self._out[node_id])

    def in_edges(self, node_id: str) -> list[DataEdge]:
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return list(self._in[node_id])

    def out_degree(self, node_id: str) -> int:
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return len(self._out[node_id])

    def in_degree(self, node_id: str) -> int:
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return len(self._in[node_id])

    def nodes_with_label(self, label: str) -> list[DataNode]:
        return [n for n in self._nodes.values() if n.label == label]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def label_counts(self) -> dict[str, int]:
        """Number of nodes per label (for Table-1-style statistics)."""
        counts: dict[str, int] = {}
        for node in self._nodes.values():
            counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataGraph(nodes={self.num_nodes}, edges={self.num_edges})"
