"""A miniature in-memory relational store.

The paper's authors "shredded the downloaded DBLP file into the relational
schema of Figure 2" before building the data graph.  This module provides the
substrate for that step: typed tables with primary and foreign keys, enough
referential integrity to catch generator bugs, and nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import StorageError


@dataclass(frozen=True)
class ForeignKey:
    """A column referencing another table's primary key."""

    column: str
    references: str  # table name


@dataclass(frozen=True)
class TableSchema:
    """Schema of one table: column names, primary key, foreign keys."""

    name: str
    columns: tuple[str, ...]
    primary_key: str = "id"
    foreign_keys: tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        if self.primary_key not in self.columns:
            raise StorageError(
                f"table {self.name!r}: primary key {self.primary_key!r} not a column"
            )
        for fk in self.foreign_keys:
            if fk.column not in self.columns:
                raise StorageError(
                    f"table {self.name!r}: foreign key column {fk.column!r} not a column"
                )


class Table:
    """Rows of one table, keyed by primary key, in insertion order."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[Any, dict[str, Any]] = {}

    def insert(self, row: dict[str, Any]) -> Any:
        unknown = set(row) - set(self.schema.columns)
        if unknown:
            raise StorageError(f"table {self.schema.name!r}: unknown columns {sorted(unknown)}")
        if self.schema.primary_key not in row:
            raise StorageError(
                f"table {self.schema.name!r}: missing primary key {self.schema.primary_key!r}"
            )
        key = row[self.schema.primary_key]
        if key in self._rows:
            raise StorageError(f"table {self.schema.name!r}: duplicate key {key!r}")
        self._rows[key] = dict(row)
        return key

    def get(self, key: Any) -> dict[str, Any]:
        try:
            return dict(self._rows[key])
        except KeyError:
            raise StorageError(f"table {self.schema.name!r}: no row with key {key!r}") from None

    def has(self, key: Any) -> bool:
        return key in self._rows

    def rows(self) -> Iterator[dict[str, Any]]:
        for row in self._rows.values():
            yield dict(row)

    def __len__(self) -> int:
        return len(self._rows)


@dataclass
class Database:
    """A set of tables with foreign-key checking on insert."""

    tables: dict[str, Table] = field(default_factory=dict)

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise StorageError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.references not in self.tables and fk.references != schema.name:
                raise StorageError(
                    f"table {schema.name!r}: foreign key references unknown table "
                    f"{fk.references!r}"
                )
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise StorageError(f"no table named {name!r}") from None

    def insert(self, table_name: str, row: dict[str, Any]) -> Any:
        table = self.table(table_name)
        for fk in table.schema.foreign_keys:
            value = row.get(fk.column)
            if value is not None and not self.table(fk.references).has(value):
                raise StorageError(
                    f"table {table_name!r}: foreign key {fk.column!r}={value!r} has no "
                    f"matching row in {fk.references!r}"
                )
        return table.insert(row)

    def __contains__(self, name: str) -> bool:
        return name in self.tables
