"""Mini relational store and graph shredding (the paper's dataset pipeline)."""

from repro.storage.relational import Database, ForeignKey, Table, TableSchema
from repro.storage.xml_shred import XmlShredResult, shred_xml, xml_transfer_schema
from repro.storage.shred import (
    EdgeFromForeignKey,
    EdgeTable,
    NodeTable,
    ShredSpec,
    node_id,
    shred_to_graph,
)

__all__ = [
    "Database",
    "EdgeFromForeignKey",
    "EdgeTable",
    "ForeignKey",
    "NodeTable",
    "ShredSpec",
    "Table",
    "TableSchema",
    "XmlShredResult",
    "node_id",
    "shred_to_graph",
    "shred_xml",
    "xml_transfer_schema",
]
