"""Mini relational store, graph shredding, and mmap-able slab files."""

from repro.storage.relational import Database, ForeignKey, Table, TableSchema
from repro.storage.slab import SlabFile, SlabFormatError, write_slab
from repro.storage.xml_shred import XmlShredResult, shred_xml, xml_transfer_schema
from repro.storage.shred import (
    EdgeFromForeignKey,
    EdgeTable,
    NodeTable,
    ShredSpec,
    node_id,
    shred_to_graph,
)

__all__ = [
    "Database",
    "EdgeFromForeignKey",
    "EdgeTable",
    "ForeignKey",
    "NodeTable",
    "ShredSpec",
    "SlabFile",
    "SlabFormatError",
    "Table",
    "TableSchema",
    "XmlShredResult",
    "node_id",
    "shred_to_graph",
    "shred_xml",
    "write_slab",
    "xml_transfer_schema",
]
