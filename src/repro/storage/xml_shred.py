"""Shredding XML documents into data graphs.

Section 2 claims the framework's labeled-graph model "captures both
relational and XML databases" (citing XRANK [GSB+03] and keyword proximity
on XML graphs [HPB03]).  This module makes the XML half concrete:

* every element becomes a node labeled with its (capitalized) tag;
* element attributes and text content become node attributes (hence
  keywords);
* parent-child nesting becomes ``contains`` edges — XRANK's containment
  edges;
* ``idref``/``idrefs`` attributes resolving to ``id`` attributes become
  ``references`` edges — XRANK's IDREF edges, which it weights differently
  from containment exactly as ObjectRank's edge types do;
* the schema graph (tag-level structure) is *derived* from the document, and
  a default authority transfer schema is built with separate containment and
  reference rates, normalized so every label's outgoing sum stays below 1.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass

from repro.errors import StorageError
from repro.graph.authority import AuthorityTransferSchemaGraph, Direction, EdgeType
from repro.graph.data_graph import DataGraph
from repro.graph.schema import SchemaGraph

CONTAINS = "contains"
REFERENCES = "references"

_ID_ATTRIBUTE = "id"
_IDREF_ATTRIBUTES = ("idref", "idrefs")


@dataclass
class XmlShredResult:
    """Everything produced from one document."""

    data_graph: DataGraph
    schema: SchemaGraph
    root_id: str


def _label(tag: str) -> str:
    return tag[:1].upper() + tag[1:]


def shred_xml(source: str) -> XmlShredResult:
    """Shred an XML string into a data graph plus its derived schema.

    Node ids are ``<tag>:<n>`` in document order.  Malformed XML raises
    :class:`~repro.errors.StorageError`; dangling IDREFs raise too (they
    would silently drop authority paths otherwise).
    """
    try:
        root = ElementTree.fromstring(source)
    except ElementTree.ParseError as error:
        raise StorageError(f"malformed XML: {error}") from error

    graph = DataGraph()
    schema = SchemaGraph()
    counters: dict[str, int] = {}
    by_xml_id: dict[str, str] = {}
    pending_references: list[tuple[str, str]] = []  # (source node, xml id)

    def visit(element: ElementTree.Element, parent_node: str | None) -> str:
        tag = element.tag
        label = _label(tag)
        schema.add_label(label)
        index = counters.get(tag, 0)
        counters[tag] = index + 1
        node_id = f"{tag}:{index}"

        attributes = {}
        for name, value in element.attrib.items():
            if name == _ID_ATTRIBUTE:
                by_xml_id[value] = node_id
                continue
            if name in _IDREF_ATTRIBUTES:
                for reference in value.split():
                    pending_references.append((node_id, reference))
                continue
            attributes[name] = value
        text = (element.text or "").strip()
        if text:
            attributes["text"] = text
        graph.add_node(node_id, label, attributes)

        if parent_node is not None:
            parent_label = graph.node(parent_node).label
            schema.add_edge(parent_label, label, CONTAINS)
            graph.add_edge(parent_node, node_id, CONTAINS)
        for child in element:
            visit(child, node_id)
        return node_id

    root_id = visit(root, None)

    for source_node, xml_id in pending_references:
        target_node = by_xml_id.get(xml_id)
        if target_node is None:
            raise StorageError(f"dangling IDREF {xml_id!r} from {source_node!r}")
        source_label = graph.node(source_node).label
        target_label = graph.node(target_node).label
        schema.add_edge(source_label, target_label, REFERENCES)
        graph.add_edge(source_node, target_node, REFERENCES)

    return XmlShredResult(graph, schema, root_id)


def xml_transfer_schema(
    schema: SchemaGraph,
    containment_rate: float = 0.3,
    reference_rate: float = 0.5,
    backward_fraction: float = 0.5,
) -> AuthorityTransferSchemaGraph:
    """Default authority transfer rates for a shredded-XML schema.

    Follows XRANK's distinction: reference (IDREF) edges carry more authority
    than containment edges — pointing at an element is an endorsement,
    containing it is mere structure.  Backward edges get
    ``backward_fraction`` of the forward rate.  All rates are then scaled
    down uniformly so every label's outgoing sum stays below 1 (the
    convergence requirement).
    """
    if not 0.0 <= backward_fraction <= 1.0:
        raise StorageError("backward_fraction must be in [0, 1]")
    transfer = AuthorityTransferSchemaGraph(schema)
    for schema_edge in schema.edges:
        forward = reference_rate if schema_edge.role == REFERENCES else containment_rate
        transfer.set_rate(EdgeType(schema_edge, Direction.FORWARD), forward)
        transfer.set_rate(
            EdgeType(schema_edge, Direction.BACKWARD), forward * backward_fraction
        )
    worst = max(
        (transfer.outgoing_rate_sum(label) for label in schema.labels),
        default=0.0,
    )
    if worst >= 1.0:
        scale = 0.95 / worst
        for edge_type in transfer.edge_types():
            transfer.set_rate(edge_type, transfer.rate(edge_type) * scale)
    return transfer
