"""Shredding a relational database into a data graph (Section 6, Datasets).

A :class:`ShredSpec` declares which tables become node types and which
tables/foreign keys become edges; :func:`shred_to_graph` then materializes the
labeled data graph the ObjectRank2 machinery consumes.

Edge direction matters for authority flow: a foreign key points from the
child row to the referenced row, but the schema-graph edge may run the other
way (DBLP's ``Year -> Paper`` "contains" edge comes from ``paper.year_id``).
``EdgeFromForeignKey.reverse`` flips the produced edge accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import StorageError
from repro.graph.data_graph import DataGraph
from repro.storage.relational import Database


def node_id(table: str, key: Any) -> str:
    """The canonical graph node id of a table row."""
    return f"{table}:{key}"


@dataclass(frozen=True)
class NodeTable:
    """One table whose rows become graph nodes.

    ``attributes`` lists the columns copied into the node's attribute map
    (all stringified); the primary key and foreign keys are structural and
    excluded by default.
    """

    table: str
    label: str
    attributes: tuple[str, ...]


@dataclass(frozen=True)
class EdgeFromForeignKey:
    """A foreign-key column of a node table that becomes an edge."""

    table: str
    column: str
    role: str
    reverse: bool = False  # True: edge runs referenced-row -> child-row


@dataclass(frozen=True)
class EdgeTable:
    """A pure link (m:n) table whose rows become edges."""

    table: str
    source_column: str
    target_column: str
    source_table: str
    target_table: str
    role: str


@dataclass(frozen=True)
class ShredSpec:
    """Complete mapping from a relational database to a data graph."""

    node_tables: tuple[NodeTable, ...]
    fk_edges: tuple[EdgeFromForeignKey, ...] = ()
    edge_tables: tuple[EdgeTable, ...] = ()


def shred_to_graph(database: Database, spec: ShredSpec) -> DataGraph:
    """Materialize the data graph described by ``spec``."""
    graph = DataGraph()
    referenced_table: dict[tuple[str, str], str] = {}

    for node_table in spec.node_tables:
        table = database.table(node_table.table)
        for fk in table.schema.foreign_keys:
            referenced_table[(node_table.table, fk.column)] = fk.references
        for row in table.rows():
            key = row[table.schema.primary_key]
            attributes = {
                column: str(row[column])
                for column in node_table.attributes
                if row.get(column) is not None
            }
            graph.add_node(node_id(node_table.table, key), node_table.label, attributes)

    for fk_edge in spec.fk_edges:
        table = database.table(fk_edge.table)
        target_table = referenced_table.get((fk_edge.table, fk_edge.column))
        if target_table is None:
            raise StorageError(
                f"{fk_edge.table}.{fk_edge.column} is not a declared foreign key"
            )
        for row in table.rows():
            value = row.get(fk_edge.column)
            if value is None:
                continue
            child = node_id(fk_edge.table, row[table.schema.primary_key])
            parent = node_id(target_table, value)
            if fk_edge.reverse:
                graph.add_edge(parent, child, fk_edge.role)
            else:
                graph.add_edge(child, parent, fk_edge.role)

    for edge_table in spec.edge_tables:
        table = database.table(edge_table.table)
        for row in table.rows():
            source = node_id(edge_table.source_table, row[edge_table.source_column])
            target = node_id(edge_table.target_table, row[edge_table.target_column])
            graph.add_edge(source, target, edge_table.role)

    return graph

