"""Versioned, checksummed, mmap-able slab files of named numpy arrays.

The serving tier's score store needs an on-disk format that N worker
processes can open *read-only* and slice *zero-copy*: the precomputed
keyword→score matrix is a read-mostly asset, and copying it per process (or
per request) would defeat the prefork architecture.  This module is the
container layer of that format, deliberately payload-agnostic — it stores
named C-contiguous arrays plus one JSON metadata object, and leaves the
meaning of the sections to :mod:`repro.store`.

On-disk layout (all integers little-endian)::

    [ 0: 8]  magic        b"REPROSLB"
    [ 8:12]  uint32       format version (1)
    [12:16]  uint32       length of the header JSON in bytes
    [16:20]  uint32       CRC32 of the header JSON
    [20:24]  uint32       zero (reserved)
    [24:  ]  header JSON  {"sections": [...], "meta": {...}}
    ...      sections, each aligned to SECTION_ALIGNMENT bytes

Every section records its ``offset``, ``nbytes``, ``dtype``, ``shape`` and
``crc32`` in the header, so a reader can (a) reject truncated or corrupted
files before handing out views and (b) build ``np.frombuffer`` views straight
into the mmap with no copies.  Sections are 64-byte aligned — the same
cache-line alignment the native kernel's slab builders use — so vector loads
on the mapped score rows never straddle lines.

Writes go through a same-directory temp file and ``os.replace`` with fsyncs,
so a crashed builder can never leave a half-written file under the final
name; the generation-swap protocol in :mod:`repro.store.generations` builds
on this guarantee.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import tempfile
import zlib

import numpy as np

from repro.errors import ReproError

MAGIC = b"REPROSLB"
FORMAT_VERSION = 1
SECTION_ALIGNMENT = 64
_FIXED_HEADER = struct.Struct("<8sIIII")


class SlabFormatError(ReproError):
    """The file is not a readable slab (wrong magic, corrupt, truncated...)."""


def _align(offset: int) -> int:
    return (offset + SECTION_ALIGNMENT - 1) & ~(SECTION_ALIGNMENT - 1)


def write_slab(path: str | os.PathLike, arrays: dict[str, np.ndarray],
               meta: dict | None = None, fsync: bool = True) -> int:
    """Write ``arrays`` + ``meta`` as one slab file; returns the byte size.

    Arrays are stored C-contiguous (converted if needed).  The write is
    crash-safe: the data goes to a temp file in the target directory, is
    fsynced, and only then renamed over ``path`` (followed by a directory
    fsync), so readers either see the complete file or the previous one.
    """
    prepared: list[tuple[str, np.ndarray]] = []
    for name, array in arrays.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"section names must be non-empty strings, got {name!r}")
        prepared.append((name, np.ascontiguousarray(array)))

    sections = []
    # Header length depends on the JSON, whose offsets depend on the header
    # length; fixed-point in two passes (offsets only grow the JSON by a
    # bounded number of digits, so pass two always fits or re-runs).
    payload_base = 0
    for _pass in range(4):
        sections = []
        offset = payload_base
        for name, array in prepared:
            offset = _align(offset)
            sections.append({
                "name": name,
                "offset": offset,
                "nbytes": int(array.nbytes),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "crc32": zlib.crc32(array.tobytes()) & 0xFFFFFFFF,
            })
            offset += array.nbytes
        header = json.dumps(
            {"sections": sections, "meta": meta or {}}, sort_keys=True
        ).encode("utf-8")
        wanted_base = _align(_FIXED_HEADER.size + len(header))
        if wanted_base == payload_base:
            break
        payload_base = wanted_base
    total = offset if prepared else payload_base

    directory = os.path.dirname(os.fspath(path)) or "."
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".slab-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(_FIXED_HEADER.pack(
                MAGIC, FORMAT_VERSION, len(header),
                zlib.crc32(header) & 0xFFFFFFFF, 0,
            ))
            handle.write(header)
            for section, (_name, array) in zip(sections, prepared):
                handle.seek(section["offset"])
                handle.write(array.tobytes())
            handle.truncate(total)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    if fsync:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return total


class SlabFile:
    """A slab opened read-only through one shared mmap.

    :meth:`array` returns zero-copy, *non-writeable* numpy views into the
    mapping — many processes opening the same file share its page-cache
    pages, which is the whole point of the format.  The views keep the
    mapping alive, so a :class:`SlabFile` (or any view taken from it) can
    outlive a generation swap that replaced the file on disk: the mapped
    pages stay valid until the last reference dies, which is what makes the
    swap torn-read-free.
    """

    def __init__(self, path: str | os.PathLike, verify: bool = True) -> None:
        self.path = os.fspath(path)
        try:
            with open(self.path, "rb") as handle:
                self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as error:
            raise SlabFormatError(f"cannot map {self.path!r}: {error}") from None
        size = len(self._mmap)
        if size < _FIXED_HEADER.size:
            raise SlabFormatError(f"{self.path!r}: truncated fixed header")
        magic, version, header_len, header_crc, _reserved = _FIXED_HEADER.unpack(
            self._mmap[: _FIXED_HEADER.size]
        )
        if magic != MAGIC:
            raise SlabFormatError(f"{self.path!r}: bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise SlabFormatError(
                f"{self.path!r}: unsupported format version {version}"
            )
        if _FIXED_HEADER.size + header_len > size:
            raise SlabFormatError(f"{self.path!r}: truncated header JSON")
        raw_header = bytes(
            self._mmap[_FIXED_HEADER.size : _FIXED_HEADER.size + header_len]
        )
        if zlib.crc32(raw_header) & 0xFFFFFFFF != header_crc:
            raise SlabFormatError(f"{self.path!r}: header checksum mismatch")
        try:
            header = json.loads(raw_header)
            self._sections = {s["name"]: s for s in header["sections"]}
            self.meta: dict = header["meta"]
        except (KeyError, TypeError, ValueError) as error:
            raise SlabFormatError(
                f"{self.path!r}: malformed header JSON: {error}"
            ) from None
        for section in self._sections.values():
            end = section["offset"] + section["nbytes"]
            if section["offset"] < 0 or end > size:
                raise SlabFormatError(
                    f"{self.path!r}: section {section['name']!r} "
                    f"[{section['offset']}, {end}) exceeds file size {size}"
                )
        if verify:
            self.verify()

    # -- access -------------------------------------------------------------

    def names(self) -> list[str]:
        return list(self._sections)

    def __contains__(self, name: str) -> bool:
        return name in self._sections

    def array(self, name: str) -> np.ndarray:
        """A zero-copy read-only view of one section."""
        section = self._sections.get(name)
        if section is None:
            raise SlabFormatError(f"{self.path!r}: no section named {name!r}")
        view = np.frombuffer(
            self._mmap,
            dtype=np.dtype(section["dtype"]),
            count=int(np.prod(section["shape"], dtype=np.int64)) if section["shape"] else 1,
            offset=section["offset"],
        ).reshape(section["shape"])
        view.flags.writeable = False
        return view

    def verify(self) -> None:
        """Recompute every section checksum; raises on any mismatch."""
        for section in self._sections.values():
            start, end = section["offset"], section["offset"] + section["nbytes"]
            actual = zlib.crc32(self._mmap[start:end]) & 0xFFFFFFFF
            if actual != section["crc32"]:
                raise SlabFormatError(
                    f"{self.path!r}: checksum mismatch in section "
                    f"{section['name']!r} (stored {section['crc32']:#010x}, "
                    f"actual {actual:#010x})"
                )

    def close(self) -> None:
        """Best-effort unmap; a no-op while exported views are alive."""
        try:
            self._mmap.close()
        except BufferError:
            pass  # views still reference the buffer; GC unmaps later

    def __enter__(self) -> "SlabFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
