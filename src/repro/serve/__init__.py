"""Concurrent query serving: cache, admission control, metrics, HTTP API.

The serving layer the ROADMAP's north star asks for: a stdlib-only HTTP
query service over the existing :class:`~repro.query.engine.SearchEngine`,
:class:`~repro.ranking.precompute.PrecomputedRanker` and the
explain/reformulate modules.  Start one with::

    from repro.serve import QueryService, ServeConfig, create_server

    service = QueryService(ServeConfig(datasets=("dblp_tiny",)))
    server = create_server(service, "127.0.0.1", 8080)
    server.serve_forever()

or from the command line: ``repro serve dblp_tiny --port 8080``.  The
prefork tier (``repro serve --workers N --store DIR``) lives in
:mod:`repro.serve.cluster`: worker processes share one listener and mmap the
same :mod:`repro.store` generation, swapped atomically on rebuilds.
"""

from repro.serve.cache import CacheStats, ResultCache, make_key
from repro.serve.cluster import (
    ClusterConfig,
    ClusterSupervisor,
    WorkerStatus,
    run_cluster,
)
from repro.serve.http_server import (
    QueryHTTPServer,
    create_server,
    serve_forever,
    serve_until_shutdown,
)
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.service import (
    Deadline,
    DeadlineExceededError,
    DatasetRuntime,
    OverloadedError,
    QueryService,
    ServeConfig,
)

__all__ = [
    "CacheStats",
    "ClusterConfig",
    "ClusterSupervisor",
    "Counter",
    "DatasetRuntime",
    "Deadline",
    "DeadlineExceededError",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OverloadedError",
    "QueryHTTPServer",
    "QueryService",
    "ResultCache",
    "ServeConfig",
    "WorkerStatus",
    "create_server",
    "make_key",
    "run_cluster",
    "serve_forever",
    "serve_until_shutdown",
]
