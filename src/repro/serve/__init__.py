"""Concurrent query serving: cache, admission control, metrics, HTTP API.

The serving layer the ROADMAP's north star asks for: a stdlib-only HTTP
query service over the existing :class:`~repro.query.engine.SearchEngine`,
:class:`~repro.ranking.precompute.PrecomputedRanker` and the
explain/reformulate modules.  Start one with::

    from repro.serve import QueryService, ServeConfig, create_server

    service = QueryService(ServeConfig(datasets=("dblp_tiny",)))
    server = create_server(service, "127.0.0.1", 8080)
    server.serve_forever()

or from the command line: ``repro serve dblp_tiny --port 8080``.
"""

from repro.serve.cache import CacheStats, ResultCache, make_key
from repro.serve.http_server import QueryHTTPServer, create_server, serve_forever
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.service import (
    Deadline,
    DeadlineExceededError,
    DatasetRuntime,
    OverloadedError,
    QueryService,
    ServeConfig,
)

__all__ = [
    "CacheStats",
    "Counter",
    "DatasetRuntime",
    "Deadline",
    "DeadlineExceededError",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OverloadedError",
    "QueryHTTPServer",
    "QueryService",
    "ResultCache",
    "ServeConfig",
    "create_server",
    "make_key",
    "serve_forever",
]
