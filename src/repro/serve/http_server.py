"""Threaded JSON HTTP front end for :class:`repro.serve.service.QueryService`.

Stdlib-only (``http.server``), one thread per connection via
``ThreadingHTTPServer``.  Endpoints:

========================  ======  ==============================================
``/search``               GET     ``?dataset=&q=&top_k=&mode=&labels=`` plus
                                  ``candidates=&fusion=&fusion_weight=&
                                  horizon=&early_k=&expand_cap=&
                                  node_budget=&max_horizon=`` under
                                  ``mode=two_stage``
``/search``               POST    ``{"dataset", "query", "top_k", "mode",
                                  "labels", "candidates", "fusion",
                                  "fusion_weight", "horizon", "early_k",
                                  "expand_cap", "node_budget",
                                  "max_horizon"}``
``/explain``              POST    ``{"dataset", "query", "target",
                                  "max_edges", "mode"}``
``/feedback/reformulate`` POST    ``{"dataset", "query", "relevant_ids",
                                  "apply"}``
``/ingest``               POST    ``{"dataset", "mutations": [...],
                                  "refresh"}`` (requires ``--ingest``)
``/healthz``              GET     liveness + cache summary (never throttled)
``/metrics``              GET     Prometheus text format (never throttled)
========================  ======  ==============================================

Admission control: work endpoints must win a non-blocking semaphore permit
(``max_concurrency``) or are refused with **429** and a ``Retry-After``
header; a request whose per-request deadline expires before its expensive
stage starts gets **503**.  Both are counted in ``/metrics``.

Graceful shutdown: the server tracks its in-flight requests, and
:func:`serve_until_shutdown` installs SIGTERM/SIGINT handlers that stop the
accept loop, answer anything newly arriving on kept-alive connections with
**503** + ``Connection: close``, and wait for the in-flight requests to
drain (bounded by ``drain_timeout``) before closing the socket — the
supervisor in :mod:`repro.serve.cluster` relies on this to roll workers
without dropping answers mid-write.

For the prefork tier the server can also adopt a pre-bound, already
listening socket (``listen_socket=``) inherited from a supervisor across
``fork`` — the kernel then load-balances accepts among the worker
processes with no locks in userspace.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError, UnknownNodeError
from repro.serve.service import Deadline, DeadlineExceededError, QueryService

MAX_BODY_BYTES = 1 << 20  # 1 MiB of JSON is plenty for any query


class QueryHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns the service and the admission state."""

    daemon_threads = True
    # The stdlib default listen backlog of 5 drops SYNs under bursty client
    # fan-out; dropped SYNs retransmit after ~1s and crater tail latency.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        quiet: bool = True,
        listen_socket: socket.socket | None = None,
    ) -> None:
        if listen_socket is not None:
            # Adopt a supervisor-bound listener (prefork socket sharing):
            # skip bind/listen and accept from the shared socket.  The
            # listener is non-blocking so a worker that loses an accept
            # race simply returns to its select loop (see
            # ``_handle_request_noblock``'s OSError swallow) instead of
            # blocking in ``accept`` where a drain signal cannot reach it.
            super().__init__(address, QueryRequestHandler, bind_and_activate=False)
            self.socket.close()
            listen_socket.setblocking(False)
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
        else:
            super().__init__(address, QueryRequestHandler)
        self.service = service
        self.quiet = quiet
        self.admission = threading.BoundedSemaphore(service.config.max_concurrency)
        self.deadline_seconds = service.config.deadline_seconds
        self._inflight_lock = threading.Lock()
        #: guarded by self._inflight_lock
        self._inflight = 0
        #: guarded by self._inflight_lock
        self._draining = False
        self._drained = threading.Event()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- graceful shutdown ---------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._inflight_lock:
            return self._draining

    @property
    def inflight(self) -> int:
        """Requests currently executing a handler body."""
        with self._inflight_lock:
            return self._inflight

    def begin_drain(self) -> None:
        """Stop taking new work: subsequent requests get 503 + close.

        Does not stop the accept loop — callers pair this with
        :meth:`shutdown` (see :func:`serve_until_shutdown`), so queued
        connections still get an explicit 503 instead of a hung socket.
        """
        with self._inflight_lock:
            self._draining = True
            if self._inflight == 0:
                self._drained.set()

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every in-flight request finished; ``True`` on success."""
        self.begin_drain()
        return self._drained.wait(timeout)

    def _track_request_start(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def _track_request_end(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._draining and self._inflight == 0:
                self._drained.set()


def create_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    listen_socket: socket.socket | None = None,
) -> QueryHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port) without starting it.

    ``listen_socket`` adopts an already bound+listening socket instead (the
    prefork supervisor passes each worker the shared listener this way).
    """
    return QueryHTTPServer((host, port), service, quiet=quiet, listen_socket=listen_socket)


class QueryRequestHandler(BaseHTTPRequestHandler):
    """Routes requests into the service and speaks JSON both ways."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Headers and body flush as separate small segments; without TCP_NODELAY
    # that combination stalls ~40ms per request on keep-alive connections
    # (Nagle waiting out the peer's delayed ACK).
    disable_nagle_algorithm = True

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> QueryService:
        return self.server.service

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - console logging
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, error: str, message: str, headers: dict | None = None
    ) -> None:
        self._send_json(status, {"error": error, "message": message}, headers)

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _BadRequest("a JSON request body is required")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise _BadRequest(f"invalid JSON body: {error}") from None
        if not isinstance(body, dict):
            raise _BadRequest("JSON body must be an object")
        return body

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(self._route_post)

    def _dispatch(self, route) -> None:
        """Track the request in-flight; refuse new work while draining."""
        server = self.server
        if server.draining:
            # A kept-alive client racing the shutdown gets an explicit
            # refusal and a closed connection instead of a TCP reset.
            self.close_connection = True
            self._send_error_json(
                503,
                "shutting_down",
                "server is draining; retry against another instance",
                headers={"Connection": "close"},
            )
            return
        server._track_request_start()
        try:
            route()
        finally:
            server._track_request_end()

    def _route_get(self) -> None:
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._send_json(200, self.service.health())
        elif parsed.path == "/metrics":
            text = self.service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(text)))
            self.end_headers()
            self.wfile.write(text)
        elif parsed.path == "/search":
            self._guarded(self._search_from_query_string, parsed)
        else:
            self._send_error_json(404, "not_found", f"no route for {parsed.path}")

    def _route_post(self) -> None:
        parsed = urlparse(self.path)
        routes = {
            "/search": self._search_from_body,
            "/explain": self._explain_from_body,
            "/feedback/reformulate": self._reformulate_from_body,
            "/ingest": self._ingest_from_body,
        }
        handler = routes.get(parsed.path)
        if handler is None:
            self._send_error_json(404, "not_found", f"no route for {parsed.path}")
            return
        self._guarded(handler)

    def _guarded(self, handler, *args) -> None:
        """Run a work endpoint under admission control and error mapping."""
        service = self.service
        if not self.server.admission.acquire(blocking=False):
            service.note_rejected()
            self._send_error_json(
                429,
                "overloaded",
                "concurrency limit reached, retry shortly",
                headers={"Retry-After": "1"},
            )
            return
        # The permit must be released *before* the response is written:
        # otherwise a strictly sequential client can be refused because the
        # previous request's thread has flushed its response but not yet
        # reached the release.
        try:
            deadline = Deadline(self.server.deadline_seconds)
            response = (200, handler(*args, deadline=deadline))
        except _BadRequest as error:
            service.note_error()
            response = (400, {"error": "bad_request", "message": str(error)})
        except DeadlineExceededError as error:
            service.note_rejected()
            response = (503, {"error": "deadline_exceeded", "message": str(error)})
        except UnknownNodeError as error:
            service.note_error()
            response = (404, {"error": "unknown_node", "message": str(error)})
        except ReproError as error:
            service.note_error()
            status = 404 if "is not served" in str(error) else 400
            response = (status, {"error": "repro_error", "message": str(error)})
        except Exception as error:  # pragma: no cover - defensive
            service.note_error()
            response = (500, {"error": "internal_error", "message": str(error)})
        finally:
            self.server.admission.release()
        self._send_json(*response)

    # -- endpoint bodies ---------------------------------------------------

    def _search_from_query_string(self, parsed, deadline: Deadline) -> dict:
        params = parse_qs(parsed.query)

        def one(name: str, default=None):
            values = params.get(name)
            return values[0] if values else default

        dataset = one("dataset")
        query = one("q") or one("query")
        if not dataset or not query:
            raise _BadRequest("parameters 'dataset' and 'q' are required")
        labels = one("labels")
        return self.service.search(
            dataset,
            query,
            top_k=_optional_int(one("top_k"), "top_k"),
            mode=one("mode", "auto"),
            labels=tuple(labels.split(",")) if labels else None,
            deadline=deadline,
            candidates=_optional_int(one("candidates"), "candidates"),
            fusion=one("fusion"),
            fusion_weight=_optional_float(one("fusion_weight"), "fusion_weight"),
            horizon=_optional_int(one("horizon"), "horizon", minimum=0),
            early_k=_optional_int(one("early_k"), "early_k"),
            expand_cap=_optional_int(one("expand_cap"), "expand_cap"),
            node_budget=_optional_int(one("node_budget"), "node_budget"),
            max_horizon=_optional_int(one("max_horizon"), "max_horizon"),
        )

    def _search_from_body(self, deadline: Deadline) -> dict:
        body = self._read_json_body()
        dataset = body.get("dataset")
        query = body.get("query") or body.get("q")
        if not dataset or not query:
            raise _BadRequest("fields 'dataset' and 'query' are required")
        labels = body.get("labels")
        if labels is not None and not isinstance(labels, list):
            raise _BadRequest("'labels' must be a list of node labels")
        return self.service.search(
            dataset,
            _query_from_json(query),
            top_k=_optional_int(body.get("top_k"), "top_k"),
            mode=body.get("mode", "auto"),
            labels=tuple(labels) if labels else None,
            deadline=deadline,
            candidates=_optional_int(body.get("candidates"), "candidates"),
            fusion=body.get("fusion"),
            fusion_weight=_optional_float(
                body.get("fusion_weight"), "fusion_weight"
            ),
            horizon=_optional_int(body.get("horizon"), "horizon", minimum=0),
            early_k=_optional_int(body.get("early_k"), "early_k"),
            expand_cap=_optional_int(body.get("expand_cap"), "expand_cap"),
            node_budget=_optional_int(body.get("node_budget"), "node_budget"),
            max_horizon=_optional_int(body.get("max_horizon"), "max_horizon"),
        )

    def _explain_from_body(self, deadline: Deadline) -> dict:
        body = self._read_json_body()
        dataset, query, target = (
            body.get("dataset"),
            body.get("query"),
            body.get("target"),
        )
        if not dataset or not query or not target:
            raise _BadRequest("fields 'dataset', 'query' and 'target' are required")
        return self.service.explain(
            dataset,
            _query_from_json(query),
            target,
            max_edges=_optional_int(body.get("max_edges"), "max_edges") or 50,
            deadline=deadline,
            mode=body.get("mode", "live"),
        )

    def _reformulate_from_body(self, deadline: Deadline) -> dict:
        body = self._read_json_body()
        dataset, query = body.get("dataset"), body.get("query")
        relevant = body.get("relevant_ids")
        if not dataset or not query or not isinstance(relevant, list) or not relevant:
            raise _BadRequest(
                "fields 'dataset', 'query' and a non-empty 'relevant_ids' "
                "list are required"
            )
        return self.service.feedback_reformulate(
            dataset,
            _query_from_json(query),
            [str(node_id) for node_id in relevant],
            apply=bool(body.get("apply", True)),
            deadline=deadline,
        )

    def _ingest_from_body(self, deadline: Deadline) -> dict:
        body = self._read_json_body()
        dataset = body.get("dataset")
        mutations = body.get("mutations")
        if not dataset or not isinstance(mutations, list) or not mutations:
            raise _BadRequest(
                "fields 'dataset' and a non-empty 'mutations' list are required"
            )
        refresh = body.get("refresh", "auto")
        if not isinstance(refresh, str):
            raise _BadRequest("'refresh' must be one of 'auto', 'force', 'none'")
        return self.service.ingest(
            dataset, mutations, refresh=refresh, deadline=deadline
        )


class _BadRequest(Exception):
    """Client-side input error, mapped to HTTP 400."""


def _optional_int(raw, name: str, minimum: int = 1) -> int | None:
    if raw is None:
        return None
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise _BadRequest(f"'{name}' must be an integer, got {raw!r}") from None
    if value < minimum:
        raise _BadRequest(f"'{name}' must be at least {minimum}, got {value}")
    return value


def _optional_float(raw, name: str) -> float | None:
    if raw is None:
        return None
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise _BadRequest(f"'{name}' must be a number, got {raw!r}") from None


def _query_from_json(query):
    """Accept either a query string or a {term: weight} object."""
    if isinstance(query, str):
        return query
    if isinstance(query, dict):
        from repro.query.query import QueryVector

        try:
            return QueryVector({str(t): float(w) for t, w in query.items()})
        except (TypeError, ValueError) as error:
            raise _BadRequest(f"invalid query vector: {error}") from None
    raise _BadRequest("'query' must be a string or a term->weight object")


def serve_forever(server: QueryHTTPServer) -> None:  # pragma: no cover - CLI loop
    """Run until interrupted, then close the socket cleanly."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


DEFAULT_DRAIN_TIMEOUT = 10.0


def serve_until_shutdown(
    server: QueryHTTPServer,
    signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    poll_interval: float = 0.1,
) -> tuple[int, bool]:
    """Serve until a signal arrives, then drain in-flight requests and close.

    On SIGTERM/SIGINT the handler (a) marks the server draining, so requests
    arriving on kept-alive connections are answered 503 and closed, and (b)
    stops the accept loop from a helper thread (``shutdown()`` blocks until
    the loop exits, so it must not run inside the signal handler itself).
    After the loop exits, waits up to ``drain_timeout`` seconds for requests
    already executing to finish writing their responses, then closes the
    listening socket.

    Returns ``(signum, drained)`` — the signal that stopped the server (0
    for a plain ``shutdown()`` call) and whether the drain completed before
    the timeout.  Must run on the main thread (POSIX signal handling).
    """
    received: list[int] = []

    def _handle(signum: int, _frame) -> None:
        received.append(signum)
        server.begin_drain()
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {s: signal.signal(s, _handle) for s in signals}
    try:
        server.serve_forever(poll_interval=poll_interval)
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
    drained = server.drain(drain_timeout)
    server.server_close()
    return (received[0] if received else 0), drained
