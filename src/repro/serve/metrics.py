"""Counters and latency histograms for the query service, Prometheus-style.

Stdlib-only instrumentation: named counters and histogram/summaries collected
in a :class:`MetricsRegistry` and rendered in the Prometheus text exposition
format (version 0.0.4) for the ``/metrics`` endpoint.  Histograms keep a
bounded window of recent observations for the p50/p95/p99 quantiles — serving
latency is a moving target, so a windowed quantile is more honest than an
all-time one — alongside exact all-time ``_count`` and ``_sum``.
"""

from __future__ import annotations

import threading
from collections import deque

#: Observation window for histogram quantiles (recent-behaviour estimate).
DEFAULT_WINDOW = 2048

QUANTILES = (0.5, 0.95, 0.99)


class Counter:
    """A monotonically increasing named counter."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        #: guarded by self._lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> str:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} counter")
        lines.append(f"{self.name} {_format_value(self.value)}")
        return "\n".join(lines)


class Histogram:
    """Windowed quantiles plus exact count/sum, rendered as a summary."""

    def __init__(
        self, name: str, help_text: str = "", window: int = DEFAULT_WINDOW
    ) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        #: guarded by self._lock
        self._window: deque[float] = deque(maxlen=window)
        #: guarded by self._lock
        self._count = 0
        #: guarded by self._lock
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._window.append(float(value))
            self._count += 1
            self._sum += float(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the observation window (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            samples = sorted(self._window)
        if not samples:
            return 0.0
        rank = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
        return samples[rank]

    def render(self) -> str:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} summary")
        for q in QUANTILES:
            lines.append(
                f'{self.name}{{quantile="{_format_value(q)}"}} '
                f"{_format_value(self.quantile(q))}"
            )
        lines.append(f"{self.name}_sum {_format_value(self.sum)}")
        lines.append(f"{self.name}_count {_format_value(self.count)}")
        return "\n".join(lines)


class Gauge:
    """A value that can go up and down (cache size, in-flight requests)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        #: guarded by self._lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> str:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} gauge")
        lines.append(f"{self.name} {_format_value(self.value)}")
        return "\n".join(lines)


class MetricsRegistry:
    """Get-or-create registry of metrics with one-call text rendering."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: guarded by self._lock
        self._metrics: dict[str, Counter | Histogram | Gauge] = {}

    def _get_or_create(self, name: str, factory, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help_text), Counter)

    def histogram(
        self, name: str, help_text: str = "", window: int = DEFAULT_WINDOW
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help_text, window), Histogram
        )

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help_text), Gauge)

    def snapshot(self) -> dict[str, float]:
        """Flat name -> value view (histograms contribute count/sum/p50/p95/p99)."""
        with self._lock:
            metrics = list(self._metrics.values())
        flat: dict[str, float] = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                flat[f"{metric.name}_count"] = float(metric.count)
                flat[f"{metric.name}_sum"] = metric.sum
                for q in QUANTILES:
                    flat[f"{metric.name}_p{int(q * 100)}"] = metric.quantile(q)
            else:
                flat[metric.name] = metric.value
        return flat

    def render(self) -> str:
        """All metrics in Prometheus text exposition format."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return "\n".join(metric.render() for metric in metrics) + "\n"


def _format_value(value: float) -> str:
    """Prometheus-friendly number formatting (integers without a dot)."""
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)
