"""Prefork serving cluster: N worker processes over one shared listener.

The multi-process tier the paper's Section 6.2 measurements imply: the
precomputed keyword→score matrix lives in an on-disk store
(:mod:`repro.store`) that every worker maps read-only, so the kernel keeps
exactly **one** physical copy of the scores in the page cache no matter how
many workers serve from it, and answering ``/search`` takes no cross-process
lock anywhere.

Architecture::

    ClusterSupervisor
      ├── binds the public listener once (SO_REUSEADDR, backlog 128)
      ├── builds + preloads one QueryService (single-threaded, pre-fork,
      │   so workers share the engines copy-on-write)
      ├── fork()s N workers, each of which
      │     ├── serves the shared listener (kernel-balanced accepts; the
      │     │   listener is non-blocking, so lost accept races are free)
      │     ├── serves a private ephemeral *control* port for targeted
      │     │   /metrics, /healthz and /search probes
      │     └── drains in-flight requests on SIGTERM
      ├── monitors workers, reaping and respawning any that die
      └── aggregates /metrics across workers, labelling every sample
          with ``worker_id`` and ``store_generation``

Generation swaps need no supervisor involvement: each worker's
:class:`~repro.store.generations.StoreManager` polls the store's ``CURRENT``
manifest between requests and swaps one object reference, so a rebuild
published by ``repro store build`` goes live on every worker within the
refresh interval without dropping a single request.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import tempfile
import threading
import time
import urllib.request
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import ReproError
from repro.serve.http_server import (
    DEFAULT_DRAIN_TIMEOUT,
    QueryHTTPServer,
    create_server,
    serve_until_shutdown,
)
from repro.serve.service import QueryService, ServeConfig

LISTEN_BACKLOG = 128


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one prefork cluster (wraps a worker-side ServeConfig)."""

    serve: ServeConfig = field(default_factory=ServeConfig)
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    #: Interface the per-worker control servers bind (ephemeral ports).
    control_host: str = "127.0.0.1"
    #: Directory for worker status files (None = private temp directory).
    run_dir: str | None = None
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT
    monitor_interval: float = 0.2
    #: Restart workers that die unexpectedly (crash, SIGKILL).
    respawn: bool = True
    #: Ceiling on unexpected-death restarts, a crash-loop circuit breaker.
    max_respawns: int = 16
    #: Port of the supervisor's own admin endpoint (None = no admin server).
    admin_port: int | None = None
    quiet: bool = True


@dataclass(frozen=True)
class WorkerStatus:
    """One live worker as seen by the supervisor."""

    worker_id: int
    pid: int
    control_port: int


class ClusterSupervisor:
    """Owns the shared listener and the worker process pool.

    ``start()`` must be called from a process that can ``fork`` (POSIX).
    Workers are forked before any supervisor thread starts, so the initial
    pool is created from a single-threaded parent; respawns fork from the
    monitor thread, which is safe here because a fresh worker re-creates
    its servers from scratch and touches no supervisor lock.
    """

    def __init__(
        self, config: ClusterConfig, service: QueryService | None = None
    ) -> None:
        if config.workers < 1:
            raise ReproError(f"cluster needs >= 1 worker, got {config.workers}")
        self.config = config
        self._service = service
        self._listener: socket.socket | None = None
        self.run_dir = Path(
            config.run_dir or tempfile.mkdtemp(prefix="repro-cluster-")
        )
        self._lock = threading.Lock()
        #: guarded by self._lock
        self._workers: dict[int, int] = {}
        #: guarded by self._lock
        self._stopping = False
        #: guarded by self._lock
        self._respawns = 0
        self._monitor_thread: threading.Thread | None = None
        self._admin: ThreadingHTTPServer | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) of the shared public listener."""
        if self._listener is None:
            raise ReproError("cluster is not started")
        return self._listener.getsockname()[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def respawns(self) -> int:
        with self._lock:
            return self._respawns

    def start(self) -> None:
        """Bind the listener, preload the service, fork the worker pool."""
        if self._listener is not None:
            raise ReproError("cluster already started")
        self.run_dir.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            listener.listen(LISTEN_BACKLOG)
            listener.set_inheritable(True)
        except BaseException:
            # bind() raising (EADDRINUSE, EACCES) must not leak the socket:
            # a supervisor retrying start() would otherwise accumulate one
            # dangling fd per attempt.
            listener.close()
            raise
        self._listener = listener
        if self._service is None:
            # Built and preloaded once, pre-fork: the graphs, indexes and
            # engines are shared copy-on-write by every worker, and the
            # mmap'd store pages are shared physically by the page cache.
            self._service = QueryService(self.config.serve)
            self._service.preload()
        for worker_id in range(self.config.workers):
            self._spawn(worker_id)
        if self.config.admin_port is not None:
            self._start_admin()
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="cluster-monitor", daemon=True
        )
        self._monitor_thread.start()

    def stop(self, timeout: float | None = None) -> bool:
        """SIGTERM every worker, wait for drained exits, SIGKILL stragglers.

        Returns ``True`` when every worker exited within ``timeout`` (which
        defaults to the drain timeout plus headroom).
        """
        if timeout is None:
            timeout = self.config.drain_timeout + 5.0
        with self._lock:
            self._stopping = True
            workers = dict(self._workers)
        for pid in workers.values():
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + timeout
        clean = True
        for pid in workers.values():
            if not _wait_for_exit(pid, deadline):
                clean = False
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                _wait_for_exit(pid, time.monotonic() + 5.0)
        with self._lock:
            self._workers.clear()
        if self._admin is not None:
            self._admin.shutdown()
            self._admin.server_close()
            self._admin = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        return clean

    # -- worker processes ----------------------------------------------------

    def _spawn(self, worker_id: int) -> int:
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                code = self._run_worker(worker_id)
            finally:
                # Never unwind into the supervisor's stack from a child.
                os._exit(code)
        with self._lock:
            self._workers[worker_id] = pid
        return pid

    def _run_worker(self, worker_id: int) -> int:
        """Worker main: shared-listener server + private control server."""
        if self._admin is not None:
            self._admin.socket.close()
        assert self._listener is not None and self._service is not None
        server = create_server(
            self._service,
            quiet=self.config.quiet,
            listen_socket=self._listener,
        )
        control = create_server(
            self._service,
            host=self.config.control_host,
            port=0,
            quiet=self.config.quiet,
        )
        threading.Thread(
            target=control.serve_forever, name="worker-control", daemon=True
        ).start()
        self._write_status(worker_id, control)
        _signum, drained = serve_until_shutdown(
            server, drain_timeout=self.config.drain_timeout
        )
        control.shutdown()
        control.server_close()
        return 0 if drained else 1

    def _write_status(self, worker_id: int, control: QueryHTTPServer) -> None:
        """Publish this worker's control port for the supervisor (atomic)."""
        path = self.run_dir / f"worker-{worker_id}.json"
        temp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        payload = {
            "worker_id": worker_id,
            "pid": os.getpid(),
            "control_port": control.server_address[1],
        }
        temp.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        os.replace(temp, path)

    def workers(self) -> list[WorkerStatus]:
        """Live workers whose control servers have come up, by worker id."""
        with self._lock:
            pids = dict(self._workers)
        statuses = []
        for worker_id, pid in sorted(pids.items()):
            path = self.run_dir / f"worker-{worker_id}.json"
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # worker has not published its control port yet
            if int(data.get("pid", -1)) != pid:
                continue  # stale file from a dead incarnation; respawn pending
            statuses.append(WorkerStatus(worker_id, pid, int(data["control_port"])))
        return statuses

    def _monitor(self) -> None:
        """Reap dead workers; respawn them unless stopping (or capped)."""
        while True:
            with self._lock:
                if self._stopping:
                    return
                workers = dict(self._workers)
            for worker_id, pid in workers.items():
                try:
                    done, _status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done = pid  # reaped elsewhere; treat as exited
                if done == 0:
                    continue
                with self._lock:
                    if (
                        self._stopping
                        or not self.config.respawn
                        or self._respawns >= self.config.max_respawns
                    ):
                        self._workers.pop(worker_id, None)
                        continue
                    self._respawns += 1
                self._spawn(worker_id)
            time.sleep(self.config.monitor_interval)

    # -- aggregation ---------------------------------------------------------

    def aggregate_metrics(self, timeout: float = 2.0) -> str:
        """Cluster-wide Prometheus text: every worker's samples, labelled.

        Each sample line gains ``worker_id`` and ``store_generation`` labels
        (the generation scraped from the worker's own
        ``repro_store_generation`` gauge, ``"none"`` off the store path), so
        one scrape shows both the per-worker split and whether a generation
        swap has reached every process.  ``# HELP``/``# TYPE`` lines are
        kept once.  A worker that fails its scrape is skipped — the
        supervisor-level ``repro_cluster_workers`` gauge still counts it.
        """
        statuses = self.workers()
        seen_meta: set[str] = set()
        sections = []
        scraped = 0
        for status in statuses:
            url = (
                f"http://{self.config.control_host}:{status.control_port}/metrics"
            )
            try:
                text = _http_get(url, timeout)
            except OSError:
                continue
            scraped += 1
            generation = _scrape_value(text, "repro_store_generation")
            labels = {
                "worker_id": str(status.worker_id),
                "store_generation": (
                    str(int(generation)) if generation is not None else "none"
                ),
            }
            sections.append(inject_labels(text, labels, seen_meta))
        sections.append(
            "# TYPE repro_cluster_workers gauge\n"
            f"repro_cluster_workers {len(statuses)}\n"
            "# TYPE repro_cluster_workers_scraped gauge\n"
            f"repro_cluster_workers_scraped {scraped}\n"
            "# TYPE repro_cluster_respawns_total counter\n"
            f"repro_cluster_respawns_total {self.respawns}"
        )
        return "\n".join(sections) + "\n"

    def cluster_health(self) -> dict:
        """Supervisor-side liveness summary (no per-worker HTTP probes)."""
        statuses = self.workers()
        host, port = self.address
        return {
            "status": "ok" if statuses else "starting",
            "listen": {"host": host, "port": port},
            "workers": [
                {
                    "worker_id": s.worker_id,
                    "pid": s.pid,
                    "control_port": s.control_port,
                }
                for s in statuses
            ],
            "configured_workers": self.config.workers,
            "respawns": self.respawns,
        }

    # -- admin endpoint ------------------------------------------------------

    def _start_admin(self) -> None:
        admin = ThreadingHTTPServer(
            (self.config.control_host, self.config.admin_port), _AdminHandler
        )
        admin.daemon_threads = True
        admin.supervisor = self
        self._admin = admin
        threading.Thread(
            target=admin.serve_forever, name="cluster-admin", daemon=True
        ).start()


class _AdminHandler(BaseHTTPRequestHandler):
    """GET-only supervisor endpoint: aggregated /metrics, /healthz, /workers."""

    server_version = "repro-cluster/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        supervisor: ClusterSupervisor = self.server.supervisor
        if self.path == "/metrics":
            body = supervisor.aggregate_metrics().encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            status = 200
        elif self.path == "/healthz":
            body = json.dumps(supervisor.cluster_health()).encode("utf-8")
            content_type = "application/json; charset=utf-8"
            status = 200
        elif self.path == "/workers":
            body = json.dumps(supervisor.cluster_health()["workers"]).encode(
                "utf-8"
            )
            content_type = "application/json; charset=utf-8"
            status = 200
        else:
            body = json.dumps(
                {"error": "not_found", "message": f"no route for {self.path}"}
            ).encode("utf-8")
            content_type = "application/json; charset=utf-8"
            status = 404
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


# -- helpers -----------------------------------------------------------------


def inject_labels(
    text: str, labels: dict[str, str], seen_meta: set[str] | None = None
) -> str:
    """Add labels to every sample line of a Prometheus text exposition.

    Existing labels (histogram ``quantile=...``) are preserved; ``# HELP``/
    ``# TYPE`` lines already recorded in ``seen_meta`` are dropped so that
    concatenating several workers' expositions yields each metric's metadata
    exactly once.
    """
    rendered = ",".join(f'{name}="{value}"' for name, value in labels.items())
    lines = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            if seen_meta is not None:
                if line in seen_meta:
                    continue
                seen_meta.add(line)
            lines.append(line)
            continue
        sample, _, value = line.rpartition(" ")
        if sample.endswith("}"):
            lines.append(f"{sample[:-1]},{rendered}}} {value}")
        else:
            lines.append(f"{sample}{{{rendered}}} {value}")
    return "\n".join(lines)


def _scrape_value(text: str, name: str) -> float | None:
    """The value of an unlabelled sample in a Prometheus exposition."""
    prefix = name + " "
    for line in text.splitlines():
        if line.startswith(prefix):
            try:
                return float(line[len(prefix) :])
            except ValueError:
                return None
    return None


def _http_get(url: str, timeout: float) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _wait_for_exit(pid: int, deadline: float) -> bool:
    """Poll-reap one child until it exits or ``deadline`` passes."""
    while True:
        try:
            done, _status = os.waitpid(pid, os.WNOHANG)
        except ChildProcessError:
            return True
        if done != 0:
            return True
        if time.monotonic() >= deadline:
            return False
        time.sleep(0.02)


def run_cluster(config: ClusterConfig) -> int:  # pragma: no cover - CLI loop
    """Run a cluster in the foreground until SIGTERM/SIGINT, then drain."""
    supervisor = ClusterSupervisor(config)
    supervisor.start()
    stop = threading.Event()

    def _handle(_signum: int, _frame) -> None:
        stop.set()

    previous = {
        s: signal.signal(s, _handle) for s in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        stop.wait()
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
    return 0 if supervisor.stop() else 1
