"""Thread-safe LRU + TTL result cache for the query service.

Entries are keyed by everything that determines a serialized answer:
``(dataset name, canonical query-vector fingerprint, transfer-rate
fingerprint, top_k)``.  The rate fingerprint makes learned-rate sessions
self-keying — a structure-based reformulation that changes the rates can
never be answered from a stale entry — but the service still invalidates a
dataset's entries *explicitly* when it applies a reformulation, both to free
memory and so operators can see the invalidation in ``/metrics``.

The cache is deliberately value-agnostic: it stores whatever JSON-ready
payload the service built.  Expiry uses a monotonic clock injected at
construction time so tests can drive time by hand.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.query.query import QueryVector

CacheKey = tuple[str, tuple, tuple, int]

#: Rounding applied to floating-point fingerprint components, so that rates
#: or weights recomputed through an equivalent arithmetic path still hit.
_FINGERPRINT_DIGITS = 12


def query_fingerprint(vector: QueryVector) -> tuple:
    """Canonical, order-insensitive fingerprint of a weighted query vector."""
    return tuple(
        sorted(
            (term, round(weight, _FINGERPRINT_DIGITS))
            for term, weight in vector.weights.items()
            if weight > 0
        )
    )


def rates_fingerprint(rates: AuthorityTransferSchemaGraph) -> tuple:
    """Fingerprint of the transfer rates in their canonical edge-type order."""
    return tuple(round(rate, _FINGERPRINT_DIGITS) for rate in rates.as_vector())


def make_key(
    dataset: str,
    vector: QueryVector,
    rates: AuthorityTransferSchemaGraph,
    top_k: int,
) -> CacheKey:
    """The full cache key for one search request."""
    return (dataset, query_fingerprint(vector), rates_fingerprint(rates), int(top_k))


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the cache's accounting."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    invalidations: int
    size: int
    max_entries: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """An LRU cache with optional TTL, safe for concurrent get/put.

    ``max_entries`` bounds memory; the least-recently-*used* entry is evicted
    on overflow.  ``ttl_seconds=None`` disables expiry.  All operations take
    one short critical section — the cache never computes under its lock.
    """

    def __init__(
        self,
        max_entries: int = 512,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive or None, got {ttl_seconds}")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        #: guarded by self._lock
        self._entries: OrderedDict[Hashable, tuple[Any, float]] = OrderedDict()
        #: guarded by self._lock
        self._hits = 0
        #: guarded by self._lock
        self._misses = 0
        #: guarded by self._lock
        self._evictions = 0
        #: guarded by self._lock
        self._expirations = 0
        #: guarded by self._lock
        self._invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """The cached value, or ``None`` on miss/expiry (which counts a miss)."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, stored_at = entry
            if self.ttl_seconds is not None and now - stored_at > self.ttl_seconds:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU entries on overflow."""
        now = self._clock()
        with self._lock:
            self._entries[key] = (value, now)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self, dataset: str | None = None) -> int:
        """Drop every entry (or only one dataset's entries); returns the count.

        The service calls this when a structure-based reformulation changes a
        dataset's serving rates — the rate fingerprint already keys those
        entries out, but dropping them reclaims memory immediately and makes
        the invalidation observable.
        """
        with self._lock:
            if dataset is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                doomed = [
                    k
                    for k in self._entries
                    if isinstance(k, tuple) and k and k[0] == dataset
                ]
                for key in doomed:
                    del self._entries[key]
                dropped = len(doomed)
            self._invalidations += dropped
            return dropped

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                invalidations=self._invalidations,
                size=len(self._entries),
                max_entries=self.max_entries,
            )
