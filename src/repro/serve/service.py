"""The query service: per-dataset engines, result caching, execution routing.

:class:`QueryService` is the serving layer the paper's Section 6.2 asks for —
on-the-fly ObjectRank2 is "clearly too long for exploratory searching", so a
deployed system answers from the cheapest source that is still correct:

1. the **result cache** (exact answers computed earlier under the same
   dataset, query vector, transfer rates and ``top_k``);
2. the **precomputed ranker** (per-keyword [BHP04] vectors blended at query
   time), used only while it is *fresh* — a structure-based reformulation
   that changes the serving rates makes it stale and routes traffic back to
3. **live ObjectRank2** over the shared engine, through the per-call
   transfer-rate views of :meth:`repro.query.engine.SearchEngine.search`
   (no shared-graph mutation, so concurrent sessions stay isolated).

All responses are JSON-ready dicts; the HTTP layer in
:mod:`repro.serve.http_server` only adds transport concerns.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import DEFAULT_RADIUS
from repro.datasets import load_dataset
from repro.datasets.base import Dataset
from repro.errors import EmptyBaseSetError, PrecomputedCoverageError, ReproError
from repro.explain.batch import (
    batched_adjust_flows,
    batched_build_explaining_subgraphs,
)
from repro.explain.subgraph import build_explaining_subgraph
from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.graph.data_graph import DataGraph
from repro.ingest.engine import IngestEngine
from repro.ingest.mutations import Mutation, mutation_from_json
from repro.query.engine import SearchEngine
from repro.query.query import KeywordQuery, QueryVector
from repro.ranking.convergence import RankedResult
from repro.ranking.precompute import PrecomputedRanker
from repro.reformulate.combined import Reformulator
from repro.retrieval.engine import TwoStageEngine
from repro.retrieval.fusion import FUSION_MODES
from repro.serve.cache import (
    ResultCache,
    make_key,
    query_fingerprint,
    rates_fingerprint,
)
from repro.serve.metrics import MetricsRegistry
from repro.store.generations import StoreManager
from repro.store.ranker import MmapScoreRanker

SERVE_MODES = ("auto", "live", "precomputed", "two_stage")

EXPLAIN_MODES = ("live", "two_stage")


class DeadlineExceededError(ReproError):
    """The request's time budget ran out before the expensive work started."""


class OverloadedError(ReproError):
    """The service refused the request under admission control."""


class Deadline:
    """A monotonic per-request time budget, checked before expensive stages.

    The power iteration itself is not preemptible, so the deadline is
    enforced at stage boundaries: a request that has already used its budget
    fails fast instead of starting another full ObjectRank2 run.
    """

    def __init__(self, seconds: float, clock=time.monotonic) -> None:
        self._clock = clock
        self.seconds = seconds
        self._expires_at = clock() + seconds

    def remaining(self) -> float:
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, stage: str) -> None:
        if self.expired:
            raise DeadlineExceededError(
                f"deadline of {self.seconds:.3f}s exceeded before {stage}"
            )


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one query service instance."""

    datasets: tuple[str, ...] = ("dblp_tiny",)
    scale: float = 1.0
    seed: int = 7
    default_top_k: int = 10
    radius: int | None = DEFAULT_RADIUS
    cache_max_entries: int = 512
    cache_ttl_seconds: float | None = None
    #: Two-stage retrieval defaults for ``mode=two_stage`` requests (each
    #: overridable per request): stage-1 candidate-set size, fusion mode and
    #: authority weight, rerank neighborhood horizon and the optional top-k
    #: early exit of the rerank fixpoint (see :mod:`repro.retrieval`).
    candidates: int = 200
    fusion: str = "weighted"
    fusion_weight: float = 1.0
    rerank_horizon: int = 2
    rerank_early_k: int | None = None
    #: Hub-expansion cap and adaptive-deepening budget of the rerank
    #: neighborhood (see :func:`repro.ranking.focused.focused_neighborhood`);
    #: ``None`` keeps the exact uncapped, fixed-horizon expansion.
    rerank_expand_cap: int | None = None
    rerank_node_budget: int | None = None
    rerank_max_horizon: int | None = None
    precompute: bool = True
    precompute_min_document_frequency: int = 2
    precompute_keywords: tuple[str, ...] | None = None
    #: Worker processes for the blocked per-keyword build (None = in-process).
    precompute_workers: int | None = None
    #: Fraction of a query's term weight the precomputed cache must cover to
    #: answer it; below this the request falls back to live ObjectRank2.
    precompute_min_coverage: float = 1.0
    #: Rebuild the per-keyword vectors under the learned rates after an
    #: applied reformulation (blocks the reformulation request, restores the
    #: precomputed fast path for everyone else).
    precompute_rebuild: bool = False
    #: Root directory of on-disk score stores (one subdirectory per dataset,
    #: see :mod:`repro.store`).  When set, the precomputed fast path serves
    #: zero-copy from the mmap'd store's published generation instead of
    #: building vectors in-process — the prefork cluster mode, where every
    #: worker maps the same physical pages.
    store_dir: str | None = None
    #: Manifest poll throttle: a runtime re-checks its store's CURRENT
    #: pointer at most this often (0 checks on every request).
    store_refresh_seconds: float = 0.05
    #: Entries held by the explanation cache (full adjusted-flow payloads,
    #: keyed on dataset + query + rate fingerprint + target).
    explain_cache_max_entries: int = 256
    #: Threads for batched explaining-subgraph extraction on the feedback
    #: path (None = in-process; the batch engine is used either way).
    explain_workers: int | None = None
    max_concurrency: int = 8
    deadline_seconds: float = 30.0
    #: Accept ``/ingest`` mutations and maintain the precomputed matrix
    #: online (dirty-keyword incremental refresh, see :mod:`repro.ingest`).
    ingest: bool = False
    #: Pending mutations tolerated before a search/explain request forces a
    #: synchronous refresh (0 = never serve with pending mutations).
    ingest_staleness_bound: int = 0
    #: Dirty-column refresh mode: ``"exact"`` re-converges dirty columns
    #: cold (bit-identical to a full precompute), ``"warm"`` seeds them from
    #: their previous fixpoints (fewer iterations, tolerance-equal scores).
    ingest_refresh_mode: str = "exact"


class DatasetRuntime:
    """Everything the service holds per dataset: engine, rates, precompute.

    ``current_rates`` is the dataset's *serving* rate schema — the initial
    expert rates until a structure-based reformulation is applied, the
    learned rates afterwards.  The precomputed ranker is built lazily on
    first use (it runs one ObjectRank per index keyword) and is consulted
    only while :meth:`PrecomputedRanker.is_stale` says it matches the
    serving rates.
    """

    def __init__(
        self, dataset: Dataset, config: ServeConfig, name: str | None = None
    ) -> None:
        self.dataset = dataset
        self.config = config
        #: The name this dataset is served under (the /search ``dataset``
        #: parameter and the store subdirectory) — may differ from the
        #: loaded dataset's own name when preloaded under an alias.
        self.name = name if name is not None else dataset.name
        self.engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
        #: guarded by self._rates_lock
        self.current_rates: AuthorityTransferSchemaGraph = dataset.transfer_schema
        #: guarded by self._rates_lock
        self.reformulations_applied = 0
        self._rates_lock = threading.Lock()
        self._precompute_lock = threading.Lock()
        self._two_stage: TwoStageEngine | None = None
        self._precomputed: PrecomputedRanker | None = None
        self._precompute_built = False
        # Store-backed serving: the manager polls the dataset's CURRENT
        # manifest and swaps generations between requests; ``None`` keeps
        # the classic in-process precompute behaviour.
        self.store: StoreManager | None = None
        if config.store_dir is not None:
            self.store = StoreManager(
                Path(config.store_dir) / self.name,
                min_coverage=config.precompute_min_coverage,
                refresh_seconds=config.store_refresh_seconds,
            )
        # Ingest: mutations buffer in the engine's working copies while
        # serving continues on the last adopted snapshot; refresh_ingest
        # swaps snapshots and republishes the precomputed ranker.
        self.ingest: IngestEngine | None = None
        self._ingest_lock = threading.Lock()
        #: guarded by self._ingest_lock
        self._ingest_epoch = 0
        #: guarded by self._ingest_lock
        self._ingest_ranker: PrecomputedRanker | None = None
        if config.ingest:
            self.ingest = IngestEngine(
                dataset.data_graph,
                dataset.transfer_schema,
                min_document_frequency=config.precompute_min_document_frequency,
                min_coverage=config.precompute_min_coverage,
            )

    @property
    def data_graph(self) -> DataGraph:
        """The data graph currently being served (tracks ingest adoptions).

        Payload builders must read this (not ``dataset.data_graph``): after
        a refresh the engine serves an adopted snapshot and the original
        dataset object no longer describes the served topology.
        """
        return self.engine.data_graph

    @property
    def ingest_epoch(self) -> int:
        """Adopted ingest snapshots so far (0 = the original dataset)."""
        with self._ingest_lock:
            return self._ingest_epoch

    def staleness_info(self) -> dict | None:
        """The response ``staleness`` field; ``None`` when ingest is off."""
        if self.ingest is None:
            return None
        info = self.ingest.staleness().as_dict()
        info["epoch"] = self.ingest_epoch
        return info

    def refresh_ingest(
        self,
        mode: str | None = None,
        workers: int | None = None,
        force: bool = False,
    ) -> dict | None:
        """Synchronously refresh + adopt + publish; ``None`` when a no-op.

        Re-converges the dirty columns (incremental against the last
        published ranker), swaps the engine onto the refreshed snapshot,
        and republishes the ranker — through the store's generation-swap
        protocol when store-backed (cluster workers pick it up between
        requests), by replacing the in-process ranker otherwise.  Serialized
        under the ingest lock; mutations keep landing concurrently and are
        picked up by the next refresh.
        """
        if self.ingest is None:
            return None
        with self._ingest_lock:
            if self.ingest.pending_mutations == 0 and not force:
                return None
            previous = self._ingest_ranker
            if previous is None and self.store is None and self.config.precompute:
                with self._precompute_lock:
                    # Seed the first incremental refresh from the lazily
                    # built startup ranker (same snapshot the working copy
                    # started from), instead of a full rebuild.
                    previous = self._precomputed
            result = self.ingest.refresh(
                previous=previous,
                rates=self.rates,
                mode=mode if mode is not None else self.config.ingest_refresh_mode,
                workers=(
                    workers
                    if workers is not None
                    else self.config.precompute_workers
                ),
                precompute=self.config.precompute or self.store is not None,
            )
            self.engine.adopt(
                result.data_graph,
                result.graph.transfer_schema,
                result.graph,
                result.index,
            )
            if result.ranker is not None:
                if self.store is not None:
                    # The ingest lock is a coarse refresh serializer, not a
                    # fast-path fence: request threads never take it, and
                    # publishing inside it is what guarantees epoch N's slab
                    # is on disk before epoch N is announced.
                    # repro-lint: ignore[RL013] deliberate publish-in-refresh
                    self.store.publish(result.ranker, self.name)
                else:
                    with self._precompute_lock:
                        self._precomputed = result.ranker
                        self._precompute_built = True
            self._ingest_ranker = result.ranker
            self._ingest_epoch += 1
            epoch = self._ingest_epoch
        return {
            "epoch": epoch,
            "mode": result.mode,
            "full_rebuild": result.full_rebuild,
            "recomputed_columns": len(result.recomputed),
            "carried_columns": len(result.carried),
            "iterations": result.iterations,
            "pending_consumed": result.pending_consumed,
            "elapsed_seconds": result.elapsed_seconds,
        }

    @property
    def two_stage(self) -> TwoStageEngine:
        """The runtime's two-stage retrieval engine (config defaults).

        Built lazily without a lock: construction is a cheap stateless
        binding to the shared engine, so a racing duplicate is harmless.
        The bound engine reference survives ingest adoptions (``adopt``
        swaps the engine's internals, not the engine object).
        """
        if self._two_stage is None:
            self._two_stage = TwoStageEngine(
                self.engine,
                candidates=self.config.candidates,
                fusion=self.config.fusion,
                fusion_weight=self.config.fusion_weight,
                horizon=self.config.rerank_horizon,
                early_k=self.config.rerank_early_k,
                expand_cap=self.config.rerank_expand_cap,
                node_budget=self.config.rerank_node_budget,
                max_horizon=self.config.rerank_max_horizon,
            )
        return self._two_stage

    @property
    def rates(self) -> AuthorityTransferSchemaGraph:
        with self._rates_lock:
            return self.current_rates

    def apply_rates(self, rates: AuthorityTransferSchemaGraph) -> None:
        """Swap in learned serving rates (reformulation wiring calls this)."""
        with self._rates_lock:
            self.current_rates = rates
            self.reformulations_applied += 1

    def precomputed_ranker(self) -> PrecomputedRanker | MmapScoreRanker | None:
        """The precomputed fast-path ranker; ``None`` if unavailable.

        Store-backed runtimes return the mmap ranker of the currently
        published generation (refreshing the manifest first, so a
        generation swap is picked up here, between requests) and never
        build vectors in-process — an empty store directory simply routes
        to live ObjectRank2 until a builder publishes.
        """
        if self.store is not None:
            return self.store.ranker()
        if not self.config.precompute:
            return None
        with self._precompute_lock:
            if not self._precompute_built:
                self._precomputed = self._build_precomputed(self.engine.graph)
                self._precompute_built = True
            return self._precomputed

    def store_generation(self) -> int | None:
        """The published store generation in use; ``None`` off the store."""
        if self.store is None:
            return None
        return self.store.generation

    def rebuild_precomputed(self) -> PrecomputedRanker | MmapScoreRanker | None:
        """Rebuild the per-keyword vectors under the current serving rates.

        A structure-based reformulation leaves the precomputed cache stale;
        rebuilding it (one blocked run over the vocabulary, see
        :mod:`repro.ranking.batch`) restores the precomputed fast path
        instead of routing all traffic to live ObjectRank2 forever.  The
        rebuild happens outside the lock — readers keep using the stale
        ranker's staleness check (and the live path) until the swap.

        Store-backed runtimes instead *publish a new generation* under the
        learned rates: the builder writes ``store.gen-K``, flips the
        manifest, and every worker process of the cluster picks the new
        generation up between requests — serving never blocks on a rebuild.
        """
        if self.store is not None:
            graph = self.engine.transfer_view(self.rates)
            ranker = self._build_precomputed(graph)
            self.store.publish(ranker, self.name)
            return self.store.ranker()
        if not self.config.precompute:
            return None
        graph = self.engine.transfer_view(self.rates)
        ranker = self._build_precomputed(graph)
        with self._precompute_lock:
            self._precomputed = ranker
            self._precompute_built = True
        return ranker

    def _build_precomputed(self, graph) -> PrecomputedRanker:
        keywords = (
            list(self.config.precompute_keywords)
            if self.config.precompute_keywords is not None
            else None
        )
        return PrecomputedRanker(
            graph,
            self.engine.index,
            keywords=keywords,
            min_document_frequency=self.config.precompute_min_document_frequency,
            workers=self.config.precompute_workers,
            min_coverage=self.config.precompute_min_coverage,
        )


class QueryService:
    """Concurrent query serving over one or more datasets.

    Thread-safe: request handling mutates only the cache, the metrics and
    (under ``/feedback/reformulate``) a runtime's serving rates, each behind
    its own lock.  Dataset loading and engine construction happen at most
    once per dataset name.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        registry: MetricsRegistry | None = None,
        datasets: dict[str, Dataset] | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.metrics = registry or MetricsRegistry()
        self.cache = ResultCache(
            max_entries=self.config.cache_max_entries,
            ttl_seconds=self.config.cache_ttl_seconds,
        )
        # Explanations are cached separately from search results: they carry
        # full adjusted-flow edge lists, are keyed per target, and answering
        # one from cache skips an entire live ObjectRank2 run.  The rate
        # fingerprint in the key makes reformulated sessions self-keying.
        self.explain_cache = ResultCache(
            max_entries=self.config.explain_cache_max_entries,
            ttl_seconds=self.config.cache_ttl_seconds,
        )
        self.reformulator = Reformulator()
        self._preloaded = dict(datasets) if datasets else {}
        self._runtimes: dict[str, DatasetRuntime] = {}
        self._runtimes_lock = threading.Lock()
        self._started_at = time.monotonic()

        m = self.metrics
        self._requests = m.counter(
            "repro_requests_total", "Requests accepted by the service"
        )
        self._rejected = m.counter(
            "repro_requests_rejected_total",
            "Requests refused by admission control or deadlines",
        )
        self._errors = m.counter(
            "repro_request_errors_total", "Requests that failed with an error"
        )
        self._cache_hits = m.counter(
            "repro_cache_hits_total", "Search responses served from the result cache"
        )
        self._cache_misses = m.counter(
            "repro_cache_misses_total", "Search requests not answerable from cache"
        )
        self._explain_cache_hits = m.counter(
            "repro_explain_cache_hits_total",
            "Explanations served from the explanation cache",
        )
        self._explain_cache_misses = m.counter(
            "repro_explain_cache_misses_total",
            "Explanation requests not answerable from cache",
        )
        self._served_precomputed = m.counter(
            "repro_served_precomputed_total",
            "Search responses served from precomputed keyword vectors",
        )
        self._served_live = m.counter(
            "repro_served_live_total",
            "Search responses computed by live ObjectRank2",
        )
        self._served_store = m.counter(
            "repro_served_store_total",
            "Search responses served zero-copy from the mmap score store",
        )
        self._served_two_stage = m.counter(
            "repro_served_two_stage_total",
            "Search responses computed by two-stage retrieval",
        )
        # The registry has no label support, so the fusion-mode breakdown is
        # one counter per mode, named like a labelled family would render.
        self._fusion_served = {
            fusion_mode: m.counter(
                f"repro_two_stage_fusion_{fusion_mode}_total",
                f"Two-stage responses fused with the {fusion_mode} mode",
            )
            for fusion_mode in FUSION_MODES
        }
        self._invalidations = m.counter(
            "repro_cache_invalidations_total",
            "Cache entries dropped by reformulation-driven invalidation",
        )
        self._ingest_mutations = m.counter(
            "repro_ingest_mutations_total",
            "Mutations applied through /ingest",
        )
        self._ingest_refreshes = m.counter(
            "repro_ingest_refreshes_total",
            "Incremental precompute refreshes (adopt + publish cycles)",
        )
        self._ingest_recomputed = m.counter(
            "repro_ingest_columns_recomputed_total",
            "Precomputed columns re-converged by incremental refreshes",
        )
        self._ingest_carried = m.counter(
            "repro_ingest_columns_carried_total",
            "Precomputed columns carried unchanged across refreshes",
        )
        self._or_iterations = m.counter(
            "repro_objectrank_iterations_total",
            "Power-iteration steps spent answering live queries",
        )
        self._latency = m.histogram(
            "repro_request_seconds", "End-to-end service latency per request"
        )
        self._search_latency = m.histogram(
            "repro_search_seconds", "Service latency of /search requests"
        )
        self._two_stage_candidates = m.histogram(
            "repro_two_stage_candidates",
            "Stage-1 candidate-set size per two-stage search",
        )
        self._stage1_latency = m.histogram(
            "repro_two_stage_stage1_seconds",
            "Stage-1 latency (pruned BM25 candidate generation)",
        )
        self._stage2_latency = m.histogram(
            "repro_two_stage_stage2_seconds",
            "Stage-2 latency (focused authority rerank + fusion)",
        )

    # -- dataset runtimes --------------------------------------------------

    def dataset_names(self) -> list[str]:
        return list(self.config.datasets)

    def runtime(self, dataset: str) -> DatasetRuntime:
        """The (lazily built) runtime for one configured dataset."""
        with self._runtimes_lock:
            runtime = self._runtimes.get(dataset)
        if runtime is not None:
            return runtime
        if dataset not in self.config.datasets and dataset not in self._preloaded:
            raise ReproError(
                f"dataset {dataset!r} is not served; configured: "
                f"{', '.join(self.config.datasets)}"
            )
        loaded = self._preloaded.get(dataset) or load_dataset(
            dataset, scale=self.config.scale, seed=self.config.seed
        )
        built = DatasetRuntime(loaded, self.config, name=dataset)
        with self._runtimes_lock:
            # Another thread may have built it concurrently; first one wins.
            runtime = self._runtimes.setdefault(dataset, built)
        return runtime

    def preload(self) -> None:
        """Build every configured dataset's engine up front (CLI startup)."""
        for name in self.config.datasets:
            self.runtime(name)

    # -- search ------------------------------------------------------------

    def search(
        self,
        dataset: str,
        query: str | KeywordQuery | QueryVector,
        top_k: int | None = None,
        mode: str = "auto",
        labels: tuple[str, ...] | None = None,
        deadline: Deadline | None = None,
        candidates: int | None = None,
        fusion: str | None = None,
        fusion_weight: float | None = None,
        horizon: int | None = None,
        early_k: int | None = None,
        expand_cap: int | None = None,
        node_budget: int | None = None,
        max_horizon: int | None = None,
    ) -> dict:
        """Answer one search request, routed cache -> precomputed -> live.

        ``mode`` forces an execution path: ``"auto"`` (default) consults the
        cache and the precomputed ranker before falling back to live
        ObjectRank2; ``"precomputed"`` and ``"live"`` bypass the cache read
        and force their path (useful for benchmarking and debugging);
        ``"two_stage"`` runs pruned candidate generation + focused authority
        reranking (:mod:`repro.retrieval`), consulting the cache under a key
        extended with the candidate/fusion parameters.  All modes still
        populate the cache.  ``candidates``, ``fusion``, ``fusion_weight``,
        ``horizon``, ``early_k``, ``expand_cap``, ``node_budget`` and
        ``max_horizon`` override the configured two-stage defaults per
        request and are rejected outside ``mode="two_stage"``.
        """
        if mode not in SERVE_MODES:
            raise ReproError(f"unknown mode {mode!r}; expected one of {SERVE_MODES}")
        overrides = (
            candidates, fusion, fusion_weight, horizon, early_k,
            expand_cap, node_budget, max_horizon,
        )
        if mode != "two_stage" and any(value is not None for value in overrides):
            raise ReproError(
                "candidate/fusion parameters require mode='two_stage'"
            )
        two_stage: dict | None = None
        if mode == "two_stage":
            two_stage = {
                "candidates": (
                    candidates if candidates is not None else self.config.candidates
                ),
                "fusion": fusion if fusion is not None else self.config.fusion,
                "fusion_weight": (
                    fusion_weight
                    if fusion_weight is not None
                    else self.config.fusion_weight
                ),
                "horizon": horizon if horizon is not None else self.config.rerank_horizon,
                "early_k": early_k if early_k is not None else self.config.rerank_early_k,
                "expand_cap": (
                    expand_cap
                    if expand_cap is not None
                    else self.config.rerank_expand_cap
                ),
                "node_budget": (
                    node_budget
                    if node_budget is not None
                    else self.config.rerank_node_budget
                ),
                "max_horizon": (
                    max_horizon
                    if max_horizon is not None
                    else self.config.rerank_max_horizon
                ),
            }
            if two_stage["fusion"] not in FUSION_MODES:
                raise ReproError(
                    f"unknown fusion mode {two_stage['fusion']!r}; "
                    f"expected one of {FUSION_MODES}"
                )
            if not 0.0 <= two_stage["fusion_weight"] <= 1.0:
                raise ReproError(
                    "fusion_weight must be in [0, 1], got "
                    f"{two_stage['fusion_weight']}"
                )
            if two_stage["candidates"] < 1:
                raise ReproError(
                    f"candidates must be positive, got {two_stage['candidates']}"
                )
            if two_stage["horizon"] < 0:
                raise ReproError(
                    f"horizon must be non-negative, got {two_stage['horizon']}"
                )
            for name in ("expand_cap", "node_budget", "max_horizon"):
                value = two_stage[name]
                if value is not None and value < 1:
                    raise ReproError(f"{name} must be positive, got {value}")
        start = time.perf_counter()
        self._requests.inc()
        runtime = self.runtime(dataset)
        self._ingest_maybe_refresh(runtime)
        vector = runtime.engine.query_vector(query)
        rates = runtime.rates
        k = top_k if top_k is not None else self.config.default_top_k

        served_from = "live"
        ranked: RankedResult | None = None
        ranker = None
        if mode in ("auto", "precomputed"):
            # Resolved before the cache key is built: for store-backed
            # runtimes this refreshes the generation, and the key carries
            # the generation number so a swap starts a fresh cache cohort
            # (the old cohort ages out of the LRU instead of being trusted
            # across a rebuild).
            ranker = runtime.precomputed_ranker()
        generation = runtime.store_generation()
        key = make_key(dataset, vector, rates, k) + ((labels,) if labels else ())
        if two_stage is not None:
            # Two-stage answers depend on every candidate/fusion parameter,
            # so the key carries them all — a different candidate budget or
            # fusion must never be answered from another cohort's entry.
            key += (("two_stage", tuple(sorted(two_stage.items()))),)
        if generation is not None:
            key += (("gen", generation),)
        staleness = None
        if runtime.ingest is not None:
            # The adopted-snapshot epoch keys the cache alongside the rate
            # fingerprint: an ingest refresh starts a fresh cohort, so a
            # pre-mutation entry can never answer a post-mutation request.
            staleness = runtime.staleness_info()
            key += (("epoch", staleness["epoch"]),)

        if mode in ("auto", "two_stage"):
            cached = self.cache.get(key)
            if cached is not None:
                self._cache_hits.inc()
                return self._finish(cached, "cache", start, staleness)
            self._cache_misses.inc()

        if deadline is not None:
            deadline.check("ranking")

        if mode in ("auto", "precomputed"):
            store_backed = isinstance(ranker, MmapScoreRanker)
            fresh = ranker is not None and not ranker.is_stale(rates)
            if mode == "precomputed" and not fresh:
                raise ReproError(
                    "precomputed mode unavailable: "
                    + ("ranker disabled" if ranker is None else "ranker is stale")
                )
            if fresh:
                try:
                    ranked = ranker.rank(vector)
                    served_from = "store" if store_backed else "precomputed"
                except PrecomputedCoverageError as error:
                    if mode == "precomputed":
                        raise ReproError(
                            f"precomputed mode unavailable: {error}"
                        ) from error
                    # auto: partial coverage falls back to live ObjectRank2,
                    # which ranks with *every* query term.
                except EmptyBaseSetError:
                    if mode == "precomputed":
                        ranked = RankedResult([], _EMPTY_SCORES, 0, True)
                        served_from = "store" if store_backed else "precomputed"
                    # auto: fall through to live, which may still match
                    # (or raise the same error, mapped to an empty payload).

        stages = None
        if two_stage is not None:
            served_from = "two_stage"
            try:
                result = runtime.two_stage.search(
                    vector, top_k=k, rates=rates, labels=labels, **two_stage
                )
                ranked, top, stages = result.ranked, result.top, result.stages
            except EmptyBaseSetError:
                ranked, top = RankedResult([], _EMPTY_SCORES, 0, True), []
            self._served_two_stage.inc()
            self._or_iterations.inc(ranked.iterations)
            if stages is not None:
                self._two_stage_candidates.observe(stages.num_candidates)
                self._stage1_latency.observe(stages.stage1_seconds)
                self._stage2_latency.observe(stages.stage2_seconds)
                self._fusion_served[stages.fusion].inc()
        elif served_from == "live":
            try:
                result = runtime.engine.search(
                    vector, top_k=k, rates=rates, labels=labels
                )
                ranked, top = result.ranked, result.top
            except EmptyBaseSetError:
                ranked, top = RankedResult([], _EMPTY_SCORES, 0, True), []
            self._served_live.inc()
            self._or_iterations.inc(ranked.iterations)
        else:
            top = _top_k(ranked, k, labels, runtime)
            if served_from == "store":
                self._served_store.inc()
            else:
                self._served_precomputed.inc()

        payload = {
            "dataset": dataset,
            "query": dict(vector.weights),
            "top_k": k,
            "results": [
                {
                    "rank": rank,
                    "id": node_id,
                    "label": _label(runtime.data_graph, node_id),
                    "caption": _caption(runtime.data_graph, node_id),
                    "score": score,
                }
                for rank, (node_id, score) in enumerate(top, start=1)
            ],
            "iterations": ranked.iterations,
            "converged": ranked.converged,
            "coverage": ranked.coverage,
        }
        if generation is not None:
            payload["store_generation"] = generation
        if stages is not None:
            payload["two_stage"] = {
                "requested_candidates": two_stage["candidates"],
                "candidates": stages.num_candidates,
                "fusion": stages.fusion,
                "fusion_weight": stages.fusion_weight,
                "horizon": stages.horizon,
                "expand_cap": two_stage["expand_cap"],
                "node_budget": two_stage["node_budget"],
                "max_horizon": two_stage["max_horizon"],
                "subgraph_nodes": stages.subgraph_nodes,
                "subgraph_edges": stages.subgraph_edges,
                "stage1_seconds": stages.stage1_seconds,
                "stage2_seconds": stages.stage2_seconds,
            }
        # A forced-precomputed request the ranker could not answer yields an
        # empty payload that auto traffic would answer live — never cache it.
        unanswerable = served_from in ("precomputed", "store") and not ranked.node_ids
        if not unanswerable:
            self.cache.put(key, payload)
        return self._finish(payload, served_from, start, staleness)

    def _finish(
        self,
        payload: dict,
        served_from: str,
        start: float,
        staleness: dict | None = None,
    ) -> dict:
        elapsed = time.perf_counter() - start
        self._latency.observe(elapsed)
        self._search_latency.observe(elapsed)
        response = dict(payload)
        response["served_from"] = served_from
        response["elapsed_seconds"] = elapsed
        if staleness is not None:
            # Recomputed per response (never from the cached payload): the
            # bound a client observes must describe *now*, not cache time.
            response["staleness"] = staleness
        return response

    # -- explanation -------------------------------------------------------

    def explain(
        self,
        dataset: str,
        query: str | KeywordQuery | QueryVector,
        target: str,
        max_edges: int = 50,
        deadline: Deadline | None = None,
        mode: str = "live",
    ) -> dict:
        """Explain why ``target`` ranks for ``query``: adjusted flow edges.

        Consults the explanation cache first — entries are keyed on the
        dataset, the canonical query fingerprint, the serving-rate
        fingerprint and the target, so a repeat request skips the live
        ObjectRank2 run entirely and a reformulation that changes the rates
        can never be answered stale.  On a miss, runs live ObjectRank2
        (explanations need the full converged score vector, which cached
        top-k payloads do not carry), builds the explaining subgraph under
        the dataset's serving rates through the batched engine's shared
        positive-rate adjacency, and runs the Section 4 flow-adjustment
        fixpoint.  The full sorted edge list is cached; ``max_edges`` only
        trims the response.

        ``mode="two_stage"`` explains a *two-stage* result instead: the
        scores come from the configured two-stage retrieval and the
        explaining subgraph is restricted to the candidates' rerank
        neighborhood — flow a two-stage score never saw cannot appear in
        its explanation.
        """
        if mode not in EXPLAIN_MODES:
            raise ReproError(
                f"unknown mode {mode!r}; expected one of {EXPLAIN_MODES}"
            )
        start = time.perf_counter()
        self._requests.inc()
        runtime = self.runtime(dataset)
        self._ingest_maybe_refresh(runtime)
        vector = runtime.engine.query_vector(query)
        rates = runtime.rates
        key = (
            dataset,
            query_fingerprint(vector),
            rates_fingerprint(rates),
            target,
            self.config.radius,
        )
        if mode == "two_stage":
            # Two-stage explanations are a separate cohort: same query, same
            # rates, different scores and a restricted subgraph.
            key += (
                (
                    "two_stage",
                    self.config.candidates,
                    self.config.fusion,
                    self.config.fusion_weight,
                    self.config.rerank_horizon,
                    self.config.rerank_early_k,
                ),
            )
        if runtime.ingest is not None:
            # Same epoch cohorting as the result cache: an explanation's
            # subgraph references topology, so it must never outlive the
            # snapshot it was extracted from.
            key += (("epoch", runtime.ingest_epoch),)
        cached = self.explain_cache.get(key)
        if cached is not None:
            self._explain_cache_hits.inc()
            return self._finish_explain(cached, max_edges, "cache", start)
        self._explain_cache_misses.inc()

        if deadline is not None:
            deadline.check("explanation")
        if mode == "two_stage":
            result = runtime.two_stage.search(
                vector, top_k=self.config.default_top_k, rates=rates
            )
        else:
            result = runtime.engine.search(
                vector, top_k=self.config.default_top_k, rates=rates
            )
        self._or_iterations.inc(result.iterations)
        graph = runtime.engine.transfer_view(rates)
        graph.index_of(target)  # raises UnknownNodeError early
        base_ids = list(result.ranked.base_weights)
        within = None
        if mode == "two_stage" and result.stages is not None:
            within = result.stages.neighborhood
        if within is not None:
            # Restricted extraction runs serially (the batched engine has no
            # node filter); the neighborhood keeps the subgraph small.
            subgraphs = [
                build_explaining_subgraph(
                    graph, base_ids, target, self.config.radius, within=within
                )
            ]
        else:
            subgraphs = batched_build_explaining_subgraphs(
                graph, base_ids, [target], self.config.radius
            )
        explanation = batched_adjust_flows(subgraphs, result.ranked.scores)[0]
        subgraph = explanation.subgraph
        edges = sorted(
            explanation.edge_flow_items(), key=lambda item: item[2], reverse=True
        )
        stored = {
            "dataset": dataset,
            "query": dict(vector.weights),
            "target": target,
            "mode": mode,
            "target_caption": _caption(runtime.data_graph, target),
            "target_inflow": explanation.target_inflow(),
            "adjustment_iterations": explanation.iterations,
            "converged": explanation.converged,
            "subgraph_nodes": len(subgraph.nodes),
            "subgraph_edges": int(len(subgraph.edge_ids)),
            "edges": [
                {"source": source, "target": edge_target, "flow": flow}
                for source, edge_target, flow in edges
            ],
        }
        self.explain_cache.put(key, stored)
        return self._finish_explain(stored, max_edges, "live", start)

    def _finish_explain(
        self, stored: dict, max_edges: int, served_from: str, start: float
    ) -> dict:
        """Trim a (cached) full explanation payload into one response."""
        payload = dict(stored)
        payload["edges"] = stored["edges"][:max_edges]
        payload["served_from"] = served_from
        elapsed = time.perf_counter() - start
        self._latency.observe(elapsed)
        payload["elapsed_seconds"] = elapsed
        return payload

    # -- ingest ------------------------------------------------------------

    INGEST_REFRESH_MODES = ("auto", "force", "none")

    def ingest(
        self,
        dataset: str,
        mutations: list,
        refresh: str = "auto",
        deadline: Deadline | None = None,
    ) -> dict:
        """Apply a mutation batch; refresh per policy; report staleness.

        ``mutations`` mixes typed records and wire-format dicts (parsed via
        :func:`repro.ingest.mutations.mutation_from_json`).  Failures are
        per-mutation: a rejected entry lands in the response's ``errors``
        list (with its position and reason) while the rest of the batch
        applies — the working state never half-applies a single mutation.

        ``refresh`` picks the policy: ``"auto"`` refreshes only when the
        staleness bound is exceeded (the same trigger serving uses),
        ``"force"`` refreshes synchronously before returning, ``"none"``
        just buffers (a later request or batch pays for the refresh).
        """
        if refresh not in self.INGEST_REFRESH_MODES:
            raise ReproError(
                f"unknown refresh policy {refresh!r}; expected one of "
                f"{self.INGEST_REFRESH_MODES}"
            )
        start = time.perf_counter()
        self._requests.inc()
        runtime = self.runtime(dataset)
        if runtime.ingest is None:
            raise ReproError(
                "ingest is disabled; start the service with ingest=True "
                "(repro serve --ingest)"
            )
        applied = 0
        errors: list[dict] = []
        for position, entry in enumerate(mutations):
            try:
                mutation: Mutation = (
                    mutation_from_json(entry) if isinstance(entry, dict) else entry
                )
                runtime.ingest.apply(mutation)
                applied += 1
            except ReproError as error:
                errors.append(
                    {
                        "position": position,
                        "op": entry.get("op") if isinstance(entry, dict)
                        else getattr(entry, "op", None),
                        "error": str(error),
                    }
                )
        self._ingest_mutations.inc(applied)
        if deadline is not None:
            deadline.check("ingest refresh")
        refreshed = None
        if refresh == "force":
            refreshed = self._refresh_runtime(runtime, force=True)
        elif refresh == "auto":
            refreshed = self._ingest_maybe_refresh(runtime)
        payload = {
            "dataset": dataset,
            "applied": applied,
            "errors": errors,
            "staleness": runtime.staleness_info(),
            "epoch": runtime.ingest_epoch,
            "graph_version": runtime.ingest.graph_version,
            "refresh": refreshed,  # None when this batch only buffered
        }
        elapsed = time.perf_counter() - start
        self._latency.observe(elapsed)
        payload["elapsed_seconds"] = elapsed
        return payload

    def _ingest_maybe_refresh(self, runtime: DatasetRuntime) -> dict | None:
        """Refresh iff pending mutations exceed the staleness bound."""
        if runtime.ingest is None:
            return None
        if runtime.ingest.pending_mutations <= self.config.ingest_staleness_bound:
            return None
        return self._refresh_runtime(runtime)

    def _refresh_runtime(
        self, runtime: DatasetRuntime, force: bool = False
    ) -> dict | None:
        """Run one refresh cycle and account for it (metrics + caches).

        The epoch in the cache keys already fences stale entries off; the
        explicit invalidation here just reclaims their memory promptly.
        """
        summary = runtime.refresh_ingest(force=force)
        if summary is None:
            return None
        self._ingest_refreshes.inc()
        self._ingest_recomputed.inc(summary["recomputed_columns"])
        self._ingest_carried.inc(summary["carried_columns"])
        invalidated = self.cache.invalidate(runtime.name)
        invalidated += self.explain_cache.invalidate(runtime.name)
        self._invalidations.inc(invalidated)
        return summary

    # -- feedback / reformulation ------------------------------------------

    def feedback_reformulate(
        self,
        dataset: str,
        query: str | KeywordQuery | QueryVector,
        relevant_ids: list[str],
        apply: bool = True,
        deadline: Deadline | None = None,
    ) -> dict:
        """Reformulate from marked-relevant results; optionally apply rates.

        With ``apply=True`` (default) the learned transfer rates become the
        dataset's serving rates, which *invalidates* the dataset's result
        cache entries and leaves the precomputed ranker stale (subsequent
        queries route to live ObjectRank2 until the rates return to the
        precomputed snapshot or the ranker is rebuilt).  ``apply=False`` is a
        what-if: the reformulation and its reranked results are returned but
        serving state is untouched.
        """
        start = time.perf_counter()
        self._requests.inc()
        runtime = self.runtime(dataset)
        vector = runtime.engine.query_vector(query)
        rates = runtime.rates
        if deadline is not None:
            deadline.check("feedback search")
        result = runtime.engine.search(
            vector, top_k=self.config.default_top_k, rates=rates
        )
        self._or_iterations.inc(result.iterations)

        graph = runtime.engine.transfer_view(rates)
        base_ids = list(result.ranked.base_weights)
        for node_id in relevant_ids:
            graph.index_of(node_id)  # raises UnknownNodeError early
        if deadline is not None:
            deadline.check("feedback explanations")
        # All feedback objects are explained in one batched pass — shared
        # subgraph adjacency, one multi-target fixpoint — bit-identical per
        # object to the serial loop it replaced.
        explanations = batched_adjust_flows(
            batched_build_explaining_subgraphs(
                graph,
                base_ids,
                relevant_ids,
                self.config.radius,
                workers=self.config.explain_workers,
            ),
            result.ranked.scores,
        )

        reformulated = self.reformulator.reformulate(vector, rates, explanations)
        invalidated = 0
        if apply and explanations:
            runtime.apply_rates(reformulated.transfer_schema)
            invalidated = self.cache.invalidate(dataset)
            invalidated += self.explain_cache.invalidate(dataset)
            self._invalidations.inc(invalidated)
            if self.config.precompute_rebuild:
                # One blocked run over the vocabulary restores the
                # precomputed fast path under the learned rates.
                runtime.rebuild_precomputed()

        if deadline is not None:
            deadline.check("reformulated search")
        rerun = runtime.engine.search(
            reformulated.query_vector,
            top_k=self.config.default_top_k,
            rates=reformulated.transfer_schema,
            init=result.ranked.scores,
        )
        self._or_iterations.inc(rerun.iterations)

        ranker = runtime.precomputed_ranker()
        payload = {
            "dataset": dataset,
            "query": dict(vector.weights),
            "relevant_ids": list(relevant_ids),
            "applied": bool(apply and explanations),
            "invalidated_cache_entries": invalidated,
            "precomputed_stale": (
                ranker.is_stale(runtime.rates) if ranker is not None else None
            ),
            "reformulated_query": dict(reformulated.query_vector.weights),
            "learned_rates": {
                str(edge_type): reformulated.transfer_schema.rate(edge_type)
                for edge_type in reformulated.transfer_schema.edge_types()
            },
            "results": [
                {
                    "rank": rank,
                    "id": node_id,
                    "label": _label(runtime.data_graph, node_id),
                    "caption": _caption(runtime.data_graph, node_id),
                    "score": score,
                }
                for rank, (node_id, score) in enumerate(rerun.top, start=1)
            ],
            "iterations": rerun.iterations,
        }
        elapsed = time.perf_counter() - start
        self._latency.observe(elapsed)
        payload["elapsed_seconds"] = elapsed
        return payload

    # -- introspection -----------------------------------------------------

    def note_rejected(self) -> None:
        """Count a request refused by admission control or a deadline."""
        self._rejected.inc()

    def note_error(self) -> None:
        """Count a request that failed with a client or server error."""
        self._errors.inc()

    def health(self) -> dict:
        stats = self.cache.stats()
        with self._runtimes_lock:
            runtimes = dict(self._runtimes)
        payload = {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self._started_at,
            "datasets": {
                "configured": list(self.config.datasets),
                "loaded": sorted(runtimes),
            },
            "cache": {
                "size": stats.size,
                "max_entries": stats.max_entries,
                "hit_rate": stats.hit_rate,
            },
        }
        if self.config.store_dir is not None:
            payload["store"] = {
                "dir": self.config.store_dir,
                "generations": {
                    name: runtime.store_generation()
                    for name, runtime in sorted(runtimes.items())
                    if runtime.store is not None
                },
            }
        return payload

    def metrics_text(self) -> str:
        """Prometheus text exposition, cache gauges refreshed on the way out."""
        stats = self.cache.stats()
        self.metrics.gauge(
            "repro_cache_entries", "Entries currently held by the result cache"
        ).set(stats.size)
        self.metrics.gauge(
            "repro_cache_evictions", "LRU evictions since startup"
        ).set(stats.evictions)
        self.metrics.gauge(
            "repro_cache_expirations", "TTL expirations since startup"
        ).set(stats.expirations)
        self.metrics.gauge(
            "repro_explain_cache_entries",
            "Entries currently held by the explanation cache",
        ).set(self.explain_cache.stats().size)
        if self.config.store_dir is not None:
            with self._runtimes_lock:
                runtimes = dict(self._runtimes)
            managers = [r.store for r in runtimes.values() if r.store is not None]
            self.metrics.gauge(
                "repro_store_generation",
                "Published score-store generation in use (max across datasets)",
            ).set(max((m.generation or 0 for m in managers), default=0))
            self.metrics.gauge(
                "repro_store_swaps",
                "Generation swaps observed since startup",
            ).set(sum(m.swaps for m in managers))
            self.metrics.gauge(
                "repro_store_load_errors",
                "Published generations this process failed to open",
            ).set(sum(m.load_errors for m in managers))
        return self.metrics.render()


# -- serialization helpers -------------------------------------------------

_EMPTY_SCORES = np.zeros(0)


def _label(data_graph: DataGraph, node_id: str) -> str | None:
    """The node's label, or ``None`` for ids this process's graph predates.

    A cluster worker serving a builder-published store generation can rank
    nodes that ingest added after the worker loaded its dataset — payloads
    degrade to id-only entries for those instead of failing the request.
    """
    if not data_graph.has_node(node_id):
        return None
    return data_graph.node(node_id).label


def _caption(data_graph: DataGraph, node_id: str) -> str:
    """A short human-readable label for a node (mirrors the CLI's)."""
    if not data_graph.has_node(node_id):
        return node_id
    node = data_graph.node(node_id)
    name = (
        node.attributes.get("title")
        or node.attributes.get("name")
        or node.attributes.get("symbol")
        or node_id
    )
    return f"{node.label}: {name[:70]}"


def _top_k(
    ranked: RankedResult,
    k: int,
    labels: tuple[str, ...] | None,
    runtime: DatasetRuntime,
) -> list[tuple[str, float]]:
    """Top-k extraction with the engine's label-filter semantics."""
    if not ranked.node_ids:
        return []
    if not labels:
        return ranked.top_k(k)
    wanted = set(labels)
    index_of = {node_id: i for i, node_id in enumerate(ranked.node_ids)}
    top: list[tuple[str, float]] = []
    for node_id in ranked.ranking():
        if _label(runtime.data_graph, node_id) in wanted:
            top.append((node_id, float(ranked.scores[index_of[node_id]])))
            if len(top) == k:
                break
    return top
