"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one base class at an API boundary.  Each subclass corresponds to one
well-defined failure mode; none of them are raised for programmer errors such
as passing the wrong type (those surface as ``TypeError``/``ValueError`` from
the standard library as usual).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A structural problem in a data graph or schema graph."""


class UnknownNodeError(GraphError):
    """A node id was referenced that does not exist in the graph."""

    def __init__(self, node_id: str):
        super().__init__(f"unknown node: {node_id!r}")
        self.node_id = node_id


class UnknownLabelError(GraphError):
    """A schema label was referenced that the schema graph does not define."""

    def __init__(self, label: str):
        super().__init__(f"unknown schema label: {label!r}")
        self.label = label


class DuplicateNodeError(GraphError):
    """A node id was added twice to a graph."""

    def __init__(self, node_id: str):
        super().__init__(f"duplicate node: {node_id!r}")
        self.node_id = node_id


class ConformanceError(GraphError):
    """A data graph does not conform to its schema graph (Section 2)."""

    def __init__(self, violations: list[str]):
        preview = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        super().__init__(f"data graph does not conform to schema: {preview}{more}")
        self.violations = violations


class RateError(ReproError):
    """Invalid authority transfer rates (negative, or unknown edge type)."""


class IngestError(ReproError):
    """A malformed or inapplicable ingest mutation."""


class ConvergenceError(ReproError):
    """An iterative fixpoint computation failed to converge."""

    def __init__(self, what: str, iterations: int, residual: float):
        super().__init__(
            f"{what} did not converge after {iterations} iterations "
            f"(residual {residual:.3g})"
        )
        self.what = what
        self.iterations = iterations
        self.residual = residual


class EmptyBaseSetError(ReproError):
    """A query matched no node in the database, so no ranking exists."""

    def __init__(self, keywords: tuple[str, ...]):
        super().__init__(f"no object contains any of the keywords {keywords!r}")
        self.keywords = keywords


class PrecomputedCoverageError(EmptyBaseSetError):
    """A precomputed cache covers too little of a query to answer it.

    Subclasses :class:`EmptyBaseSetError` so serving layers that already fall
    back to live ObjectRank2 on an unanswerable cached query treat partial
    coverage the same way instead of silently dropping the missing terms.
    """

    def __init__(
        self, missing: tuple[str, ...], coverage: float, threshold: float
    ):
        ReproError.__init__(
            self,
            f"precomputed vectors cover {coverage:.1%} of the query weight "
            f"(threshold {threshold:.1%}); uncached terms: {missing!r}",
        )
        self.keywords = missing
        self.coverage = coverage
        self.threshold = threshold


class ExplanationError(ReproError):
    """The explaining subgraph could not be built for a target object."""


class DatasetError(ReproError):
    """A named dataset is unknown or a generator received invalid parameters."""


class StorageError(ReproError):
    """A problem in the mini relational store (unknown table, bad row, ...)."""


class StoreError(StorageError):
    """A problem with an on-disk score store or its generation manifest."""
