"""A live search engine over an evolving database.

The paper's system answers queries over a fixed snapshot; a deployed
bibliographic or biological database keeps growing.  ``LiveSearchEngine``
accepts node and edge insertions, removals and attribute updates at any
time:

* the inverted index is updated *incrementally* (one document in/out);
* the authority transfer data graph is rebuilt *lazily*, only when the next
  search actually needs it (mutations are typically bursty);
* previous scores remain usable as warm starts across rebuilds — scores are
  carried over by node id, with new nodes seeded at the uniform prior and
  the carried vector renormalized to unit mass, so a mutation burst does
  not reset the Section 6.2 convergence advantage.

``pending_updates`` counts only *successful* mutations: a rejected mutation
(duplicate node, unknown endpoint) leaves the engine — including the
counter — exactly as it was.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.graph.data_graph import DataGraph, DataNode
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.index import InvertedIndex
from repro.ir.scoring import BM25Scorer, Scorer
from repro.ir.tokenize import DEFAULT_ANALYZER, Analyzer
from repro.query.engine import SearchResult
from repro.query.query import KeywordQuery, QueryVector
from repro.ranking.objectrank2 import objectrank2


class LiveSearchEngine:
    """Search over a data graph that accepts inserts between queries."""

    def __init__(
        self,
        data_graph: DataGraph,
        transfer_schema: AuthorityTransferSchemaGraph,
        analyzer: Analyzer = DEFAULT_ANALYZER,
        damping: float = 0.85,
        tolerance: float = 0.0001,
        max_iterations: int = 500,
        validate: bool = True,
    ) -> None:
        self.data_graph = data_graph
        self.transfer_schema = transfer_schema
        self.analyzer = analyzer
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self._validate = validate
        self.index = InvertedIndex.from_graph(data_graph, analyzer)
        self.scorer: Scorer = BM25Scorer(self.index)
        self._graph: AuthorityTransferDataGraph | None = AuthorityTransferDataGraph(
            data_graph, transfer_schema, validate=validate
        )
        self._pending = 0

    # -- mutation ------------------------------------------------------------

    def add_node(
        self, node_id: str, label: str, attributes: dict[str, str] | None = None
    ) -> DataNode:
        """Insert an object; it becomes searchable immediately."""
        node = self.data_graph.add_node(node_id, label, attributes)
        self.index.add_document(node_id, node.text())
        self._graph = None
        self._pending += 1
        return node

    def add_edge(self, source: str, target: str, role: str | None = None) -> None:
        """Insert a relationship; rankings see it on the next search."""
        self.data_graph.add_edge(source, target, role)
        self._graph = None
        self._pending += 1

    def update_node(
        self, node_id: str, attributes: dict[str, str]
    ) -> DataNode:
        """Replace an object's attributes and re-index its document.

        Topology is untouched, but the materialized transfer graph is still
        invalidated so the rebuild bookkeeping (``pending_updates``) treats
        every mutation kind uniformly.
        """
        node = self.data_graph.update_attributes(node_id, attributes)
        self.index.add_document(node_id, node.text())
        self._graph = None
        self._pending += 1
        return node

    def remove_node(self, node_id: str) -> DataNode:
        """Remove an object (and its edges); it stops being searchable now.

        The graph removal runs first — if it raises (unknown node), neither
        the index nor ``pending_updates`` changes.
        """
        node = self.data_graph.remove_node(node_id)
        self.index.remove_document(node_id)
        self._graph = None
        self._pending += 1
        return node

    def remove_edge(self, source: str, target: str, role: str | None = None) -> None:
        """Remove a relationship; rankings forget it on the next search."""
        self.data_graph.remove_edge(source, target, role)
        self._graph = None
        self._pending += 1

    @property
    def pending_updates(self) -> int:
        """Successful mutations since the last materialized transfer graph."""
        return self._pending

    # -- querying ------------------------------------------------------------

    @property
    def graph(self) -> AuthorityTransferDataGraph:
        """The (lazily rebuilt) authority transfer data graph."""
        if self._graph is None:
            self._graph = AuthorityTransferDataGraph(
                self.data_graph, self.transfer_schema, validate=self._validate
            )
            self._pending = 0
        return self._graph

    def carry_over_scores(
        self, previous: SearchResult | None
    ) -> np.ndarray | None:
        """Map a previous result's scores onto the current node set.

        Node ids that survived keep their score; new nodes start at the
        uniform prior; the result is renormalized to sum to 1 — mixing
        carried scores (which sum to ~1) with uniform-prior seeds would
        otherwise inflate the vector's mass and distort the first
        post-rebuild iteration.  Returns ``None`` when there is nothing to
        carry.
        """
        if previous is None:
            return None
        graph = self.graph
        carried = np.full(graph.num_nodes, 1.0 / max(graph.num_nodes, 1))
        previous_index = {
            node_id: i for i, node_id in enumerate(previous.ranked.node_ids)
        }
        for node_id, new_index in zip(graph.node_ids, range(graph.num_nodes)):
            old_index = previous_index.get(node_id)
            if old_index is not None:
                carried[new_index] = previous.ranked.scores[old_index]
        total = carried.sum()
        if total > 0.0:
            carried /= total
        return carried

    def search(
        self,
        query: KeywordQuery | QueryVector | str,
        top_k: int = 10,
        previous: SearchResult | None = None,
    ) -> SearchResult:
        """Run ObjectRank2 on the current graph state.

        ``previous`` (a result from *any* earlier graph state) warm-starts
        the power iteration via :meth:`carry_over_scores`.
        """
        if isinstance(query, str):
            query = KeywordQuery.parse(query, self.analyzer)
        vector = query if isinstance(query, QueryVector) else query.vector()
        init = self.carry_over_scores(previous)
        start = time.perf_counter()
        ranked = objectrank2(
            self.graph,
            self.scorer,
            vector,
            self.damping,
            self.tolerance,
            self.max_iterations,
            init,
        )
        elapsed = time.perf_counter() - start
        return SearchResult(vector, ranked, ranked.top_k(top_k), elapsed)
