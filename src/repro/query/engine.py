"""The search engine: base-set computation + ObjectRank2 over one dataset.

:class:`SearchEngine` owns the indexed view of a dataset (authority transfer
data graph, inverted index, IR scorer) and exposes one ``search`` call.  It is
deliberately stateless across queries — session state (current query vector,
learned rates, warm-start scores) lives in
:class:`repro.core.system.ObjectRankSystem`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.graph.data_graph import DataGraph
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.index import InvertedIndex
from repro.ir.scoring import BM25Scorer, Scorer
from repro.ir.tokenize import DEFAULT_ANALYZER, Analyzer
from repro.query.query import KeywordQuery, QueryVector
from repro.ranking.convergence import RankedResult
from repro.ranking.objectrank2 import objectrank2
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
)


@dataclass
class SearchResult:
    """A ranked answer: the top-k hits plus full scores and accounting."""

    query_vector: QueryVector
    ranked: RankedResult
    top: list[tuple[str, float]]
    elapsed_seconds: float

    @property
    def iterations(self) -> int:
        return self.ranked.iterations

    @property
    def scores(self) -> np.ndarray:
        return self.ranked.scores

    def hit_ids(self) -> list[str]:
        return [node_id for node_id, _ in self.top]


def select_top(
    data_graph: DataGraph,
    ranked: RankedResult,
    top_k: int,
    labels: tuple[str, ...] | None,
) -> list[tuple[str, float]]:
    """The top-``top_k`` hits of ``ranked``, optionally label-filtered.

    With ``labels``, hits are restricted to nodes of the given types —
    authority hubs of other types still influence scores but are not shown.
    """
    if labels is None:
        return ranked.top_k(top_k)
    wanted = set(labels)
    index_of = {node_id: i for i, node_id in enumerate(ranked.node_ids)}
    top: list[tuple[str, float]] = []
    for node_id in ranked.ranking():
        if data_graph.node(node_id).label in wanted:
            top.append((node_id, float(ranked.scores[index_of[node_id]])))
            if len(top) == top_k:
                break
    return top


class _ViewBuild:
    """Latch for one in-flight ``with_rates`` build (``transfer_view``)."""

    __slots__ = ("done", "view")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.view: AuthorityTransferDataGraph | None = None


@dataclass
class SearchEngine:
    """ObjectRank2 search over one data graph.

    ``transfer_schema`` supplies the *initial* authority transfer rates; a
    per-call override supports learned rates without mutating shared state
    (each :class:`SimulatedUser` and each feedback session can carry its own
    rates against one shared engine).
    """

    data_graph: DataGraph
    transfer_schema: AuthorityTransferSchemaGraph
    analyzer: Analyzer = field(default_factory=lambda: DEFAULT_ANALYZER)
    damping: float = DEFAULT_DAMPING
    tolerance: float = DEFAULT_TOLERANCE
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    validate: bool = True

    #: Distinct learned-rate views kept alive per engine.  Each view shares
    #: the graph topology and only owns an O(edges) rate array plus a sparse
    #: matrix, so a handful of concurrent sessions is cheap to cache.
    VIEW_CACHE_SIZE = 8

    def __post_init__(self) -> None:
        self.graph = AuthorityTransferDataGraph(
            self.data_graph, self.transfer_schema, validate=self.validate
        )
        self.index = InvertedIndex.from_graph(self.data_graph, self.analyzer)
        self.scorer: Scorer = BM25Scorer(self.index)
        self._view_lock = threading.Lock()
        self._views: OrderedDict[tuple, AuthorityTransferDataGraph] = OrderedDict()
        self._view_builds: dict[tuple, _ViewBuild] = {}

    def adopt(
        self,
        data_graph: DataGraph,
        transfer_schema: AuthorityTransferSchemaGraph,
        graph: AuthorityTransferDataGraph,
        index: InvertedIndex,
    ) -> None:
        """Swap in a new graph snapshot (the ingest refresh handover).

        ``graph``/``index`` must already be built over ``data_graph`` under
        ``transfer_schema`` — the expensive construction happens in the
        caller (outside any lock); this method only republishes references
        and drops the learned-rate view cache, which indexed the old
        topology.  An in-flight request that already resolved the old graph
        keeps using it coherently (the old objects stay alive and
        internally consistent), exactly like a store generation swap; only
        *new* lookups see the adopted snapshot.  In-flight ``_view_builds``
        latches are left alone: a build that races the swap caches a view
        of the old topology under a rate key, which the next miss on that
        key simply rebuilds — stale entries age out of the small LRU.
        """
        with self._view_lock:
            self.data_graph = data_graph
            self.transfer_schema = transfer_schema
            self.graph = graph
            self.index = index
            self.scorer = BM25Scorer(index)
            self._views.clear()

    def transfer_view(
        self, rates: AuthorityTransferSchemaGraph | None = None
    ) -> AuthorityTransferDataGraph:
        """The transfer graph under ``rates``, without mutating shared state.

        Returns the engine's own graph when ``rates`` is ``None`` or equals
        the engine's schema rates; otherwise a cached
        :meth:`~repro.graph.transfer_graph.AuthorityTransferDataGraph.with_rates`
        view.  Views are keyed by the canonical rate vector and kept in a
        small LRU so repeated queries of the same feedback session (or the
        same cached serving session) reuse one transition matrix.

        Concurrent misses on the same key are deduplicated by a per-key
        build latch: exactly one thread materializes the O(edges) view (its
        rate array and CSR matrix) outside the lock, everyone else waits on
        the latch and shares the built view instead of clobbering it.
        """
        if rates is None or rates == self.graph.transfer_schema:
            return self.graph
        key = tuple(rates.as_vector())
        with self._view_lock:
            view = self._views.get(key)
            if view is not None:
                self._views.move_to_end(key)
                return view
            build = self._view_builds.get(key)
            if build is None:
                build = _ViewBuild()
                self._view_builds[key] = build
                builder = True
            else:
                builder = False

        if not builder:
            build.done.wait()
            if build.view is not None:
                return build.view
            # The builder failed; retry (and possibly become the builder).
            return self.transfer_view(rates)

        try:
            view = self.graph.with_rates(rates)
        except BaseException:
            with self._view_lock:
                self._view_builds.pop(key, None)
            build.done.set()
            raise
        with self._view_lock:
            self._views[key] = view
            self._views.move_to_end(key)
            while len(self._views) > self.VIEW_CACHE_SIZE:
                self._views.popitem(last=False)
            self._view_builds.pop(key, None)
        # Waiters read the view off the latch, not the LRU — the entry may
        # already have been evicted by other keys by the time they wake.
        build.view = view
        build.done.set()
        return view

    def query_vector(self, query: KeywordQuery | QueryVector | str) -> QueryVector:
        """Normalize any accepted query form into a weighted query vector."""
        if isinstance(query, QueryVector):
            return query
        if isinstance(query, str):
            query = KeywordQuery.parse(query, self.analyzer)
        return query.vector()

    def search(
        self,
        query: KeywordQuery | QueryVector | str,
        top_k: int = 10,
        rates: AuthorityTransferSchemaGraph | None = None,
        init: np.ndarray | None = None,
        labels: tuple[str, ...] | None = None,
    ) -> SearchResult:
        """Run ObjectRank2 and return the top-``top_k`` objects.

        ``rates`` overrides the transfer rates for this call (the learned
        rates of a feedback session) via a per-call :meth:`transfer_view` —
        the shared graph is never mutated, so interleaved or concurrent
        sessions with different learned rates cannot contaminate each other;
        ``init`` warm-starts the power iteration with a previous score vector
        (Section 6.2); ``labels`` restricts the returned hits to the given
        node types (e.g. only ``("Paper",)`` — authority hubs like Year nodes
        still influence scores but are not shown).
        """
        vector = self.query_vector(query)
        graph = self.transfer_view(rates)
        start = time.perf_counter()
        ranked = objectrank2(
            graph,
            self.scorer,
            vector,
            self.damping,
            self.tolerance,
            self.max_iterations,
            init,
        )
        elapsed = time.perf_counter() - start
        top = select_top(self.data_graph, ranked, top_k, labels)
        return SearchResult(vector, ranked, top, elapsed)
