"""Keyword queries, query vectors and the ObjectRank2 search engine."""

from repro.query.engine import SearchEngine, SearchResult
from repro.query.live import LiveSearchEngine
from repro.query.query import KeywordQuery, QueryVector

__all__ = [
    "KeywordQuery",
    "LiveSearchEngine",
    "QueryVector",
    "SearchEngine",
    "SearchResult",
]
