"""Keyword queries and weighted query vectors (Section 3).

A keyword query is a *tuple* of keywords ``Q = [t_1, ..., t_m]`` (a tuple, not
a set, because order matters once the base set is weighted).  Its query vector
``Q = [w_1, ..., w_m]`` starts as all ones and grows/reweights during the
query-expansion stage of Section 5.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.ir.tokenize import QUERY_ANALYZER, Analyzer


class KeywordQuery:
    """An ordered tuple of query keywords.

    Keywords are normalized through the query analyzer (lowercased and
    tokenized), so ``KeywordQuery(["Query", "Optimization"])`` matches index
    terms ``query`` and ``optimization``.
    """

    def __init__(self, keywords: Iterable[str], analyzer: Analyzer = QUERY_ANALYZER):
        normalized: list[str] = []
        for keyword in keywords:
            normalized.extend(analyzer.terms(keyword))
        self.keywords: tuple[str, ...] = tuple(normalized)

    @classmethod
    def parse(cls, text: str, analyzer: Analyzer = QUERY_ANALYZER) -> "KeywordQuery":
        """Build a query from free text, e.g. ``"query optimization"``."""
        return cls([text], analyzer)

    def vector(self) -> "QueryVector":
        """The initial query vector: every keyword with weight 1 (Section 3)."""
        return QueryVector({k: 1.0 for k in self.keywords})

    def __iter__(self) -> Iterator[str]:
        return iter(self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeywordQuery):
            return NotImplemented
        return self.keywords == other.keywords

    def __hash__(self) -> int:
        return hash(self.keywords)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KeywordQuery({list(self.keywords)!r})"


class QueryVector:
    """An ordered term -> weight mapping.

    Term order is preserved (first-added first), matching the paper's notation
    where the reformulated vector lists original terms before expansion terms
    (Example 2).  Instances are mutated only through the explicit methods
    below; reformulators return fresh vectors.
    """

    def __init__(self, weights: Mapping[str, float] | None = None):
        self._weights: dict[str, float] = {}
        if weights:
            for term, weight in weights.items():
                self.set_weight(term, weight)

    # -- access ------------------------------------------------------------

    @property
    def terms(self) -> list[str]:
        return list(self._weights)

    @property
    def weights(self) -> dict[str, float]:
        """A copy of the underlying term -> weight mapping."""
        return dict(self._weights)

    def weight(self, term: str) -> float:
        return self._weights.get(term, 0.0)

    def __contains__(self, term: str) -> bool:
        return term in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    def __iter__(self) -> Iterator[str]:
        return iter(self._weights)

    # -- mutation ------------------------------------------------------------

    def set_weight(self, term: str, weight: float) -> None:
        if weight < 0:
            raise ValueError(f"query term weight must be non-negative, got {weight}")
        self._weights[term] = float(weight)

    def add_weight(self, term: str, delta: float) -> None:
        """Add ``delta`` to a term's weight, inserting the term if new."""
        self.set_weight(term, self._weights.get(term, 0.0) + delta)

    # -- derived quantities ----------------------------------------------------

    def average_weight(self) -> float:
        """``a_q`` of the Section 5.1 term-weight normalization."""
        if not self._weights:
            return 0.0
        return sum(self._weights.values()) / len(self._weights)

    def copy(self) -> "QueryVector":
        return QueryVector(self._weights)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryVector):
            return NotImplemented
        return self._weights == other._weights

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{t}:{w:.3g}" for t, w in self._weights.items())
        return f"QueryVector({inner})"
