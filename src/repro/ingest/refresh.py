"""Incremental recomputation of the per-keyword score matrix.

Given the dirty-keyword classification of
:class:`repro.ingest.tracker.DirtyKeywordTracker`, this module rebuilds only
what a mutation batch actually invalidated:

* **clean columns are carried** from the previous ranker by reference —
  their restart vector and transfer matrix are unchanged, and the blocked
  engine is deterministic, so a from-scratch rebuild would reproduce exactly
  the same floats;
* **dirty columns are re-converged** through
  :func:`repro.ranking.batch.batched_keyword_vectors`.  In ``"exact"`` mode
  they start cold (uniform ``1/n``), which makes the refreshed matrix
  *bit-identical* to a full precompute over the mutated graph while running
  strictly fewer fixpoints on localized mutations.  In ``"warm"`` mode they
  start from their previous fixpoints mapped onto the new node set (the
  paper's Section 6.2 warm start) — fewer iterations, scores equal to the
  full rebuild up to the convergence tolerance rather than bit-for-bit.

A topology mutation dirties every column; a transfer-rate change or a
missing/mismatched previous ranker forces a full rebuild outright.  The
vocabulary is always derived from the *new* index in its insertion order, so
the refreshed keyword order matches what ``PrecomputedRanker(graph, index)``
would produce — the two are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.index import InvertedIndex
from repro.ranking.batch import batched_keyword_vectors
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
)
from repro.ranking.precompute import PrecomputedRanker

REFRESH_MODES = ("exact", "warm")


@dataclass(frozen=True)
class RefreshedVectors:
    """Outcome of one incremental refresh of the keyword→score matrix.

    ``vectors`` holds every keyword's authority vector in vocabulary order
    (recomputed columns are fresh arrays, carried columns reference the
    previous ranker's).  ``recomputed``/``carried`` name the columns each
    way; ``iterations`` is the total power-iteration work of the refresh.
    """

    vectors: dict[str, np.ndarray]
    recomputed: tuple[str, ...]
    carried: tuple[str, ...]
    iterations: int
    full_rebuild: bool


def _warm_start_inits(
    graph: AuthorityTransferDataGraph,
    previous: PrecomputedRanker,
    keywords: Iterable[str],
) -> dict[str, np.ndarray]:
    """Previous fixpoints mapped onto the new node set, renormalized.

    Surviving nodes keep their score, new nodes get the uniform prior, and
    each seed is rescaled to unit mass (same discipline as
    :meth:`repro.query.live.LiveSearchEngine.carry_over_scores`).
    """
    old_ids = previous.node_ids
    new_ids = graph.node_ids
    n = graph.num_nodes
    rows: np.ndarray | None = None
    if new_ids != old_ids:
        old_pos = {node_id: i for i, node_id in enumerate(old_ids)}
        rows = np.array([old_pos.get(nid, -1) for nid in new_ids], dtype=np.int64)
    inits: dict[str, np.ndarray] = {}
    for keyword in keywords:
        if not previous.has_keyword(keyword):
            continue
        old = previous.vector(keyword)
        if rows is None:
            seed = old.copy()
        else:
            seed = np.full(n, 1.0 / n if n else 0.0)
            mask = rows >= 0
            seed[mask] = old[rows[mask]]
        total = seed.sum()
        if total > 0.0:
            seed = seed / total
        inits[keyword] = seed
    return inits


def refreshed_keyword_vectors(
    graph: AuthorityTransferDataGraph,
    index: InvertedIndex,
    previous: PrecomputedRanker | None,
    dirty_keywords: Iterable[str],
    topology_dirty: bool,
    keywords: list[str] | None = None,
    min_document_frequency: int = 2,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    workers: int | None = None,
    mode: str = "exact",
) -> RefreshedVectors:
    """Refresh the keyword→score matrix for a mutated graph.

    ``graph``/``index`` describe the *post-mutation* state; ``previous`` is
    the ranker produced by the last refresh (or ``None`` on first build).
    ``dirty_keywords``/``topology_dirty`` come from the tracker snapshot
    that covers exactly the mutations between ``previous`` and ``graph`` —
    carrying is only sound with that pairing, and the caller
    (:class:`repro.ingest.engine.IngestEngine`) maintains it.
    """
    if mode not in REFRESH_MODES:
        raise ValueError(f"mode must be one of {REFRESH_MODES}, got {mode!r}")
    if keywords is not None:
        vocabulary = list(dict.fromkeys(keywords))
    else:
        vocabulary = [
            term
            for term in index.vocabulary()
            if index.document_frequency(term) >= min_document_frequency
        ]
    rates_changed = (
        previous is not None
        and previous.rates_snapshot != graph.transfer_schema
    )
    full_rebuild = previous is None or rates_changed
    carry = not full_rebuild and not topology_dirty
    if carry:
        dirty = set(dirty_keywords)
        recompute = [
            word
            for word in vocabulary
            if word in dirty or not previous.has_keyword(word)
        ]
    else:
        recompute = list(vocabulary)

    init = None
    if mode == "warm" and previous is not None and not rates_changed:
        init = _warm_start_inits(graph, previous, recompute)
    built = batched_keyword_vectors(
        graph, index, recompute, damping, tolerance, max_iterations,
        workers=workers, init=init,
    )

    vectors: dict[str, np.ndarray] = {}
    carried: list[str] = []
    for word in vocabulary:
        result = built.get(word)
        if result is not None:
            vectors[word] = result.scores
        elif carry and previous.has_keyword(word):
            vectors[word] = previous.vector(word)
            carried.append(word)
        # else: the keyword matches no document — a full rebuild would skip
        # it too (no authority vector exists for an empty base set).
    return RefreshedVectors(
        vectors=vectors,
        recomputed=tuple(word for word in vocabulary if word in built),
        carried=tuple(carried),
        iterations=int(sum(result.iterations for result in built.values())),
        full_rebuild=full_rebuild,
    )
