"""Incremental ingest: online maintenance of the precomputed score matrix.

The paper's Section 6.2 precomputation remedy assumes a frozen database;
this package keeps it honest under change.  Mutations (add/remove a paper,
citation or author; rewrite attributes) apply to a working copy of the
graph, a :class:`~repro.ingest.tracker.DirtyKeywordTracker` maps each one to
the precomputed columns it invalidates, and
:meth:`~repro.ingest.engine.IngestEngine.refresh` re-converges *only those
columns* — bit-identical to a from-scratch precompute in ``"exact"`` mode,
warm-started from the previous fixpoints in ``"warm"`` mode.  The serve
tier layers ``/ingest`` and staleness-bounded serving on top
(:mod:`repro.serve.service`) and publishes refreshed snapshots through the
generation-swap store protocol (:mod:`repro.store.generations`).
"""

from repro.ingest.engine import IngestEngine, IngestStaleness, RefreshResult
from repro.ingest.mutations import (
    AddEdge,
    AddNode,
    Mutation,
    RemoveEdge,
    RemoveNode,
    UpdateNode,
    mutation_from_json,
)
from repro.ingest.refresh import (
    REFRESH_MODES,
    RefreshedVectors,
    refreshed_keyword_vectors,
)
from repro.ingest.tracker import DirtyKeywordTracker

__all__ = [
    "AddEdge",
    "AddNode",
    "DirtyKeywordTracker",
    "IngestEngine",
    "IngestStaleness",
    "Mutation",
    "REFRESH_MODES",
    "RefreshResult",
    "RefreshedVectors",
    "RemoveEdge",
    "RemoveNode",
    "UpdateNode",
    "mutation_from_json",
    "refreshed_keyword_vectors",
]
