"""Dirty-keyword tracking for online precompute maintenance.

The precomputed keyword→score matrix has one column per vocabulary keyword.
A mutation invalidates columns in one of two ways:

* **content-only** (attribute update on an existing node): the node set and
  the transfer matrix are unchanged, so only keywords whose *base set*
  changed — terms that entered or left the node's document, i.e. the
  symmetric difference of its old and new term sets — have a different
  restart vector.  Term-frequency changes alone dirty nothing: base weights
  are uniform over matching documents, so membership is all that matters.
* **topology** (node/edge added or removed): the matrix ``A`` (and possibly
  the dimension ``n``) changes, which perturbs *every* column's fixpoint —
  all columns are dirty.

The tracker accumulates that classification between refreshes.  It is not
thread-safe by itself; :class:`repro.ingest.engine.IngestEngine` serializes
access under its own lock.
"""

from __future__ import annotations

from typing import Iterable


class DirtyKeywordTracker:
    """Accumulates which precomputed columns the pending mutations dirtied."""

    def __init__(self) -> None:
        self._dirty: set[str] = set()
        self._topology = False
        self._pending = 0

    def note_content(self, keywords: Iterable[str]) -> None:
        """Record a content-only mutation dirtying exactly ``keywords``."""
        self._dirty.update(keywords)
        self._pending += 1

    def note_topology(self) -> None:
        """Record a topology mutation (every column is dirty)."""
        self._topology = True
        self._pending += 1

    @property
    def dirty_keywords(self) -> frozenset[str]:
        """Keywords whose base sets changed since the last refresh."""
        return frozenset(self._dirty)

    @property
    def topology_dirty(self) -> bool:
        """Whether any pending mutation changed the graph topology."""
        return self._topology

    @property
    def pending(self) -> int:
        """Mutations recorded since the last refresh (or clear)."""
        return self._pending

    def snapshot(self) -> tuple[frozenset[str], bool, int]:
        """The current ``(dirty keywords, topology flag, pending count)``."""
        return frozenset(self._dirty), self._topology, self._pending

    def clear(self) -> None:
        """Reset after a successful refresh consumed the recorded dirt."""
        self._dirty.clear()
        self._topology = False
        self._pending = 0

    def merge(
        self, dirty: frozenset[str], topology: bool, pending: int
    ) -> None:
        """Fold a snapshot back in (a refresh that failed mid-build must
        restore the dirt it froze, on top of anything recorded since)."""
        self._dirty.update(dirty)
        self._topology = self._topology or topology
        self._pending += pending

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DirtyKeywordTracker(pending={self._pending}, "
            f"dirty={len(self._dirty)}, topology={self._topology})"
        )
