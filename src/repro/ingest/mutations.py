"""Typed mutation records for incremental ingest.

A mutation is a small frozen value object describing one change to the data
graph: add/remove an object (paper, author, venue — any labeled node),
add/remove a relationship (citation, authorship), or replace an object's
attributes.  Mutations arrive either programmatically (constructed directly
and handed to :class:`repro.ingest.engine.IngestEngine`) or as JSON over the
serve tier's ``/ingest`` endpoint, where :func:`mutation_from_json` parses
and validates them.

The JSON wire shape is ``{"op": <name>, ...}``::

    {"op": "add_node",    "node_id": "p1", "label": "Paper",
                          "attributes": {"title": "..."}}
    {"op": "remove_node", "node_id": "p1"}
    {"op": "add_edge",    "source": "p1", "target": "p2", "role": "cites"}
    {"op": "remove_edge", "source": "p1", "target": "p2", "role": "cites"}
    {"op": "update_node", "node_id": "p1", "attributes": {"title": "..."}}

``role`` is optional on edges (matching :class:`repro.graph.data_graph`
semantics).  Malformed payloads raise :class:`repro.errors.IngestError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import IngestError


@dataclass(frozen=True)
class AddNode:
    """Insert one object into the data graph."""

    node_id: str
    label: str
    attributes: dict[str, str] = field(default_factory=dict)

    op = "add_node"

    def describe(self) -> dict:
        """JSON-shaped echo of this mutation (for responses and logs)."""
        return {"op": self.op, "node_id": self.node_id, "label": self.label}


@dataclass(frozen=True)
class RemoveNode:
    """Remove one object (and every edge incident to it)."""

    node_id: str

    op = "remove_node"

    def describe(self) -> dict:
        """JSON-shaped echo of this mutation (for responses and logs)."""
        return {"op": self.op, "node_id": self.node_id}


@dataclass(frozen=True)
class AddEdge:
    """Insert one relationship between existing objects."""

    source: str
    target: str
    role: str | None = None

    op = "add_edge"

    def describe(self) -> dict:
        """JSON-shaped echo of this mutation (for responses and logs)."""
        return {
            "op": self.op,
            "source": self.source,
            "target": self.target,
            "role": self.role,
        }


@dataclass(frozen=True)
class RemoveEdge:
    """Remove one relationship (any role when ``role`` is ``None``)."""

    source: str
    target: str
    role: str | None = None

    op = "remove_edge"

    def describe(self) -> dict:
        """JSON-shaped echo of this mutation (for responses and logs)."""
        return {
            "op": self.op,
            "source": self.source,
            "target": self.target,
            "role": self.role,
        }


@dataclass(frozen=True)
class UpdateNode:
    """Replace one object's attributes (topology untouched)."""

    node_id: str
    attributes: dict[str, str] = field(default_factory=dict)

    op = "update_node"

    def describe(self) -> dict:
        """JSON-shaped echo of this mutation (for responses and logs)."""
        return {"op": self.op, "node_id": self.node_id}


Mutation = Union[AddNode, RemoveNode, AddEdge, RemoveEdge, UpdateNode]


def _require_str(obj: dict, key: str, op: str) -> str:
    value = obj.get(key)
    if not isinstance(value, str) or not value:
        raise IngestError(f"{op}: {key!r} must be a non-empty string")
    return value


def _optional_role(obj: dict, op: str) -> str | None:
    role = obj.get("role")
    if role is not None and not isinstance(role, str):
        raise IngestError(f"{op}: 'role' must be a string or omitted")
    return role


def _attributes(obj: dict, op: str) -> dict[str, str]:
    attributes = obj.get("attributes", {})
    if not isinstance(attributes, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in attributes.items()
    ):
        raise IngestError(f"{op}: 'attributes' must map strings to strings")
    return dict(attributes)


def mutation_from_json(obj: object) -> Mutation:
    """Parse one wire-format mutation dict into its typed record.

    Raises :class:`~repro.errors.IngestError` on an unknown ``op`` or a
    malformed field — the serve tier maps that to a per-mutation error entry
    rather than failing the whole batch.
    """
    if not isinstance(obj, dict):
        raise IngestError(f"mutation must be an object, got {type(obj).__name__}")
    op = obj.get("op")
    if op == "add_node":
        return AddNode(
            _require_str(obj, "node_id", op),
            _require_str(obj, "label", op),
            _attributes(obj, op),
        )
    if op == "remove_node":
        return RemoveNode(_require_str(obj, "node_id", op))
    if op == "add_edge":
        return AddEdge(
            _require_str(obj, "source", op),
            _require_str(obj, "target", op),
            _optional_role(obj, op),
        )
    if op == "remove_edge":
        return RemoveEdge(
            _require_str(obj, "source", op),
            _require_str(obj, "target", op),
            _optional_role(obj, op),
        )
    if op == "update_node":
        return UpdateNode(
            _require_str(obj, "node_id", op), _attributes(obj, op)
        )
    raise IngestError(f"unknown mutation op: {op!r}")
