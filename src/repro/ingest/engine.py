"""The ingest engine: buffered mutations with incremental precompute refresh.

:class:`IngestEngine` owns a *working copy* of a dataset's data graph and
inverted index.  Mutations apply to the working copy immediately (and are
classified by :class:`repro.ingest.tracker.DirtyKeywordTracker`), while
readers keep using whatever snapshot the last :meth:`IngestEngine.refresh`
produced — the serve tier swaps that snapshot in atomically and publishes
its ranker through the generation-swap store protocol.

Thread safety: every mutation and every state read runs under the engine's
lock; :meth:`refresh` freezes the working state (graph copy, index copy,
tracker snapshot) under the lock and runs the expensive fixpoint work
outside it, so mutations keep landing while a refresh converges.  If the
build fails, the frozen dirt is merged back so no invalidation is lost.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import IngestError
from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.graph.data_graph import DataGraph, DataNode
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ingest.mutations import (
    AddEdge,
    AddNode,
    Mutation,
    RemoveEdge,
    RemoveNode,
    UpdateNode,
)
from repro.ingest.refresh import refreshed_keyword_vectors
from repro.ingest.tracker import DirtyKeywordTracker
from repro.ir.index import InvertedIndex
from repro.ir.tokenize import DEFAULT_ANALYZER, Analyzer
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
)
from repro.ranking.precompute import PrecomputedRanker


@dataclass(frozen=True)
class IngestStaleness:
    """How far the working state has drifted from the served snapshot."""

    pending_mutations: int
    dirty_columns: int
    topology_dirty: bool

    def as_dict(self) -> dict:
        """JSON-shaped form (the serve tier's ``staleness`` field)."""
        return {
            "pending_mutations": self.pending_mutations,
            "dirty_columns": self.dirty_columns,
            "topology_dirty": self.topology_dirty,
        }


@dataclass(frozen=True)
class RefreshResult:
    """Everything one refresh produced: the snapshot and its bookkeeping.

    ``ranker`` is ``None`` when the refresh ran with ``precompute=False``
    (live-only serving).  ``recomputed``/``carried`` report the incremental
    split; ``full_rebuild`` flags the degenerate cases (first build, rate
    change, mismatched previous ranker) where nothing could be carried.
    """

    ranker: PrecomputedRanker | None
    graph: AuthorityTransferDataGraph
    data_graph: DataGraph
    index: InvertedIndex
    epoch: int
    mode: str
    full_rebuild: bool
    recomputed: tuple[str, ...]
    carried: tuple[str, ...]
    iterations: int
    pending_consumed: int
    elapsed_seconds: float


class IngestEngine:
    """Mutation buffer + dirty-keyword tracking + incremental refresh."""

    def __init__(
        self,
        data_graph: DataGraph,
        transfer_schema: AuthorityTransferSchemaGraph,
        analyzer: Analyzer = DEFAULT_ANALYZER,
        damping: float = DEFAULT_DAMPING,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        min_document_frequency: int = 2,
        min_coverage: float = 1.0,
        validate: bool = True,
    ) -> None:
        self.transfer_schema = transfer_schema
        self.analyzer = analyzer
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.min_document_frequency = min_document_frequency
        self.min_coverage = min_coverage
        self._validate = validate
        self._lock = threading.Lock()
        #: guarded by self._lock
        self._data_graph = data_graph.copy()
        #: guarded by self._lock
        self._index = InvertedIndex.from_graph(self._data_graph, analyzer)
        #: guarded by self._lock
        self._tracker = DirtyKeywordTracker()
        #: guarded by self._lock
        self._epoch = 0

    # -- mutations ---------------------------------------------------------

    def add_node(
        self, node_id: str, label: str, attributes: dict[str, str] | None = None
    ) -> DataNode:
        """Insert an object into the working graph (a topology mutation)."""
        with self._lock:
            node = self._data_graph.add_node(node_id, label, attributes)
            self._index.add_document(node_id, node.text())
            self._tracker.note_topology()
            return node

    def remove_node(self, node_id: str) -> DataNode:
        """Remove an object and its incident edges (a topology mutation)."""
        with self._lock:
            node = self._data_graph.remove_node(node_id)
            self._index.remove_document(node_id)
            self._tracker.note_topology()
            return node

    def add_edge(self, source: str, target: str, role: str | None = None) -> None:
        """Insert a relationship (a topology mutation)."""
        with self._lock:
            self._data_graph.add_edge(source, target, role)
            self._tracker.note_topology()

    def remove_edge(self, source: str, target: str, role: str | None = None) -> None:
        """Remove a relationship (a topology mutation)."""
        with self._lock:
            self._data_graph.remove_edge(source, target, role)
            self._tracker.note_topology()

    def update_node(self, node_id: str, attributes: dict[str, str]) -> DataNode:
        """Replace an object's attributes (a content-only mutation).

        Dirties exactly the keywords whose base-set membership the rewrite
        changed: the symmetric difference of the document's old and new term
        sets.  Term-frequency-only changes dirty nothing — base weights are
        uniform over matching documents.
        """
        with self._lock:
            old_terms = set(self._index.terms_of_document(node_id))
            node = self._data_graph.update_attributes(node_id, attributes)
            self._index.add_document(node_id, node.text())
            new_terms = set(self._index.terms_of_document(node_id))
            self._tracker.note_content(old_terms ^ new_terms)
            return node

    def apply(self, mutation: Mutation) -> None:
        """Apply one typed mutation record (the wire-format entry point)."""
        if isinstance(mutation, AddNode):
            self.add_node(mutation.node_id, mutation.label, mutation.attributes)
        elif isinstance(mutation, RemoveNode):
            self.remove_node(mutation.node_id)
        elif isinstance(mutation, AddEdge):
            self.add_edge(mutation.source, mutation.target, mutation.role)
        elif isinstance(mutation, RemoveEdge):
            self.remove_edge(mutation.source, mutation.target, mutation.role)
        elif isinstance(mutation, UpdateNode):
            self.update_node(mutation.node_id, mutation.attributes)
        else:
            raise IngestError(f"unknown mutation type: {type(mutation).__name__}")

    # -- state -------------------------------------------------------------

    @property
    def pending_mutations(self) -> int:
        """Successful mutations not yet consumed by a refresh."""
        with self._lock:
            return self._tracker.pending

    @property
    def dirty_keywords(self) -> frozenset[str]:
        """Keywords whose base sets the pending mutations changed."""
        with self._lock:
            return self._tracker.dirty_keywords

    @property
    def topology_dirty(self) -> bool:
        """Whether any pending mutation changed the graph topology."""
        with self._lock:
            return self._tracker.topology_dirty

    @property
    def graph_version(self) -> int:
        """The working data graph's mutation counter."""
        with self._lock:
            return self._data_graph.version

    @property
    def epoch(self) -> int:
        """Number of successful refreshes so far."""
        with self._lock:
            return self._epoch

    def staleness(self) -> IngestStaleness:
        """Pending-mutation and dirty-column counts for staleness bounds.

        ``dirty_columns`` counts precomputable columns (document frequency
        at or above ``min_document_frequency``) the pending batch dirtied —
        the whole vocabulary after a topology mutation.
        """
        with self._lock:
            dirty, topology, pending = self._tracker.snapshot()
            if topology:
                columns = sum(
                    1
                    for term in self._index.vocabulary()
                    if self._index.document_frequency(term)
                    >= self.min_document_frequency
                )
            else:
                columns = sum(
                    1
                    for term in dirty
                    if self._index.document_frequency(term)
                    >= self.min_document_frequency
                )
            return IngestStaleness(pending, columns, topology)

    # -- refresh -----------------------------------------------------------

    def refresh(
        self,
        previous: PrecomputedRanker | None = None,
        rates: AuthorityTransferSchemaGraph | None = None,
        mode: str = "exact",
        workers: int | None = None,
        precompute: bool = True,
    ) -> RefreshResult:
        """Produce a fresh serving snapshot from the working state.

        Freezes the working graph/index and the accumulated dirt under the
        lock, then re-converges only the dirty columns (relative to
        ``previous``, which must be the ranker of the *last* refresh — any
        other pairing forces a full rebuild via the rate/graph-version
        staleness check rather than silently carrying wrong columns).
        Mutations arriving during the build land in the next refresh.  On a
        build failure the frozen dirt is merged back into the tracker.
        """
        started = time.perf_counter()
        with self._lock:
            data_graph = self._data_graph.copy()
            index = self._index.copy()
            dirty, topology, pending = self._tracker.snapshot()
            # A fresh tracker (not .clear()) so a failed build can merge the
            # frozen dirt into whatever newer mutations accumulated meanwhile.
            self._tracker = DirtyKeywordTracker()
        try:
            graph = AuthorityTransferDataGraph(
                data_graph,
                rates if rates is not None else self.transfer_schema,
                validate=self._validate,
            )
            if precompute:
                outcome = refreshed_keyword_vectors(
                    graph,
                    index,
                    previous,
                    dirty,
                    topology,
                    min_document_frequency=self.min_document_frequency,
                    damping=self.damping,
                    tolerance=self.tolerance,
                    max_iterations=self.max_iterations,
                    workers=workers,
                    mode=mode,
                )
                ranker = PrecomputedRanker.from_vectors(
                    graph,
                    index,
                    outcome.vectors,
                    damping=self.damping,
                    min_coverage=self.min_coverage,
                    build_iterations=outcome.iterations,
                )
                recomputed, carried = outcome.recomputed, outcome.carried
                iterations, full = outcome.iterations, outcome.full_rebuild
            else:
                ranker = None
                recomputed, carried = (), ()
                iterations, full = 0, previous is None
        except BaseException:
            with self._lock:
                self._tracker.merge(dirty, topology, pending)
            raise
        with self._lock:
            self._epoch += 1
            epoch = self._epoch
        return RefreshResult(
            ranker=ranker,
            graph=graph,
            data_graph=data_graph,
            index=index,
            epoch=epoch,
            mode=mode,
            full_rebuild=full,
            recomputed=recomputed,
            carried=carried,
            iterations=iterations,
            pending_consumed=pending,
            elapsed_seconds=time.perf_counter() - started,
        )
