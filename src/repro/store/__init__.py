"""Shared-memory score stores: mmap-able precomputed matrices + generations.

The serving tier's read-mostly asset — the [BHP04]-style precomputed
keyword→score matrix — exported to a versioned, checksummed on-disk slab
that N worker processes mmap read-only and slice zero-copy, plus the
generation-numbered swap protocol that lets rebuilds and applied
reformulations go live without blocking serving or tearing a reader.

Typical flow::

    from repro.store import build_and_publish, StoreManager

    build_and_publish(store_root, precomputed_ranker, dataset="dblp_complete")

    manager = StoreManager(store_root)
    ranker = manager.ranker()        # MmapScoreRanker over the current gen
    result = ranker.rank(query_vector)   # bit-identical to PrecomputedRanker

See :mod:`repro.storage.slab` for the container format and
:mod:`repro.serve.cluster` for the prefork tier built on top.
"""

from repro.store.format import KIND, ScoreStore, write_score_store
from repro.store.generations import (
    MANIFEST_NAME,
    Manifest,
    StoreManager,
    build_and_publish,
    list_generations,
    next_generation,
    prune_generations,
    publish_manifest,
    read_manifest,
    store_path,
)
from repro.store.ranker import MmapScoreRanker

__all__ = [
    "KIND",
    "MANIFEST_NAME",
    "Manifest",
    "MmapScoreRanker",
    "ScoreStore",
    "StoreManager",
    "build_and_publish",
    "list_generations",
    "next_generation",
    "prune_generations",
    "publish_manifest",
    "read_manifest",
    "store_path",
    "write_score_store",
]
