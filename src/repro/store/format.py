"""The on-disk score store: precomputed keyword→score matrix as one slab.

A score store freezes everything the serving tier's precomputed fast path
needs — the per-keyword ObjectRank vectors of
:class:`repro.ranking.precompute.PrecomputedRanker`, the vocabulary, the
node-id table, the per-keyword idf weights and the transfer-rate vector the
vectors were computed under — into one :mod:`repro.storage.slab` file that
worker processes mmap read-only and slice zero-copy.

Sections (``KIND = "repro-score-store"`` in the slab meta):

================  ===========================================================
``scores``        float64 ``(num_keywords, num_nodes)`` — row ``i`` is the
                  authority vector of keyword ``i`` (column-slab layout: one
                  contiguous row per keyword, so a query touches exactly the
                  rows of its terms)
``idf``           float64 ``(num_keywords,)`` — BM25 idf per keyword, frozen
                  at build time so query-time blending needs no index
``keyword_blob``  utf-8 bytes of all keywords concatenated
``keyword_offsets``  int64 ``(num_keywords + 1,)`` — blob slice bounds
``node_blob``     utf-8 bytes of all node ids concatenated
``node_offsets``  int64 ``(num_nodes + 1,)``
``rates``         float64 — the transfer-rate vector in canonical edge-type
                  order (the store's staleness fingerprint)
================  ===========================================================

The meta object carries ``dataset``, ``generation``, ``damping``,
``edge_types`` (canonical ``str(EdgeType)`` names matching ``rates``) and
``build_iterations``.  Scores are assembled on hugepage-backed slabs
(:func:`repro.ranking._native.slab_empty`) before the write — the same
aligned-buffer builder the blocked kernel uses.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import StoreError
from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.ranking._native import slab_empty
from repro.ranking.precompute import PrecomputedRanker
from repro.storage.slab import SlabFile, SlabFormatError, write_slab

KIND = "repro-score-store"


def _pack_strings(values: list[str]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate strings into a utf-8 blob + int64 offsets array."""
    encoded = [value.encode("utf-8") for value in values]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum([len(e) for e in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    return blob, offsets


def _unpack_strings(blob: np.ndarray, offsets: np.ndarray) -> list[str]:
    raw = blob.tobytes()
    return [
        raw[offsets[i] : offsets[i + 1]].decode("utf-8")
        for i in range(len(offsets) - 1)
    ]


def write_score_store(
    path: str | os.PathLike,
    ranker: PrecomputedRanker,
    dataset: str,
    generation: int,
    fsync: bool = True,
) -> int:
    """Export a built :class:`PrecomputedRanker` as one slab file.

    The exported vectors, idf weights and rate vector are byte-exact copies
    of the ranker's in-memory state, so a query answered from the mmap store
    is bit-identical to one answered by the ranker itself (see
    :class:`repro.store.ranker.MmapScoreRanker`).  Returns the file size.
    """
    keywords = ranker.keywords
    num_nodes = ranker.graph.num_nodes
    # Hugepage-backed assembly slab: the write streams it once, and builds
    # at paper scale (1e6 nodes x 1e4 keywords) touch it row-by-row first.
    scores = slab_empty((len(keywords), num_nodes))
    idf = np.empty(len(keywords))
    for row, keyword in enumerate(keywords):
        scores[row] = ranker.vector(keyword)
        idf[row] = ranker.keyword_idf(keyword)
    keyword_blob, keyword_offsets = _pack_strings(keywords)
    node_blob, node_offsets = _pack_strings(list(ranker.graph.node_ids))
    snapshot = ranker.rates_snapshot
    rates = np.asarray(snapshot.as_vector(), dtype=np.float64)
    meta = {
        "kind": KIND,
        "dataset": dataset,
        "generation": int(generation),
        "damping": ranker.damping,
        "num_keywords": len(keywords),
        "num_nodes": num_nodes,
        "edge_types": [str(edge_type) for edge_type in snapshot.edge_types()],
        "build_iterations": ranker.build_iterations,
        "graph_version": ranker.graph_version,
    }
    return write_slab(
        path,
        {
            "scores": scores,
            "idf": idf,
            "keyword_blob": keyword_blob,
            "keyword_offsets": keyword_offsets,
            "node_blob": node_blob,
            "node_offsets": node_offsets,
            "rates": rates,
        },
        meta=meta,
        fsync=fsync,
    )


class ScoreStore:
    """A score store opened read-only; all array access is zero-copy.

    The instance is immutable after construction and safe to share across
    threads.  It pins the underlying mapping, so it keeps serving consistent
    data even after a generation swap replaces (or deletes) the file on disk
    — a reader is only ever entirely on one generation.
    """

    _REQUIRED = (
        "scores", "idf", "keyword_blob", "keyword_offsets",
        "node_blob", "node_offsets", "rates",
    )

    def __init__(self, path: str | os.PathLike, verify: bool = True) -> None:
        try:
            self._slab = SlabFile(path, verify=verify)
        except SlabFormatError as error:
            raise StoreError(str(error)) from None
        meta = self._slab.meta
        if meta.get("kind") != KIND:
            raise StoreError(
                f"{os.fspath(path)!r} is a slab but not a score store "
                f"(kind={meta.get('kind')!r})"
            )
        for name in self._REQUIRED:
            if name not in self._slab:
                raise StoreError(f"{os.fspath(path)!r}: missing section {name!r}")
        self.path = self._slab.path
        self.dataset: str = meta["dataset"]
        self.generation: int = int(meta["generation"])
        self.damping: float = float(meta["damping"])
        self.build_iterations: int = int(meta.get("build_iterations", 0))
        # Stores written before graph versioning carry no counter; 0 matches
        # an unmutated graph's version, so old stores read as fresh.
        self.graph_version: int = int(meta.get("graph_version", 0))
        self.edge_types: list[str] = list(meta["edge_types"])
        self.scores: np.ndarray = self._slab.array("scores")
        self.idf: np.ndarray = self._slab.array("idf")
        self.rates: np.ndarray = self._slab.array("rates")
        self.keywords: list[str] = _unpack_strings(
            self._slab.array("keyword_blob"), self._slab.array("keyword_offsets")
        )
        self.node_ids: list[str] = _unpack_strings(
            self._slab.array("node_blob"), self._slab.array("node_offsets")
        )
        if self.scores.shape != (len(self.keywords), len(self.node_ids)):
            raise StoreError(
                f"{self.path!r}: scores shape {self.scores.shape} does not "
                f"match {len(self.keywords)} keywords x "
                f"{len(self.node_ids)} nodes"
            )
        if len(self.rates) != len(self.edge_types):
            raise StoreError(
                f"{self.path!r}: {len(self.rates)} rates for "
                f"{len(self.edge_types)} edge types"
            )
        self._column: dict[str, int] = {
            keyword: row for row, keyword in enumerate(self.keywords)
        }

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    def has_keyword(self, keyword: str) -> bool:
        return keyword in self._column

    def vector(self, keyword: str) -> np.ndarray:
        """The keyword's authority vector as a zero-copy read-only view."""
        row = self._column.get(keyword)
        if row is None:
            raise StoreError(f"store has no vector for keyword {keyword!r}")
        return self.scores[row]

    def idf_of(self, keyword: str) -> float:
        row = self._column.get(keyword)
        if row is None:
            raise StoreError(f"store has no idf for keyword {keyword!r}")
        return float(self.idf[row])

    def matches_rates(self, rates: AuthorityTransferSchemaGraph) -> bool:
        """Whether ``rates`` equal the rates the store was built under.

        Compared on the canonical edge-type names and the exact rate floats
        — the same discriminator :meth:`PrecomputedRanker.is_stale` uses, so
        store-backed and in-memory serving route identically.
        """
        names = [str(edge_type) for edge_type in rates.edge_types()]
        if names != self.edge_types:
            return False
        current = np.asarray(rates.as_vector(), dtype=np.float64)
        return bool(np.array_equal(current, self.rates))

    def verify(self) -> None:
        """Recompute every section checksum against the mapped bytes."""
        self._slab.verify()

    def close(self) -> None:
        self._slab.close()

    def __enter__(self) -> "ScoreStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScoreStore(dataset={self.dataset!r}, gen={self.generation}, "
            f"{len(self.keywords)} keywords x {self.num_nodes} nodes)"
        )
