"""Query-time blending over an mmap'd score store, bit-identical to memory.

:class:`MmapScoreRanker` is the serving-tier twin of
:class:`repro.ranking.precompute.PrecomputedRanker`: same coverage rules,
same errors, same blend arithmetic — but the per-keyword vectors are
zero-copy views into a :class:`repro.store.format.ScoreStore` instead of
process-private arrays, so N prefork workers share one physical copy of the
matrix through the page cache.

Bit-identity matters because the serve tier's routing treats the two paths
as interchangeable: the blend iterates the query terms in their canonical
order, multiplies by the *stored* idf (the exact float the in-memory ranker
would recompute), and normalizes with the same accumulation order, so
``rank`` returns byte-identical scores to the ranker the store was exported
from.  The store smoke benchmark asserts exactly this across processes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyBaseSetError, PrecomputedCoverageError
from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.query.query import QueryVector
from repro.ranking.convergence import RankedResult
from repro.store.format import ScoreStore


class MmapScoreRanker:
    """Per-keyword blending served from an open score store.

    Instances are immutable and safe to share across the threads of one
    worker; they pin the store's mapping, so an in-flight request keeps its
    generation even while a swap publishes the next one.
    """

    def __init__(self, store: ScoreStore, min_coverage: float = 1.0) -> None:
        if not 0.0 <= min_coverage <= 1.0:
            raise ValueError(f"min_coverage must be in [0, 1], got {min_coverage}")
        self.store = store
        self.min_coverage = min_coverage

    # -- parity with PrecomputedRanker --------------------------------------

    @property
    def keywords(self) -> list[str]:
        return list(self.store.keywords)

    @property
    def generation(self) -> int:
        return self.store.generation

    @property
    def build_iterations(self) -> int:
        return self.store.build_iterations

    @property
    def node_ids(self) -> list[str]:
        return list(self.store.node_ids)

    @property
    def graph_version(self) -> int:
        return self.store.graph_version

    def has_keyword(self, keyword: str) -> bool:
        return self.store.has_keyword(keyword)

    def coverage(self, query_vector: QueryVector) -> float:
        """Fraction of the query's positive term weight held by the store."""
        considered = [
            (term, query_vector.weight(term))
            for term in query_vector.terms
            if query_vector.weight(term) > 0
        ]
        total = sum(weight for _, weight in considered)
        if total <= 0:
            return 0.0
        cached = sum(
            weight for term, weight in considered if self.store.has_keyword(term)
        )
        return cached / total

    def is_stale(
        self,
        rates: AuthorityTransferSchemaGraph,
        graph_version: int | None = None,
    ) -> bool:
        """Whether the serving rates (or, when given, the graph) moved on.

        The graph check is opt-in: a cluster worker has no local mutation
        counter to compare against (mutations happen on the builder side and
        arrive as whole generations), so only a caller that *knows* the
        current data-graph version — the ingest-enabled builder — passes
        one.
        """
        if not self.store.matches_rates(rates):
            return True
        return (
            graph_version is not None
            and graph_version != self.store.graph_version
        )

    def rank(self, query_vector: QueryVector) -> RankedResult:
        """Blend stored vectors for the query's cached keywords.

        Mirrors :meth:`PrecomputedRanker.rank` term for term — same
        iteration order, same ``max(idf, 1e-6)`` floor, same accumulate /
        normalize sequence — so the scores are bit-identical to the ranker
        the store was exported from.  Raises the same
        :class:`~repro.errors.EmptyBaseSetError` /
        :class:`~repro.errors.PrecomputedCoverageError` for the same inputs,
        so the service's live-fallback routing is unchanged.
        """
        blended = np.zeros(self.store.num_nodes)
        total_weight = 0.0
        matched: dict[str, float] = {}
        missing: list[str] = []
        considered_weight = 0.0
        covered_weight = 0.0
        for term in query_vector.terms:
            weight = query_vector.weight(term)
            if weight <= 0:
                continue
            considered_weight += weight
            if not self.store.has_keyword(term):
                missing.append(term)
                continue
            covered_weight += weight
            blend_weight = weight * max(self.store.idf_of(term), 1e-6)
            blended += blend_weight * self.store.vector(term)
            total_weight += blend_weight
            matched[term] = blend_weight
        # Same guard as PrecomputedRanker: strictly positive accumulation,
        # <= 0.0 instead of == 0.0 so a subnormal sum cannot divide below,
        # and the considered_weight disjunct (implied by the first — terms
        # feed total_weight only after considered_weight) keeps the
        # coverage division locally provable.
        if total_weight <= 0.0 or considered_weight <= 0.0:
            raise EmptyBaseSetError(tuple(query_vector.terms))
        coverage = covered_weight / considered_weight
        if coverage < self.min_coverage:
            raise PrecomputedCoverageError(
                tuple(missing), coverage, self.min_coverage
            )
        blended /= total_weight
        return RankedResult(
            node_ids=self.store.node_ids,
            scores=blended,
            iterations=0,  # query time does no power iteration
            converged=True,
            base_weights={t: w / total_weight for t, w in matched.items()},
            coverage=coverage,
        )
