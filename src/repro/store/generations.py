"""Generation-numbered store publication and lock-free reader refresh.

Rebuilds (and applied reformulations that change the serving rates) must
never block serving and never tear a reader.  The protocol:

1. the builder writes ``store.gen-K.slab`` completely — the slab writer
   already goes through a temp file, ``os.replace`` and fsyncs, so the file
   is whole before it carries its final name;
2. the builder atomically replaces the ``CURRENT`` manifest (a one-line JSON
   naming the generation and its filename), again via temp + ``os.replace``
   + directory fsync;
3. readers poll the manifest *between* requests (a throttled ``read`` of a
   tiny file), open the new generation, verify its checksums, and swap one
   object reference.  In-flight requests keep the old :class:`ScoreStore`,
   whose mmap stays valid even after the file is pruned — POSIX keeps mapped
   pages alive until the last reference dies.

No cross-process locks anywhere: writers never touch a published file,
readers never write, and the only shared mutable state is the manifest,
updated with one atomic rename.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreError
from repro.ranking.precompute import PrecomputedRanker
from repro.store.format import ScoreStore, write_score_store
from repro.store.ranker import MmapScoreRanker

MANIFEST_NAME = "CURRENT"
_STORE_FILE = re.compile(r"^store\.gen-(\d+)\.slab$")


@dataclass(frozen=True)
class Manifest:
    """The published pointer: which generation file is current."""

    generation: int
    filename: str


def store_path(root: str | os.PathLike, generation: int) -> Path:
    """The canonical filename of one generation's slab."""
    return Path(root) / f"store.gen-{generation}.slab"


def list_generations(root: str | os.PathLike) -> list[int]:
    """All generation numbers with a slab file under ``root``, ascending."""
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return []
    found = []
    for name in names:
        match = _STORE_FILE.match(name)
        if match:
            found.append(int(match.group(1)))
    return sorted(found)


def read_manifest(root: str | os.PathLike) -> Manifest | None:
    """The current manifest, or ``None`` when nothing is published yet."""
    path = Path(root) / MANIFEST_NAME
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    try:
        data = json.loads(raw)
        return Manifest(int(data["generation"]), str(data["filename"]))
    except (KeyError, TypeError, ValueError) as error:
        raise StoreError(f"corrupt manifest {path}: {error}") from None


def next_generation(root: str | os.PathLike) -> int:
    """One past the newest generation on disk or in the manifest."""
    newest = 0
    generations = list_generations(root)
    if generations:
        newest = generations[-1]
    manifest = read_manifest(root)
    if manifest is not None:
        newest = max(newest, manifest.generation)
    return newest + 1


def publish_manifest(
    root: str | os.PathLike, generation: int, filename: str, fsync: bool = True
) -> Manifest:
    """Atomically flip ``CURRENT`` to one (fully written) generation file."""
    root = Path(root)
    target = root / filename
    if not target.exists():
        raise StoreError(f"cannot publish missing store file {target}")
    manifest = Manifest(generation, filename)
    temp = root / f".{MANIFEST_NAME}.tmp-{os.getpid()}"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump({"generation": generation, "filename": filename}, handle)
        handle.write("\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(temp, root / MANIFEST_NAME)
    if fsync:
        dir_fd = os.open(root, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return manifest


def prune_generations(root: str | os.PathLike, keep: int = 2) -> list[int]:
    """Unlink old generation files, keeping the ``keep`` newest (and always
    the published one).  Returns the pruned generation numbers.

    Safe against live readers: an unlinked file's mapping stays valid in
    every process that has it open, so pruning can run right after a swap.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    manifest = read_manifest(root)
    current = manifest.generation if manifest is not None else None
    generations = list_generations(root)
    doomed = [g for g in generations[:-keep] if g != current]
    for generation in doomed:
        try:
            os.unlink(store_path(root, generation))
        except OSError:
            pass  # already gone; pruning is best-effort
    return doomed


def build_and_publish(
    root: str | os.PathLike,
    ranker: PrecomputedRanker,
    dataset: str,
    keep: int = 2,
    fsync: bool = True,
) -> Manifest:
    """Write the next generation from ``ranker`` and flip the manifest."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    generation = next_generation(root)
    path = store_path(root, generation)
    write_score_store(path, ranker, dataset=dataset, generation=generation, fsync=fsync)
    manifest = publish_manifest(root, generation, path.name, fsync=fsync)
    prune_generations(root, keep=keep)
    return manifest


class StoreManager:
    """One dataset's view of its store directory, with generation refresh.

    ``ranker()`` returns the :class:`MmapScoreRanker` of the currently
    published generation, re-reading the manifest at most every
    ``refresh_seconds`` (0 checks on every call — a manifest read is a few
    microseconds and the open only happens on an actual flip).  A failed
    open of a *new* generation keeps the old ranker serving and counts an
    error, so a corrupt build can never take serving down.

    Thread-safe; the swap is one reference assignment under the lock, and
    callers hold whatever ranker they grabbed for their whole request —
    that per-request pin is the torn-read-free guarantee.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        min_coverage: float = 1.0,
        refresh_seconds: float = 0.0,
        clock=time.monotonic,
    ) -> None:
        self.root = Path(root)
        self.min_coverage = min_coverage
        self.refresh_seconds = refresh_seconds
        self._clock = clock
        self._lock = threading.Lock()
        #: guarded by self._lock
        self._ranker: MmapScoreRanker | None = None
        #: guarded by self._lock
        self._generation: int | None = None
        #: guarded by self._lock
        self._checked_at: float | None = None
        #: guarded by self._lock
        self._swaps = 0
        #: guarded by self._lock
        self._load_errors = 0

    # -- read side -----------------------------------------------------------

    def ranker(self) -> MmapScoreRanker | None:
        """The current generation's ranker (refreshing first); ``None`` when
        nothing is published."""
        self.refresh()
        with self._lock:
            return self._ranker

    @property
    def generation(self) -> int | None:
        with self._lock:
            return self._generation

    @property
    def swaps(self) -> int:
        """Completed generation swaps observed by this manager."""
        with self._lock:
            return self._swaps

    @property
    def load_errors(self) -> int:
        """Published generations this manager failed to open (kept serving)."""
        with self._lock:
            return self._load_errors

    def refresh(self, force: bool = False) -> bool:
        """Re-read the manifest; swap to a newly published generation.

        Returns ``True`` when the swap happened.  The expensive part (mmap +
        checksum verify) runs outside the lock; concurrent refreshes may
        both open the new store, in which case the second assignment wins —
        both objects are equivalent and immutable, so readers cannot tell.
        """
        now = self._clock()
        with self._lock:
            throttled = (
                not force
                and self._checked_at is not None
                and self.refresh_seconds > 0
                and now - self._checked_at < self.refresh_seconds
            )
            current = self._generation
            if throttled:
                return False
            self._checked_at = now
        try:
            manifest = read_manifest(self.root)
        except StoreError:
            manifest = None  # torn/corrupt manifest: keep serving as-is
        if manifest is None or manifest.generation == current:
            return False
        try:
            store = ScoreStore(self.root / manifest.filename)
            ranker = MmapScoreRanker(store, min_coverage=self.min_coverage)
        except StoreError:
            with self._lock:
                self._load_errors += 1
            return False
        with self._lock:
            self._ranker = ranker
            if self._generation is not None:
                self._swaps += 1
            self._generation = manifest.generation
        return True

    # -- write side ----------------------------------------------------------

    def publish(
        self, ranker: PrecomputedRanker, dataset: str, keep: int = 2,
        fsync: bool = True,
    ) -> Manifest:
        """Build-and-publish the next generation, then pick it up locally.

        ``fsync=False`` skips durability barriers — high-frequency ingest
        republishing (and benchmarks) can trade crash-durability of the
        newest generation for publish latency; the atomic-rename swap
        protocol itself does not depend on fsync for reader consistency.
        """
        manifest = build_and_publish(
            self.root, ranker, dataset, keep=keep, fsync=fsync
        )
        self.refresh(force=True)
        return manifest
