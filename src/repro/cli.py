"""Command-line interface: search, explain and reformulate from a terminal.

The paper's system shipped as a Web demo; this CLI is the library's
equivalent surface.  Subcommands:

* ``repro datasets`` — list the generatable datasets and their sizes;
* ``repro search <dataset> <keywords...>`` — top-k ObjectRank2 results;
* ``repro explain <dataset> <target-substring> <keywords...>`` — explaining
  subgraph of the first result whose id or title matches the substring;
  ``--batch K [--workers N]`` explains every matching top-K result in one
  batched pass through ``repro.explain.batch`` (target ``all`` matches all);
* ``repro feedback <dataset> <keywords...> --mark N [N...]`` — mark results
  by rank, reformulate, and show the reformulated ranking and learned rates;
* ``repro repl <dataset>`` — interactive search/explain/feedback shell;
* ``repro precompute <dataset> [--workers N]`` — offline per-keyword vector
  build through the blocked multi-restart engine (``repro.ranking.batch``);
* ``repro serve [datasets...]`` — concurrent HTTP query service with result
  caching, admission control and Prometheus metrics (see ``repro.serve``);
  ``--ingest`` adds the ``/ingest`` mutation endpoint with staleness-bounded
  online precompute maintenance (``--staleness-bound``, ``--refresh-mode``);
* ``repro ingest <dataset> --mutations FILE`` — apply a JSON mutation batch
  offline and re-converge only the dirty precomputed columns
  (``repro.ingest``); ``--store DIR`` publishes the refreshed matrix as the
  next store generation, ``--compare-full`` verifies bit-identity against a
  from-scratch rebuild;
* ``repro lint [paths...]`` — the project's invariant linter (RL001–RL013:
  six AST rules, the flow-sensitive RL007–RL009 and the interprocedural
  RL010–RL013 over the project call graph, see ``repro.analysis``) with
  text/JSON/GitHub/SARIF output, ``--jobs N`` process-pool parallelism,
  ``--changed`` git-scoped runs and baseline support.

All subcommands accept ``--scale`` and ``--seed`` for the dataset generator
and ``--top-k`` for the result-list length.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.errors import ReproError

# The query/ranking commands need numpy+scipy; ``repro lint`` must not (it
# runs in bare CI jobs in well under ten seconds).  Heavy imports therefore
# happen inside the command functions, not at module import time.


def _build_system(args: argparse.Namespace) -> tuple:
    from repro.core.config import SystemConfig
    from repro.core.system import ObjectRankSystem
    from repro.datasets import load_dataset

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    # Only `repro search` exposes retrieval-mode flags; the other commands
    # sharing this builder default to full retrieval.
    config = SystemConfig(
        top_k=args.top_k,
        retrieval_mode=getattr(args, "mode", "full").replace("-", "_"),
        candidates=getattr(args, "candidates", 200),
        fusion=getattr(args, "fusion", "weighted"),
        fusion_weight=getattr(args, "fusion_weight", 1.0),
        rerank_horizon=getattr(args, "horizon", 2),
        rerank_expand_cap=getattr(args, "expand_cap", None),
        rerank_node_budget=getattr(args, "node_budget", None),
        rerank_max_horizon=getattr(args, "max_horizon", None),
    )
    system = ObjectRankSystem(dataset.data_graph, dataset.transfer_schema, config)
    return dataset, system


def _caption(dataset, node_id: str) -> str:
    node = dataset.data_graph.node(node_id)
    name = (
        node.attributes.get("title")
        or node.attributes.get("name")
        or node.attributes.get("symbol")
        or node_id
    )
    return f"{node.label}: {name[:70]}"


def _print_results(dataset, result) -> None:
    for rank, (node_id, score) in enumerate(result.top, start=1):
        print(f"{rank:3d}. [{score:.5f}] {_caption(dataset, node_id)}")
    print(f"({result.iterations} ObjectRank2 iterations)")


def cmd_datasets(args: argparse.Namespace) -> int:
    """The ``repro datasets`` subcommand."""
    from repro.datasets import dataset_names, dataset_statistics, load_dataset

    for name in dataset_names():
        if args.sizes:
            stats = dataset_statistics(load_dataset(name, args.scale, args.seed))
            print(f"{name}: {stats.num_nodes} nodes, {stats.num_edges} edges")
        else:
            print(name)
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    """The ``repro search`` subcommand."""
    from repro.retrieval.engine import TwoStageSearchResult

    dataset, system = _build_system(args)
    result = system.query(" ".join(args.keywords))
    _print_results(dataset, result)
    if isinstance(result, TwoStageSearchResult) and result.stages is not None:
        stages = result.stages
        print(
            f"(two-stage: {stages.num_candidates} candidates -> "
            f"{stages.subgraph_nodes} nodes/{stages.subgraph_edges} edges "
            f"reranked, fusion={stages.fusion}; "
            f"stage1 {stages.stage1_seconds * 1000:.1f} ms, "
            f"stage2 {stages.stage2_seconds * 1000:.1f} ms)"
        )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """The ``repro explain`` subcommand."""
    from repro.explain.render import to_text

    dataset, system = _build_system(args)
    result = system.query(" ".join(args.keywords))
    needle = args.target.lower()

    def matches(node_id: str) -> bool:
        return (
            needle == "all"
            or needle in node_id.lower()
            or needle in _caption(dataset, node_id).lower()
        )

    if args.batch:
        targets = [nid for nid, _ in result.top[: args.batch] if matches(nid)]
        if not targets:
            print(
                f"no top-{args.batch} result matches {args.target!r}",
                file=sys.stderr,
            )
            return 1
        # One batched pass over every matching result (repro.explain.batch);
        # per target the output is identical to a serial `repro explain`.
        explanations = system.explain_many(targets, workers=args.workers)
        for node_id, explanation in zip(targets, explanations):
            print(f"=== {_caption(dataset, node_id)}")
            print(to_text(explanation, max_paths=args.paths))
        return 0

    target = next((nid for nid, _score in result.top if matches(nid)), None)
    if target is None:
        print(f"no top-{args.top_k} result matches {args.target!r}", file=sys.stderr)
        return 1
    explanation = system.explain(target)
    print(to_text(explanation, max_paths=args.paths))
    return 0


def cmd_feedback(args: argparse.Namespace) -> int:
    """The ``repro feedback`` subcommand."""
    dataset, system = _build_system(args)
    result = system.query(" ".join(args.keywords))
    print("initial results:")
    _print_results(dataset, result)
    try:
        marked = [result.top[rank - 1][0] for rank in args.mark]
    except IndexError:
        print(f"--mark ranks must be within the top {len(result.top)}", file=sys.stderr)
        return 1
    outcome = system.feedback(marked)
    print(f"\nmarked relevant: {', '.join(marked)}")
    print("reformulated query vector:")
    vector = outcome.reformulated.query_vector
    for term in vector.terms:
        print(f"  {term}: {vector.weight(term):.3f}")
    print("learned transfer rates:")
    schema = outcome.reformulated.transfer_schema
    for edge_type in schema.edge_types():
        print(f"  {edge_type}: {schema.rate(edge_type):.3f}")
    print("\nreformulated results:")
    _print_results(dataset, outcome.result)
    return 0


def cmd_precompute(args: argparse.Namespace) -> int:
    """The ``repro precompute`` subcommand: offline per-keyword vector build.

    Runs the [BHP04] precomputation (one authority vector per index keyword)
    through the blocked multi-restart engine, optionally across ``--workers``
    processes, and reports build statistics.  This is the offline half of the
    serving layer's precomputed fast path.
    """
    import time

    from repro.datasets import load_dataset
    from repro.query.engine import SearchEngine
    from repro.ranking.precompute import PrecomputedRanker

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
    vocabulary = [
        term
        for term in engine.index.vocabulary()
        if engine.index.document_frequency(term) >= args.min_df
    ]
    start = time.perf_counter()
    ranker = PrecomputedRanker(
        engine.graph,
        engine.index,
        keywords=args.keywords or None,
        min_document_frequency=args.min_df,
        workers=args.workers,
    )
    elapsed = time.perf_counter() - start
    built = len(ranker.keywords)
    print(f"dataset: {args.dataset} ({dataset.num_nodes} nodes, {dataset.num_edges} edges)")
    print(f"vocabulary terms with df >= {args.min_df}: {len(vocabulary)}")
    print(
        f"precomputed {built} keyword vectors in {elapsed:.2f}s "
        f"({ranker.build_iterations} power-iteration steps, "
        f"workers={args.workers or 1})"
    )
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """The ``repro ingest`` subcommand: offline incremental maintenance.

    Loads a dataset, builds its precomputed matrix, applies a JSON batch of
    mutations (the ``/ingest`` wire format: a list of ``{"op": ...}``
    objects) through :class:`repro.ingest.IngestEngine`, and re-converges
    only the dirty columns.  ``--compare-full`` additionally runs the
    from-scratch precompute on the mutated graph and verifies the
    incremental result is bit-identical; ``--store DIR`` publishes the
    refreshed matrix as the next store generation so live cluster workers
    pick it up.
    """
    import json
    import time
    from pathlib import Path

    from repro.datasets import load_dataset
    from repro.ingest import IngestEngine, mutation_from_json
    from repro.query.engine import SearchEngine
    from repro.ranking.precompute import PrecomputedRanker

    with open(args.mutations, encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, list):
        print(f"error: {args.mutations} must hold a JSON list", file=sys.stderr)
        return 2

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
    start = time.perf_counter()
    previous = PrecomputedRanker(
        engine.graph,
        engine.index,
        min_document_frequency=args.min_df,
        workers=args.workers,
    )
    base_built = time.perf_counter() - start
    print(
        f"dataset: {args.dataset} ({dataset.num_nodes} nodes, "
        f"{dataset.num_edges} edges); baseline precompute "
        f"{len(previous.keywords)} columns in {base_built:.2f}s"
    )

    ingest = IngestEngine(
        dataset.data_graph,
        dataset.transfer_schema,
        min_document_frequency=args.min_df,
    )
    failures = 0
    for position, entry in enumerate(raw):
        try:
            ingest.apply(mutation_from_json(entry))
        except ReproError as error:
            failures += 1
            print(f"mutation {position} rejected: {error}", file=sys.stderr)
    staleness = ingest.staleness()
    print(
        f"applied {len(raw) - failures}/{len(raw)} mutations: "
        f"{staleness.dirty_columns} dirty columns"
        + (" (topology change: all columns dirty)" if staleness.topology_dirty else "")
    )

    result = ingest.refresh(
        previous=previous, mode=args.mode, workers=args.workers
    )
    print(
        f"incremental refresh ({result.mode}): recomputed "
        f"{len(result.recomputed)} columns, carried {len(result.carried)}, "
        f"{result.iterations} power-iteration steps, "
        f"{result.elapsed_seconds:.2f}s"
    )

    if args.compare_full:
        start = time.perf_counter()
        full = PrecomputedRanker(
            result.graph,
            result.index,
            min_document_frequency=args.min_df,
            workers=args.workers,
        )
        full_built = time.perf_counter() - start
        mismatched = _compare_rankers(result.ranker, full)
        print(
            f"full rebuild: {len(full.keywords)} columns in {full_built:.2f}s"
        )
        if mismatched:
            print(
                f"MISMATCH: {len(mismatched)} columns differ from the full "
                f"rebuild: {mismatched[:5]}",
                file=sys.stderr,
            )
            return 1
        print(
            f"verified: all {len(full.keywords)} columns bit-identical to "
            f"the full rebuild"
        )

    if args.store:
        from repro.store import build_and_publish

        root = Path(args.store) / args.dataset
        manifest = build_and_publish(
            root, result.ranker, args.dataset, keep=args.keep
        )
        print(
            f"published {root}/{manifest.filename} "
            f"(generation {manifest.generation})"
        )
    return 1 if failures else 0


def _compare_rankers(incremental, full) -> list[str]:
    """Keywords whose vectors differ between two rankers (bit-exact)."""
    import numpy as np

    mismatched = [
        keyword
        for keyword in full.keywords
        if not incremental.has_keyword(keyword)
        or not np.array_equal(incremental.vector(keyword), full.vector(keyword))
    ]
    mismatched.extend(
        keyword for keyword in incremental.keywords if not full.has_keyword(keyword)
    )
    return mismatched


def cmd_repl(args: argparse.Namespace) -> int:
    """The ``repro repl`` subcommand."""
    import sys as _sys

    from repro.core.config import SystemConfig
    from repro.datasets import load_dataset
    from repro.repl import run_repl

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    return run_repl(dataset, _sys.stdin, config=SystemConfig(top_k=args.top_k))


def cmd_lint(args: argparse.Namespace) -> int:
    """The ``repro lint`` subcommand: run the invariant checkers.

    Exit codes: 0 when no new findings (baselined and pragma-suppressed ones
    do not count), 1 when findings or parse errors remain, 2 on usage errors.
    """
    from repro.analysis import (
        Baseline,
        all_checkers,
        load_baseline,
        render,
        run_lint,
        save_baseline,
    )

    try:
        checkers = all_checkers(args.select)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    baseline = Baseline() if args.no_baseline else load_baseline(args.baseline)
    jobs = args.jobs
    if jobs == 0:
        jobs = os.cpu_count() or 1
    scope = None
    cache = None
    if args.changed:
        scope, checkout_root = _changed_python_files()
        if scope is None:
            print(
                "repro lint: --changed needs a git checkout; "
                "linting everything",
                file=sys.stderr,
            )
        else:
            # A --changed run is the incremental workflow: persist the
            # interprocedural summary index next to the checkout so a
            # no-op rerun skips the project-phase fixpoint entirely.
            from repro.analysis.summary_cache import CACHE_FILENAME

            cache = checkout_root / CACHE_FILENAME
    report = run_lint(
        args.paths, checkers=checkers, baseline=baseline, jobs=jobs,
        scope=scope, cache=cache,
    )

    if args.write_baseline:
        accepted = report.findings + report.baselined
        save_baseline(Baseline.from_findings(accepted, reasons=baseline), args.baseline)
        print(
            f"wrote {args.baseline} with {len(accepted)} accepted finding(s)",
            file=sys.stderr,
        )
        return 0

    print(render(report, args.format))
    return 0 if report.clean else 1


def _changed_python_files() -> "tuple[set[str] | None, Path | None]":
    """``(changed files, checkout root)`` for a ``--changed`` lint run.

    The first element holds cwd-relative names of ``.py`` files with
    uncommitted changes; the second the git toplevel (where the summary
    cache lives).  Asks ``git status --porcelain`` (worktree + index vs
    HEAD, renames resolved to their new name) so a pre-commit
    ``repro lint --changed`` covers exactly what the commit would ship.
    ``--untracked-files=all`` expands untracked *directories* into their
    files — by default git collapses a new package to ``?? pkg/`` and
    every module inside it would silently escape the lint.  Returns
    ``(None, None)`` when git is unavailable or the cwd is not inside a
    work tree — the caller falls back to a full run rather than silently
    linting nothing.
    """
    import subprocess
    from pathlib import Path

    try:
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=all"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None, None
    changed: set[str] = set()
    root = Path(toplevel)
    cwd = Path.cwd().resolve()
    for line in status.splitlines():
        if len(line) < 4:
            continue
        path = line[3:].strip().strip('"')
        if " -> " in path:
            path = path.split(" -> ", 1)[1]
        if not path.endswith(".py"):
            continue
        try:
            display = (root / path).resolve().relative_to(cwd).as_posix()
        except ValueError:
            continue  # changed file outside the directory being linted
        changed.add(display)
    return changed, root


def cmd_serve(args: argparse.Namespace) -> int:
    """The ``repro serve`` subcommand: boot the HTTP query service.

    ``--workers N`` (N >= 2) starts the prefork cluster instead: N worker
    processes share one pre-bound listener and, with ``--store DIR``, mmap
    the same published score-store generation (see :mod:`repro.serve.cluster`
    and DESIGN.md).  Both modes drain in-flight requests on SIGTERM/SIGINT.
    """
    import threading

    from repro.serve import (
        QueryService,
        ServeConfig,
        create_server,
        serve_until_shutdown,
    )

    config = ServeConfig(
        datasets=tuple(args.datasets),
        scale=args.scale,
        seed=args.seed,
        default_top_k=args.top_k,
        cache_max_entries=args.cache_size,
        cache_ttl_seconds=args.cache_ttl,
        precompute=not args.no_precompute,
        max_concurrency=args.max_concurrency,
        deadline_seconds=args.deadline,
        store_dir=args.store,
        ingest=args.ingest,
        ingest_staleness_bound=args.staleness_bound,
        ingest_refresh_mode=args.refresh_mode,
        candidates=args.candidates,
        fusion=args.fusion,
        fusion_weight=args.fusion_weight,
        rerank_horizon=args.rerank_horizon,
        rerank_expand_cap=args.rerank_expand_cap,
        rerank_node_budget=args.rerank_node_budget,
        rerank_max_horizon=args.rerank_max_horizon,
    )

    if args.workers and args.workers > 1:
        if args.ingest:
            # Each prefork worker owns a private engine, so a mutation POSTed
            # to one worker would be invisible to its siblings.  The cluster
            # path for live updates is the builder flow: `repro ingest
            # --store DIR` publishes a refreshed generation that every
            # worker picks up through the store manifest.
            print(
                "error: --ingest requires single-process mode; for clusters "
                "publish refreshed generations with `repro ingest --store`",
                file=sys.stderr,
            )
            return 2
        import signal

        from repro.serve.cluster import ClusterConfig, ClusterSupervisor

        supervisor = ClusterSupervisor(
            ClusterConfig(
                serve=config,
                host=args.host,
                port=args.port,
                workers=args.workers,
                drain_timeout=args.drain_timeout,
                admin_port=args.admin_port,
                quiet=args.quiet,
            )
        )
        print(
            f"preloading {', '.join(config.datasets)} and forking "
            f"{args.workers} workers ...",
            file=sys.stderr,
        )
        supervisor.start()
        admin = (
            f"; admin on 127.0.0.1:{args.admin_port}" if args.admin_port else ""
        )
        print(
            f"repro-serve cluster listening on {supervisor.url} "
            f"({args.workers} workers"
            + (f"; store: {args.store}" if args.store else "")
            + admin
            + ")"
        )
        stop = threading.Event()
        previous = {
            s: signal.signal(s, lambda *_: stop.set())
            for s in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            stop.wait()
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)
        print("draining workers ...", file=sys.stderr)
        return 0 if supervisor.stop() else 1

    service = QueryService(config)
    if not args.no_preload:
        for name in config.datasets:
            print(f"loading dataset {name} ...", file=sys.stderr)
        service.preload()
    server = create_server(service, args.host, args.port, quiet=args.quiet)
    endpoints = "/search /explain /feedback/reformulate"
    if config.ingest:
        endpoints += " /ingest"
    print(
        f"repro-serve listening on {server.url} "
        f"(datasets: {', '.join(config.datasets)}; "
        f"endpoints: {endpoints} /healthz /metrics)"
    )
    _signum, drained = serve_until_shutdown(
        server, drain_timeout=args.drain_timeout
    )
    if not drained:
        print("drain timeout: closed with requests in flight", file=sys.stderr)
    return 0 if drained else 1


def cmd_store_build(args: argparse.Namespace) -> int:
    """The ``repro store build`` subcommand: publish the next generation.

    Runs the [BHP04] precomputation and writes it as a checksummed mmap-able
    slab under ``--store DIR/<dataset>/``, then atomically flips the
    ``CURRENT`` manifest — live workers of ``repro serve --workers N`` pick
    the new generation up between requests, without a restart.
    """
    import time
    from pathlib import Path

    from repro.datasets import load_dataset
    from repro.query.engine import SearchEngine
    from repro.ranking.precompute import PrecomputedRanker
    from repro.store import build_and_publish, store_path

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
    start = time.perf_counter()
    ranker = PrecomputedRanker(
        engine.graph,
        engine.index,
        keywords=args.keywords or None,
        min_document_frequency=args.min_df,
        workers=args.workers,
    )
    built = time.perf_counter() - start
    root = Path(args.store) / args.dataset
    manifest = build_and_publish(root, ranker, args.dataset, keep=args.keep)
    size = store_path(root, manifest.generation).stat().st_size
    print(
        f"published {root}/{manifest.filename} (generation {manifest.generation}, "
        f"{len(ranker.keywords)} keywords, {size / 1e6:.1f} MB, "
        f"precompute {built:.2f}s)"
    )
    return 0


def cmd_store_inspect(args: argparse.Namespace) -> int:
    """The ``repro store inspect`` subcommand: what a store directory holds."""
    from pathlib import Path

    from repro.store import ScoreStore, list_generations, read_manifest, store_path

    root = Path(args.store) / args.dataset
    generations = list_generations(root)
    manifest = read_manifest(root)
    if manifest is None:
        print(f"{root}: nothing published (generations on disk: {generations})")
        return 1
    print(f"store:       {root}")
    print(f"generations: {generations} (current: {manifest.generation})")
    with ScoreStore(root / manifest.filename) as store:
        size = store_path(root, manifest.generation).stat().st_size
        print(f"file:        {manifest.filename} ({size / 1e6:.1f} MB)")
        print(f"dataset:     {store.dataset}")
        print(f"matrix:      {len(store.keywords)} keywords x {len(store.node_ids)} nodes")
        print(f"damping:     {store.damping}")
        print(f"rates:       " + ", ".join(
            f"{name}={rate:.3f}"
            for name, rate in zip(store.edge_types, store.rates)
        ))
        print(f"build:       {store.build_iterations} power-iteration steps")
        store.verify()
        print("checksums:   ok")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ObjectRank2 search, explanation and reformulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="list generatable datasets")
    datasets.add_argument("--sizes", action="store_true", help="generate and show sizes")
    datasets.add_argument("--scale", type=float, default=1.0)
    datasets.add_argument("--seed", type=int, default=7)
    datasets.set_defaults(func=cmd_datasets)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("dataset", help="a name from `repro datasets`")
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--top-k", type=int, default=10)

    search = sub.add_parser("search", help="run an ObjectRank2 query")
    common(search)
    search.add_argument("keywords", nargs="+")
    search.add_argument(
        "--mode", choices=["full", "two-stage"], default="full",
        help="full runs ObjectRank2 over the whole graph; two-stage runs "
        "pruned BM25 candidate generation + focused authority reranking",
    )
    search.add_argument(
        "--candidates", type=int, default=200, metavar="N",
        help="with --mode two-stage: stage-1 candidate-set size",
    )
    search.add_argument(
        "--fusion", choices=["weighted", "multiplicative", "rrf"],
        default="weighted",
        help="with --mode two-stage: IR/authority score fusion",
    )
    search.add_argument(
        "--fusion-weight", type=float, default=1.0,
        help="with --fusion weighted: authority share in [0, 1] "
        "(1.0 = authority only)",
    )
    search.add_argument(
        "--horizon", type=int, default=2,
        help="with --mode two-stage: rerank neighborhood hops",
    )
    search.add_argument(
        "--expand-cap", type=int, default=None, metavar="D",
        help="with --mode two-stage: include but do not expand through "
        "nodes with transfer-edge degree above D (None = expand all)",
    )
    search.add_argument(
        "--node-budget", type=int, default=None, metavar="B",
        help="with --mode two-stage: keep deepening past --horizon (up to "
        "--max-horizon hops) while the neighborhood holds fewer than B nodes",
    )
    search.add_argument(
        "--max-horizon", type=int, default=None,
        help="with --mode two-stage: hop ceiling for --node-budget deepening",
    )
    search.set_defaults(func=cmd_search)

    explain = sub.add_parser("explain", help="explain one result of a query")
    common(explain)
    explain.add_argument(
        "target", help="substring of the result id or title ('all' with --batch)"
    )
    explain.add_argument("keywords", nargs="+")
    explain.add_argument("--paths", type=int, default=5)
    explain.add_argument(
        "--batch", type=int, default=None, metavar="K",
        help="explain every matching result among the top K in one batched "
        "pass (repro.explain.batch) instead of the first match",
    )
    explain.add_argument(
        "--workers", type=int, default=None,
        help="threads for batched subgraph extraction (with --batch)",
    )
    explain.set_defaults(func=cmd_explain)

    feedback = sub.add_parser("feedback", help="mark results and reformulate")
    common(feedback)
    feedback.add_argument("keywords", nargs="+")
    feedback.add_argument(
        "--mark", type=int, nargs="+", required=True, help="1-based ranks to mark"
    )
    feedback.set_defaults(func=cmd_feedback)

    repl = sub.add_parser("repl", help="interactive search/explain/feedback shell")
    common(repl)
    repl.set_defaults(func=cmd_repl)

    precompute = sub.add_parser(
        "precompute", help="build per-keyword vectors offline (blocked engine)"
    )
    precompute.add_argument("dataset", help="a name from `repro datasets`")
    precompute.add_argument("--scale", type=float, default=1.0)
    precompute.add_argument("--seed", type=int, default=7)
    precompute.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the blocked build (default: in-process)",
    )
    precompute.add_argument(
        "--min-df", type=int, default=2,
        help="precompute only terms with document frequency >= N",
    )
    precompute.add_argument(
        "--keywords", nargs="*", default=None,
        help="explicit keyword list (default: the whole filtered vocabulary)",
    )
    precompute.set_defaults(func=cmd_precompute)

    ingest = sub.add_parser(
        "ingest",
        help="apply a mutation batch and refresh only the dirty columns",
    )
    ingest.add_argument("dataset", help="a name from `repro datasets`")
    ingest.add_argument(
        "--mutations", required=True, metavar="FILE",
        help="JSON file holding a list of mutation objects "
        "({\"op\": \"add_node\" | \"remove_node\" | \"update_node\" | "
        "\"add_edge\" | \"remove_edge\", ...})",
    )
    ingest.add_argument("--scale", type=float, default=1.0)
    ingest.add_argument("--seed", type=int, default=7)
    ingest.add_argument(
        "--mode", choices=["exact", "warm"], default="exact",
        help="exact recomputes dirty columns cold (bit-identical to a full "
        "rebuild); warm restarts them from the previous fixpoints",
    )
    ingest.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the blocked refresh (default: in-process)",
    )
    ingest.add_argument(
        "--min-df", type=int, default=2,
        help="precompute only terms with document frequency >= N",
    )
    ingest.add_argument(
        "--compare-full", action="store_true",
        help="also run the from-scratch precompute and verify bit-identity",
    )
    ingest.add_argument(
        "--store", default=None, metavar="DIR",
        help="publish the refreshed matrix under DIR/<dataset>/ as the next "
        "store generation",
    )
    ingest.add_argument(
        "--keep", type=int, default=2,
        help="with --store: generations retained after publishing",
    )
    ingest.set_defaults(func=cmd_ingest)

    serve = sub.add_parser("serve", help="HTTP query service with caching + metrics")
    serve.add_argument(
        "datasets",
        nargs="*",
        default=["dblp_tiny"],
        help="datasets to serve (default: dblp_tiny)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    serve.add_argument("--scale", type=float, default=1.0)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--top-k", type=int, default=10)
    serve.add_argument("--cache-size", type=int, default=512, help="max cached results")
    serve.add_argument(
        "--cache-ttl", type=float, default=None, help="result TTL seconds (default: none)"
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=8, help="in-flight request limit (429 beyond)"
    )
    serve.add_argument(
        "--deadline", type=float, default=30.0, help="per-request deadline seconds (503 beyond)"
    )
    serve.add_argument(
        "--no-precompute", action="store_true", help="disable per-keyword precomputed vectors"
    )
    serve.add_argument(
        "--no-preload", action="store_true", help="build dataset engines lazily on first request"
    )
    serve.add_argument("--quiet", action="store_true", help="suppress per-request access log")
    serve.add_argument(
        "--workers", type=int, default=1,
        help="prefork worker processes sharing one listener (default: 1 = "
        "single process); workers mmap the --store generations zero-copy",
    )
    serve.add_argument(
        "--store", default=None, metavar="DIR",
        help="serve the precomputed fast path from mmap score stores under "
        "DIR/<dataset>/ (build them with `repro store build`)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="seconds to wait for in-flight requests on SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--admin-port", type=int, default=None,
        help="with --workers: supervisor admin port (aggregated /metrics, "
        "/healthz, /workers on 127.0.0.1)",
    )
    serve.add_argument(
        "--ingest", action="store_true",
        help="enable the /ingest mutation endpoint with online precompute "
        "maintenance (single-process mode only)",
    )
    serve.add_argument(
        "--staleness-bound", type=int, default=0, metavar="N",
        help="with --ingest: serve at most N pending mutations before a "
        "synchronous refresh (default 0: refresh before the next query)",
    )
    serve.add_argument(
        "--refresh-mode", choices=["exact", "warm"], default="exact",
        help="with --ingest: dirty-column refresh mode (exact is "
        "bit-identical to a full rebuild; warm reuses previous fixpoints)",
    )
    serve.add_argument(
        "--candidates", type=int, default=200, metavar="N",
        help="mode=two_stage default: stage-1 candidate-set size",
    )
    serve.add_argument(
        "--fusion", choices=["weighted", "multiplicative", "rrf"],
        default="weighted",
        help="mode=two_stage default: IR/authority score fusion",
    )
    serve.add_argument(
        "--fusion-weight", type=float, default=1.0,
        help="mode=two_stage default: authority share in [0, 1]",
    )
    serve.add_argument(
        "--rerank-horizon", type=int, default=2,
        help="mode=two_stage default: rerank neighborhood hops",
    )
    serve.add_argument(
        "--rerank-expand-cap", type=int, default=None, metavar="D",
        help="mode=two_stage default: include but do not expand through "
        "nodes with transfer-edge degree above D",
    )
    serve.add_argument(
        "--rerank-node-budget", type=int, default=None, metavar="B",
        help="mode=two_stage default: deepen past the horizon (up to "
        "--rerank-max-horizon) while the neighborhood has fewer than B nodes",
    )
    serve.add_argument(
        "--rerank-max-horizon", type=int, default=None,
        help="mode=two_stage default: hop ceiling for node-budget deepening",
    )
    serve.set_defaults(func=cmd_serve)

    store = sub.add_parser(
        "store", help="build / inspect mmap-able score stores (repro.store)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_build = store_sub.add_parser(
        "build", help="precompute and publish the next store generation"
    )
    store_build.add_argument("dataset", help="a name from `repro datasets`")
    store_build.add_argument(
        "--store", required=True, metavar="DIR",
        help="store root; the slab goes to DIR/<dataset>/store.gen-K.slab",
    )
    store_build.add_argument("--scale", type=float, default=1.0)
    store_build.add_argument("--seed", type=int, default=7)
    store_build.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the blocked precompute (default: in-process)",
    )
    store_build.add_argument(
        "--min-df", type=int, default=2,
        help="precompute only terms with document frequency >= N",
    )
    store_build.add_argument(
        "--keywords", nargs="*", default=None,
        help="explicit keyword list (default: the whole filtered vocabulary)",
    )
    store_build.add_argument(
        "--keep", type=int, default=2,
        help="generations retained after publishing (older ones are pruned)",
    )
    store_build.set_defaults(func=cmd_store_build)
    store_inspect = store_sub.add_parser(
        "inspect", help="show a store's generations and verify its checksums"
    )
    store_inspect.add_argument("dataset", help="dataset subdirectory to inspect")
    store_inspect.add_argument(
        "--store", required=True, metavar="DIR", help="store root directory"
    )
    store_inspect.set_defaults(func=cmd_store_inspect)

    lint = sub.add_parser(
        "lint", help="run the invariant checkers (RL001-RL013)"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    lint.add_argument(
        "--format", choices=["text", "json", "github", "sarif"], default="text",
        help="report format (github emits workflow-command annotations; "
        "sarif emits a SARIF 2.1.0 log for code-scanning uploads)",
    )
    lint.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="lint files in N worker processes (default: in-process; "
        "0 = one per CPU)",
    )
    lint.add_argument(
        "--baseline", default=".repro-lint-baseline.json",
        help="accepted-findings file (missing file = empty baseline)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    lint.add_argument(
        "--select", nargs="*", default=None, metavar="CODE",
        help="run only these rule codes (default: all registered)",
    )
    lint.add_argument(
        "--changed", action="store_true",
        help="lint only files with uncommitted git changes (interprocedural "
        "rules still see the whole project; outside a git checkout this "
        "falls back to a full run)",
    )
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
