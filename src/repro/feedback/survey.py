"""Survey sessions: the feedback-loop protocol of Section 6.1.

One session plays the role of one (user, query) pair of the paper's surveys:

1. the system answers the query and presents the top-k *unseen* objects;
2. precision is recorded against the user's relevant set under the residual
   collection method;
3. the user marks the relevant presented objects, the presented objects are
   added to the seen set, and the system reformulates from the marks;
4. repeat for a fixed number of feedback iterations.

The per-iteration precision list (initial query + reformulated queries) is
the unit averaged into Figures 10 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import ObjectRankSystem
from repro.feedback.residual import ResidualCollection
from repro.feedback.simulated_user import SimulatedUser
from repro.query.query import KeywordQuery


@dataclass
class SessionTrace:
    """Everything recorded during one survey session."""

    query: str
    precisions: list[float] = field(default_factory=list)
    marked_counts: list[int] = field(default_factory=list)
    rate_vectors: list[list[float]] = field(default_factory=list)
    explaining_iterations: list[int] = field(default_factory=list)


def run_feedback_session(
    system: ObjectRankSystem,
    user: SimulatedUser,
    query: KeywordQuery | str,
    feedback_iterations: int = 4,
    presented_k: int = 10,
) -> SessionTrace:
    """Drive one full survey session and return its trace.

    ``presented_k`` is the number of results shown per iteration (the ``k``
    of the paper's precision@k; recall equals precision because output is cut
    at ``k``).  The returned trace has ``feedback_iterations + 1`` precision
    entries: the initial query plus each reformulated query.
    """
    query_text = query if isinstance(query, str) else " ".join(query.keywords)
    trace = SessionTrace(query=query_text)
    residual = ResidualCollection()
    relevant = user.relevant_set(query)

    result = system.query(query)
    for _ in range(feedback_iterations + 1):
        presented = residual.present(result.ranked.ranking(), presented_k)
        trace.precisions.append(residual.precision(result.ranked.ranking(), relevant, presented_k))
        marked = user.judge(presented, query)
        trace.marked_counts.append(len(marked))
        residual.mark_seen(presented)
        trace.rate_vectors.append(system.current_rates.as_vector())
        if len(trace.precisions) == feedback_iterations + 1:
            break
        outcome = system.feedback(marked)
        trace.explaining_iterations.extend(e.iterations for e in outcome.explanations)
        result = outcome.result
    return trace


def average_precision_curve(traces: list[SessionTrace]) -> list[float]:
    """Mean precision per iteration across sessions (a Figure 10/12 series)."""
    if not traces:
        return []
    length = min(len(t.precisions) for t in traces)
    return [
        sum(t.precisions[i] for t in traces) / len(traces) for i in range(length)
    ]
