"""Relevance feedback substrate: metrics, residual-collection evaluation,
Rocchio baseline, simulated survey users and rate training (Section 6.1)."""

from repro.feedback.active import ActiveFeedbackSelector
from repro.feedback.click import (
    Click,
    ClickLog,
    SimulatedClicker,
    implicit_feedback,
    position_weight,
)
from repro.feedback.metrics import (
    average_precision,
    cosine_similarity,
    kendall_tau,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
    spearman_footrule,
)
from repro.feedback.residual import ResidualCollection
from repro.feedback.rocchio import RocchioReformulator
from repro.feedback.simulated_user import SimulatedUser
from repro.feedback.survey import (
    SessionTrace,
    average_precision_curve,
    run_feedback_session,
)
from repro.feedback.training import TrainingCurve, train_transfer_rates

__all__ = [
    "ActiveFeedbackSelector",
    "Click",
    "ClickLog",
    "ResidualCollection",
    "RocchioReformulator",
    "SessionTrace",
    "SimulatedClicker",
    "SimulatedUser",
    "TrainingCurve",
    "average_precision",
    "average_precision_curve",
    "cosine_similarity",
    "implicit_feedback",
    "kendall_tau",
    "position_weight",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "run_feedback_session",
    "spearman_footrule",
    "train_transfer_rates",
]
