"""Active feedback: choosing which results to ask the user about [SZ05].

The related-work section cites Shen & Zhai's active feedback — "algorithms
that help to choose documents for relevance feedback so that the system can
learn most from the feedback."  For authority-flow reformulation the system
learns *edge-type rates*, so the most informative objects to present are the
ones whose explaining subgraphs carry authority over *diverse and uncertain*
edge types:

* a result fed purely by citation flow teaches nothing new once citations
  are already boosted;
* a result fed through, say, author and venue edges disambiguates rates the
  current feedback has not pinned down.

:class:`ActiveFeedbackSelector` ranks candidate results by the diversity of
their edge-type flow profiles relative to the evidence gathered so far
(a greedy max-coverage loop over edge types, weighted by flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explain.adjustment import FlowExplanation
from repro.graph.authority import EdgeType


def _normalized_profile(explanation: FlowExplanation) -> dict[EdgeType, float]:
    profile = explanation.flow_by_edge_type()
    total = sum(profile.values())
    if total <= 0:
        return {}
    return {edge_type: flow / total for edge_type, flow in profile.items()}


@dataclass
class ActiveFeedbackSelector:
    """Greedy diverse-profile selection of feedback candidates.

    ``evidence`` accumulates how much (normalized) flow each edge type has
    already been observed with across accepted feedback objects; candidates
    are scored by the profile mass they add on *under-observed* types.
    """

    evidence: dict[EdgeType, float] = field(default_factory=dict)

    def novelty(self, explanation: FlowExplanation) -> float:
        """How much this candidate would teach: profile mass on edge types
        in inverse proportion to existing evidence."""
        profile = _normalized_profile(explanation)
        return sum(
            share / (1.0 + self.evidence.get(edge_type, 0.0))
            for edge_type, share in profile.items()
        )

    def observe(self, explanation: FlowExplanation) -> None:
        """Record an accepted feedback object's profile as evidence."""
        for edge_type, share in _normalized_profile(explanation).items():
            self.evidence[edge_type] = self.evidence.get(edge_type, 0.0) + share

    def select(
        self,
        candidates: list[tuple[str, FlowExplanation]],
        count: int,
    ) -> list[str]:
        """Pick ``count`` candidates greedily by marginal novelty.

        Each pick updates the evidence, so the second pick avoids profiles
        redundant with the first — the max-coverage behaviour that plain
        top-score presentation lacks.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        remaining = list(candidates)
        chosen: list[str] = []
        while remaining and len(chosen) < count:
            best_index = max(
                range(len(remaining)),
                key=lambda i: (self.novelty(remaining[i][1]), -i),
            )
            node_id, explanation = remaining.pop(best_index)
            chosen.append(node_id)
            self.observe(explanation)
        return chosen
