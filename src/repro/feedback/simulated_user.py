"""Simulated survey users (the Section 6.1 substitution).

The paper's quality experiments rely on human judges (five internal, ten
external).  Offline we substitute an *oracle user* with a hidden relevance
model: the user privately knows the "right" authority transfer rates (the
[BHP04] ground truth the training experiment tries to recover) and judges an
object relevant exactly when it appears among the top results of ObjectRank2
run with those hidden rates.

This reproduces the feedback loop's information structure faithfully:

* the system never sees the hidden rates — only which presented objects the
  user marks;
* structure-based reformulation can then be measured on whether it *recovers*
  the hidden rates (Figure 11's cosine-similarity curves) and on precision
  against the user's hidden relevant set (Figures 10 and 12);
* an optional judgment-noise parameter models imperfect humans.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.query.engine import SearchEngine
from repro.query.query import KeywordQuery, QueryVector


class SimulatedUser:
    """An oracle judge with hidden preferred transfer rates.

    ``relevance_depth`` is the size of the user's private relevant set: the
    top-``relevance_depth`` objects under the hidden rates.  ``noise`` is the
    probability of flipping any single judgment (both false negatives on
    relevant objects and false positives on irrelevant ones).
    """

    def __init__(
        self,
        engine: SearchEngine,
        true_rates: AuthorityTransferSchemaGraph,
        relevance_depth: int = 20,
        noise: float = 0.0,
        seed: int = 0,
    ) -> None:
        if relevance_depth < 1:
            raise ValueError(f"relevance depth must be positive, got {relevance_depth}")
        if not 0.0 <= noise < 1.0:
            raise ValueError(f"noise must be in [0, 1), got {noise}")
        self.engine = engine
        self.true_rates = true_rates
        self.relevance_depth = relevance_depth
        self.noise = noise
        self._rng = random.Random(seed)
        self._relevant_cache: dict[tuple[str, ...], set[str]] = {}

    def relevant_set(self, query: KeywordQuery | QueryVector | str) -> set[str]:
        """The user's private relevant set for the *original* query.

        Judgments are stable across reformulation iterations: relevance is a
        property of the object and the user's information need, not of the
        system's current query vector.
        """
        vector = self.engine.query_vector(query)
        key = tuple(sorted(vector.weights))
        if key not in self._relevant_cache:
            result = self.engine.search(
                vector, top_k=self.relevance_depth, rates=self.true_rates
            )
            self._relevant_cache[key] = set(result.hit_ids())
        return self._relevant_cache[key]

    def judge(
        self, presented: Sequence[str], query: KeywordQuery | QueryVector | str
    ) -> list[str]:
        """The subset of ``presented`` the user marks relevant (with noise)."""
        relevant = self.relevant_set(query)
        marked = []
        for node_id in presented:
            is_relevant = node_id in relevant
            if self.noise and self._rng.random() < self.noise:
                is_relevant = not is_relevant
            if is_relevant:
                marked.append(node_id)
        return marked
