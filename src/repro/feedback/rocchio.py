"""Rocchio relevance feedback — the traditional-IR baseline [SB90].

The related-work discussion contrasts the paper's link-aware reformulation
with classic content-only feedback, whose dominant form is Rocchio's

    q' = alpha * q + (beta / |D_r|) * sum d_r - (gamma / |D_n|) * sum d_n

over tf-idf document vectors.  We include it as a substrate baseline: it sees
only document *content*, never the link structure, which is exactly the
limitation Section 5 is built to overcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.index import InvertedIndex
from repro.ir.scoring import TfIdfScorer
from repro.ir.tokenize import DEFAULT_ANALYZER, Analyzer
from repro.query.query import QueryVector


@dataclass
class RocchioReformulator:
    """Classic Rocchio with term-count truncation."""

    alpha: float = 1.0
    beta: float = 0.75
    gamma: float = 0.15
    num_terms: int = 10
    analyzer: Analyzer = DEFAULT_ANALYZER

    def document_vector(self, index: InvertedIndex, doc_id: str) -> dict[str, float]:
        """tf-idf vector of one document over its own terms."""
        scorer = TfIdfScorer(index)
        return {
            term: scorer.weight(doc_id, term)
            for term in index.terms_of_document(doc_id)
        }

    def reformulate(
        self,
        query_vector: QueryVector,
        index: InvertedIndex,
        relevant_ids: list[str],
        nonrelevant_ids: list[str] | None = None,
    ) -> QueryVector:
        """Apply the Rocchio update and keep the strongest terms.

        Original query terms are always retained; expansion terms beyond the
        strongest ``num_terms`` are dropped.  Negative weights clamp to zero
        (standard practice).
        """
        nonrelevant_ids = nonrelevant_ids or []
        centroid: dict[str, float] = {}
        if relevant_ids:
            share = self.beta / len(relevant_ids)
            for doc_id in relevant_ids:
                for term, weight in self.document_vector(index, doc_id).items():
                    centroid[term] = centroid.get(term, 0.0) + share * weight
        if nonrelevant_ids:
            share = self.gamma / len(nonrelevant_ids)
            for doc_id in nonrelevant_ids:
                for term, weight in self.document_vector(index, doc_id).items():
                    centroid[term] = centroid.get(term, 0.0) - share * weight

        reformulated = QueryVector()
        for term in query_vector.terms:
            weight = self.alpha * query_vector.weight(term) + centroid.pop(term, 0.0)
            reformulated.set_weight(term, max(weight, 0.0))

        expansion = sorted(
            ((t, w) for t, w in centroid.items() if w > 0 and not self.analyzer.is_stopword(t)),
            key=lambda item: (-item[1], item[0]),
        )[: self.num_terms]
        for term, weight in expansion:
            reformulated.set_weight(term, weight)
        return reformulated
