"""Training the authority transfer rates from feedback (Section 6.1.1).

The rates of ObjectRank had to be set manually by a domain expert; the paper
shows structure-based reformulation *learns* them.  The protocol:

* initialize every edge-type rate to 0.3 (``UserVector``);
* run structure-only feedback sessions; after every reformulation iteration
  the learned rate vector is compared to the ground-truth ``ObjVector`` of
  [BHP04] by cosine similarity;
* curves are averaged over (user, query) sessions, each trained
  independently from the initial vector — the paper's "training curves for 4
  users averaged over 5 queries each";
* the curve rises, then falls as the rates overfit the feedback objects;
  larger adjustment factors ``C_f`` peak in fewer iterations (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.core.system import ObjectRankSystem
from repro.datasets.base import Dataset
from repro.feedback.metrics import cosine_similarity
from repro.feedback.residual import ResidualCollection
from repro.feedback.simulated_user import SimulatedUser
from repro.graph.authority import AuthorityTransferSchemaGraph, EdgeType
from repro.query.engine import SearchEngine, SearchResult
from repro.ranking.batch import batched_objectrank2
from repro.ranking.objectrank import global_objectrank


@dataclass
class TrainingCurve:
    """Cosine similarity to the ground truth after each iteration.

    ``similarities[0]`` is the similarity of the initial (untrained) vector;
    entry ``i`` follows reformulation ``i``.  One curve per ``C_f`` value is
    what Figure 11 plots.
    """

    adjustment_factor: float
    similarities: list[float] = field(default_factory=list)
    rate_vectors: list[list[float]] = field(default_factory=list)

    @property
    def peak_iteration(self) -> int:
        """Index of the maximum similarity (0 = before any training)."""
        best = max(self.similarities)
        return self.similarities.index(best)


def train_transfer_rates(
    dataset: Dataset,
    queries: list[str],
    adjustment_factor: float,
    iterations: int = 5,
    initial_rate: float = 0.3,
    presented_k: int = 10,
    relevance_depth: int = 20,
    edge_order: list[EdgeType] | None = None,
    engine: SearchEngine | None = None,
    user_seed: int = 0,
    user_noise: float = 0.0,
    radius: int = 3,
    workers: int | None = None,
) -> TrainingCurve:
    """Run the rate-training experiment for one ``C_f`` value.

    Each query trains its own session starting from the all-``initial_rate``
    vector; the returned curve averages the per-session cosine similarities
    (and rate vectors) per iteration.  The ground truth is
    ``dataset.ground_truth_rates``.

    Every session's *initial* evaluation runs against the same matrix (the
    all-``initial_rate`` schema), so the per-query fixpoints are computed in
    one blocked run (``repro.ranking.batch``) sharing a single global
    warm-start vector, instead of one serial power iteration — and one
    global-ObjectRank recomputation — per query.  ``workers`` spreads the
    blocked run over a process pool.
    """
    if dataset.ground_truth_rates is None:
        raise ValueError(f"dataset {dataset.name!r} has no ground-truth rates")
    ground_truth = dataset.ground_truth_rates
    order = edge_order if edge_order is not None else ground_truth.edge_types()
    truth_vector = ground_truth.as_vector(order)

    initial = AuthorityTransferSchemaGraph(
        ground_truth.schema, default_rate=initial_rate, epsilon=ground_truth.epsilon
    )
    engine = engine or SearchEngine(dataset.data_graph, initial)
    # ``workers`` drives both batch engines: the blocked initial fixpoints
    # below and the batched per-feedback-object explanations inside every
    # session's reformulation rounds (repro.explain.batch).
    config = SystemConfig.structure_only(
        adjustment_factor=adjustment_factor,
        radius=radius,
        top_k=presented_k,
        explain_workers=workers,
    )
    user = SimulatedUser(
        engine,
        ground_truth,
        relevance_depth=relevance_depth,
        noise=user_noise,
        seed=user_seed,
    )

    # Batch the initial evaluations: all sessions start from the same rate
    # schema (one matrix) and the same global warm start, differing only in
    # their restart vectors — exactly the blocked engine's shape.
    query_vectors = [engine.query_vector(query) for query in queries]
    graph = engine.transfer_view(initial)
    init = None
    if config.warm_start and config.global_warm_start:
        init = global_objectrank(
            graph, config.damping, config.tolerance, config.max_iterations
        ).scores
    initial_ranked = batched_objectrank2(
        graph,
        engine.scorer,
        query_vectors,
        engine.damping,
        engine.tolerance,
        engine.max_iterations,
        init=init,
        workers=workers,
    )

    session_vectors: list[list[list[float]]] = []
    for query_vector, ranked in zip(query_vectors, initial_ranked):
        system = ObjectRankSystem(dataset.data_graph, initial, config, engine=engine)
        residual = ResidualCollection()
        vectors = [initial.as_vector(order)]
        result = system.adopt_initial(
            query_vector,
            SearchResult(
                query_vector, ranked, ranked.top_k(config.top_k), elapsed_seconds=0.0
            ),
            rates=initial,
        )
        for _ in range(iterations):
            presented = residual.present(result.ranked.ranking(), presented_k)
            marked = user.judge(presented, query_vector)
            residual.mark_seen(presented)
            outcome = system.feedback(marked)
            result = outcome.result
            vectors.append(system.current_rates.as_vector(order))
        session_vectors.append(vectors)

    if not session_vectors:
        raise ValueError("feedback training needs at least one query session")
    curve = TrainingCurve(adjustment_factor=adjustment_factor)
    num_sessions = len(session_vectors)
    for step in range(iterations + 1):
        mean_vector = [
            sum(vectors[step][i] for vectors in session_vectors) / num_sessions
            for i in range(len(order))
        ]
        curve.rate_vectors.append(mean_vector)
        similarity = sum(
            cosine_similarity(vectors[step], truth_vector) for vectors in session_vectors
        ) / num_sessions
        curve.similarities.append(similarity)
    return curve
