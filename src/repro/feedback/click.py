"""Implicit feedback from click-through (Section 5, "Overview of process").

The paper notes that instead of explicit marks, the "user's click-through
could be used to implicitly derive such markings."  This module provides
that pipeline:

* :class:`ClickLog` records which presented results a user clicked, per query;
* :func:`implicit_feedback` converts a click log into feedback objects with a
  position-bias correction: clicks high in the ranking carry less evidence
  (users click top results regardless of relevance), so a result needs
  proportionally more clicks the higher it was presented;
* :class:`SimulatedClicker` generates position-biased clicks from a hidden
  relevance model — the cascade-style user model used to test the pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class Click:
    """One click event: the result and the rank it was presented at (1-based)."""

    node_id: str
    rank: int


@dataclass
class ClickLog:
    """Clicks accumulated for one query across presentations."""

    clicks: list[Click] = field(default_factory=list)
    presentations: dict[str, int] = field(default_factory=dict)

    def record_presentation(self, ranking: Sequence[str]) -> None:
        """Count every shown result (needed for click-rate estimates)."""
        for node_id in ranking:
            self.presentations[node_id] = self.presentations.get(node_id, 0) + 1

    def record_click(self, node_id: str, rank: int) -> None:
        if rank < 1:
            raise ValueError(f"rank must be 1-based, got {rank}")
        self.clicks.append(Click(node_id, rank))

    def click_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for click in self.clicks:
            counts[click.node_id] = counts.get(click.node_id, 0) + 1
        return counts


def position_weight(rank: int, bias: float = 0.7) -> float:
    """Evidence weight of a click at ``rank``: low ranks count more.

    A click at rank 1 is weak evidence (weight ``1 - bias``); a click far
    down the list is strong evidence (weight approaching 1).  ``bias`` is the
    strength of the position prior.
    """
    if rank < 1:
        raise ValueError(f"rank must be 1-based, got {rank}")
    if not 0.0 <= bias < 1.0:
        raise ValueError(f"bias must be in [0, 1), got {bias}")
    return 1.0 - bias / rank


def implicit_feedback(
    log: ClickLog, threshold: float = 0.5, limit: int | None = None
) -> list[str]:
    """Feedback objects implied by a click log.

    Each result accumulates position-corrected click evidence; results whose
    evidence per presentation exceeds ``threshold`` become feedback objects,
    strongest first.  ``limit`` caps the number returned.
    """
    evidence: dict[str, float] = {}
    for click in log.clicks:
        evidence[click.node_id] = evidence.get(click.node_id, 0.0) + position_weight(
            click.rank
        )
    scored = []
    for node_id, total in evidence.items():
        presentations = max(log.presentations.get(node_id, 1), 1)
        rate = total / presentations
        if rate >= threshold:
            scored.append((rate, node_id))
    scored.sort(key=lambda item: (-item[0], item[1]))
    selected = [node_id for _, node_id in scored]
    return selected[:limit] if limit is not None else selected


class SimulatedClicker:
    """A cascade-model clicker over a hidden relevant set.

    The user scans the presented list top-down; at each rank they examine the
    result with probability ``examination ** (rank - 1)`` and click it when
    it is in their hidden relevant set (plus a small random-click rate).
    """

    def __init__(
        self,
        relevant: set[str],
        examination: float = 0.85,
        random_click_rate: float = 0.02,
        seed: int = 0,
    ) -> None:
        if not 0.0 < examination <= 1.0:
            raise ValueError(f"examination must be in (0, 1], got {examination}")
        self.relevant = relevant
        self.examination = examination
        self.random_click_rate = random_click_rate
        self._rng = random.Random(seed)

    def browse(self, ranking: Sequence[str], log: ClickLog) -> list[Click]:
        """Scan one presented ranking, recording clicks into ``log``."""
        log.record_presentation(ranking)
        produced = []
        for rank, node_id in enumerate(ranking, start=1):
            if self._rng.random() > self.examination ** (rank - 1):
                continue  # stopped scanning before this rank
            relevant = node_id in self.relevant
            if relevant or self._rng.random() < self.random_click_rate:
                log.record_click(node_id, rank)
                produced.append(Click(node_id, rank))
        return produced
