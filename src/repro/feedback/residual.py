"""Residual-collection evaluation of relevance feedback [RL03, SB90].

Relevance feedback inflates naive precision numbers because the documents the
user already marked relevant are trivially re-retrieved.  The residual
collection method removes every object *seen* by the user from both the
ranking and the relevant set before measuring each subsequent iteration —
"all objects seen by the user or marked as relevant are removed from the
collection and both the initial and all reformulated queries are evaluated
using the residual collection" (Section 6.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.feedback.metrics import precision_at_k


@dataclass
class ResidualCollection:
    """Tracks seen objects across feedback iterations of one session."""

    seen: set[str] = field(default_factory=set)

    def residual_ranking(self, ranking: Sequence[str]) -> list[str]:
        """The ranking restricted to unseen objects."""
        return [item for item in ranking if item not in self.seen]

    def residual_relevant(self, relevant: set[str]) -> set[str]:
        return relevant - self.seen

    def precision(self, ranking: Sequence[str], relevant: set[str], k: int) -> float:
        """Precision@k over the residual collection."""
        return precision_at_k(
            self.residual_ranking(ranking), self.residual_relevant(relevant), k
        )

    def mark_seen(self, items: Sequence[str]) -> None:
        """Record objects that were presented to (seen by) the user."""
        self.seen.update(items)

    def present(self, ranking: Sequence[str], k: int) -> list[str]:
        """The top-``k`` unseen objects — what the user is shown next."""
        return self.residual_ranking(ranking)[:k]
