"""Evaluation metrics for the survey experiments (Section 6.1).

The paper reports average precision of the top-k ("the recall is the same as
the precision in our case since we limit the output results to k") and, for
rate training, cosine similarity between the learned and ground-truth rate
vectors (Figure 11).
"""

from __future__ import annotations

import math
from typing import Sequence


def precision_at_k(retrieved: Sequence[str], relevant: set[str], k: int) -> float:
    """Fraction of the first ``k`` retrieved items that are relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    head = list(retrieved)[:k]
    if not head:
        return 0.0
    hits = sum(1 for item in head if item in relevant)
    return hits / k


def recall_at_k(retrieved: Sequence[str], relevant: set[str], k: int) -> float:
    """Fraction of relevant items found in the first ``k`` retrieved."""
    if not relevant:
        return 0.0
    head = list(retrieved)[:k]
    hits = sum(1 for item in head if item in relevant)
    return hits / len(relevant)


def average_precision(retrieved: Sequence[str], relevant: set[str]) -> float:
    """Mean of precision values at each relevant hit (classic AP)."""
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for rank, item in enumerate(retrieved, start=1):
        if item in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)


def reciprocal_rank(retrieved: Sequence[str], relevant: set[str]) -> float:
    """1/rank of the first relevant hit (0 when none)."""
    for rank, item in enumerate(retrieved, start=1):
        if item in relevant:
            return 1.0 / rank
    return 0.0


def cosine_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine of the angle between two equal-length vectors.

    The Figure 11 training metric: cos(ObjVector, UserVector).  Zero vectors
    have similarity 0 by convention.
    """
    if len(a) != len(b):
        raise ValueError(f"vector lengths differ: {len(a)} vs {len(b)}")
    dot = sum(x * y for x, y in zip(a, b))
    norm_a = math.sqrt(sum(x * x for x in a))
    norm_b = math.sqrt(sum(y * y for y in b))
    # Norms are non-negative by construction; <= states that, and catches a
    # denormal-underflow zero the exact == comparison was never going to.
    if norm_a <= 0.0 or norm_b <= 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def kendall_tau(first: Sequence[str], second: Sequence[str]) -> float:
    """Kendall rank correlation between two rankings of the same items.

    1.0 = identical order, -1.0 = reversed.  Items missing from either
    ranking are ignored; fewer than two common items gives 0 by convention.
    Used to quantify how much a reformulation (or an approximation such as
    focused execution) perturbs a ranking.
    """
    positions_first = {item: i for i, item in enumerate(first)}
    positions_second = {item: i for i, item in enumerate(second)}
    common = [item for item in first if item in positions_second]
    n = len(common)
    if n < 2:
        return 0.0
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a = positions_first[common[i]] - positions_first[common[j]]
            b = positions_second[common[i]] - positions_second[common[j]]
            if a * b > 0:
                concordant += 1
            elif a * b < 0:
                discordant += 1
    total = n * (n - 1) / 2
    return (concordant - discordant) / total


def spearman_footrule(first: Sequence[str], second: Sequence[str]) -> float:
    """Normalized Spearman footrule distance between two rankings.

    0.0 = identical positions for all common items, 1.0 = maximal
    displacement.  Complements :func:`kendall_tau` with a displacement-based
    (rather than inversion-based) view.
    """
    positions_second = {item: i for i, item in enumerate(second)}
    common = [item for item in first if item in positions_second]
    n = len(common)
    if n < 2:
        return 0.0
    first_ranks = {item: i for i, item in enumerate(common)}
    second_order = sorted(common, key=lambda item: positions_second[item])
    second_ranks = {item: i for i, item in enumerate(second_order)}
    displacement = sum(abs(first_ranks[i] - second_ranks[i]) for i in common)
    maximum = (n * n) // 2  # the footrule maximum: floor(n^2 / 2)
    return displacement / maximum
