"""Query reformulation from relevance feedback (Section 5)."""

from repro.reformulate.aggregation import AGGREGATORS, aggregate_maps
from repro.reformulate.combined import ReformulatedQuery, Reformulator
from repro.reformulate.content import (
    DEFAULT_DECAY,
    DEFAULT_EXPANSION_FACTOR,
    DEFAULT_NUM_TERMS,
    ContentReformulator,
)
from repro.reformulate.structure import DEFAULT_ADJUSTMENT_FACTOR, StructureReformulator

__all__ = [
    "AGGREGATORS",
    "ContentReformulator",
    "DEFAULT_ADJUSTMENT_FACTOR",
    "DEFAULT_DECAY",
    "DEFAULT_EXPANSION_FACTOR",
    "DEFAULT_NUM_TERMS",
    "ReformulatedQuery",
    "Reformulator",
    "StructureReformulator",
    "aggregate_maps",
]
