"""Content-based query reformulation (Section 5.1, Equations 11-12).

Traditional relevance feedback adds terms from the feedback *document*; the
paper extends this to authority flow by drawing terms from every node of the
explaining subgraph, weighted by the authority each node passes toward the
feedback object and decayed by its distance:

    w(t) = C_d^{D(v_k)} * sum of Flow(v_k -> v_j) over subgraph out-edges
                                                            (Equation 11)

summed over subgraph nodes ``v_k`` containing ``t``.  For the feedback object
itself (whose outgoing flow is not what matters) the paper uses ``d`` times
its incoming flow instead.  The top-``Z`` terms are normalized against the
current query vector's average weight and merged in:

    Q_{i+1} = Q_i + C_e * sum of w'(t) * t                  (Equation 12)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explain.adjustment import FlowExplanation
from repro.ir.tokenize import DEFAULT_ANALYZER, Analyzer
from repro.query.query import QueryVector
from repro.reformulate.aggregation import AGGREGATORS, aggregate_maps

DEFAULT_DECAY = 0.5  # C_d, "typically set to 0.5" (Section 5.1)
DEFAULT_EXPANSION_FACTOR = 0.5  # C_e
DEFAULT_NUM_TERMS = 5  # Z, the paper's "top-k terms"; Example 2 uses 5

# Expansion terms come from node text that includes author initials ("R.
# Agrawal"); single letters are never useful query terms, so the expansion
# analyzer requires at least two characters.
_EXPANSION_ANALYZER = Analyzer(min_token_length=2)


@dataclass
class ContentReformulator:
    """Expands and reweights a query vector from explaining subgraphs."""

    decay: float = DEFAULT_DECAY
    expansion_factor: float = DEFAULT_EXPANSION_FACTOR
    num_terms: int = DEFAULT_NUM_TERMS
    analyzer: Analyzer = field(default_factory=lambda: _EXPANSION_ANALYZER)
    aggregation: str = "sum"

    def __post_init__(self) -> None:
        if self.aggregation not in AGGREGATORS:
            raise ValueError(
                f"unknown aggregation {self.aggregation!r}; "
                f"known: {sorted(AGGREGATORS)}"
            )
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay C_d must be in (0, 1], got {self.decay}")
        if not 0.0 <= self.expansion_factor <= 1.0:
            raise ValueError(
                f"expansion factor C_e must be in [0, 1], got {self.expansion_factor}"
            )

    # -- Equation 11 ---------------------------------------------------------

    def term_weights(self, explanation: FlowExplanation) -> dict[str, float]:
        """Raw expansion-term weights for one feedback object's explanation.

        Stopwords are ignored, as Section 5.1 prescribes.
        """
        subgraph = explanation.subgraph
        graph = explanation.graph
        outflow = explanation.outgoing_flow_by_node()
        # The target's "outgoing flow is not specified in G_v^Q": use
        # d * (incoming flow) instead.
        outflow[subgraph.target] = explanation.damping * explanation.target_inflow()

        weights: dict[str, float] = {}
        for node_index in subgraph.nodes:
            flow = outflow.get(node_index, 0.0)
            if flow <= 0.0:
                continue
            depth = subgraph.depth_to_target.get(node_index, 0)
            contribution = (self.decay**depth) * flow
            node = graph.data_graph.node(graph.node_id_of(node_index))
            for term in self.analyzer.unique_terms(node.text()):
                if self.analyzer.is_stopword(term):
                    continue
                weights[term] = weights.get(term, 0.0) + contribution
        return weights

    def aggregate_term_weights(
        self, explanations: list[FlowExplanation]
    ) -> dict[str, float]:
        """Combine term weights across feedback objects (Equation 14).

        The paper uses summation in its surveys; min/max/avg are the other
        monotone aggregation functions Section 5.3 names.
        """
        return aggregate_maps(
            [self.term_weights(e) for e in explanations], self.aggregation
        )

    # -- top-Z selection + normalization + Equation 12 --------------------------

    def expansion_terms(
        self, query_vector: QueryVector, explanations: list[FlowExplanation]
    ) -> list[tuple[str, float]]:
        """The top-``Z`` expansion terms with *normalized* weights.

        Normalization (Section 5.1): let ``a_q`` be the average weight of the
        current query vector and ``x`` the maximum raw expansion weight; all
        expansion weights are scaled by ``a_q / x`` so the strongest new term
        weighs as much as an average current term.
        """
        raw = self.aggregate_term_weights(explanations)
        if not raw:
            return []
        top = sorted(raw.items(), key=lambda item: (-item[1], item[0]))[: self.num_terms]
        maximum = top[0][1]
        if maximum <= 0.0:
            return []
        average = query_vector.average_weight() or 1.0
        scale = average / maximum
        return [(term, weight * scale) for term, weight in top]

    def reformulate(
        self, query_vector: QueryVector, explanations: list[FlowExplanation]
    ) -> QueryVector:
        """Apply Equation 12: merge scaled expansion terms into the vector."""
        reformulated = query_vector.copy()
        for term, weight in self.expansion_terms(query_vector, explanations):
            reformulated.add_weight(term, self.expansion_factor * weight)
        return reformulated
