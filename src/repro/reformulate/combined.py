"""Combined content + structure reformulation (Sections 5.1-5.3).

The two reformulation components are orthogonal — content-based rewrites the
query vector, structure-based rewrites the authority transfer rates — and the
paper evaluates three settings (Figure 10):

* Content-Only:            C_f = 0,   C_e = 0.2
* Content & Structure:     C_f = 0.5, C_e = 0.2
* Structure-Only:          C_f = 0.5, C_e = 0

:class:`Reformulator` bundles both components behind one call and supports
multiple feedback objects by aggregating their explaining subgraphs with a
monotone function (sum by default, as in the paper's surveys).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explain.adjustment import FlowExplanation
from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.query.query import QueryVector
from repro.reformulate.content import ContentReformulator
from repro.reformulate.structure import StructureReformulator


@dataclass(frozen=True)
class ReformulatedQuery:
    """The result of one reformulation step.

    ``query_vector`` carries the content-based expansion (unchanged when
    ``C_e = 0``); ``transfer_schema`` carries the structure-based rate
    adjustment (unchanged when ``C_f = 0``).
    """

    query_vector: QueryVector
    transfer_schema: AuthorityTransferSchemaGraph


@dataclass
class Reformulator:
    """One-call content + structure reformulation from feedback explanations."""

    content: ContentReformulator = field(default_factory=ContentReformulator)
    structure: StructureReformulator = field(default_factory=StructureReformulator)

    @classmethod
    def with_factors(
        cls,
        expansion_factor: float,
        adjustment_factor: float,
        decay: float = 0.5,
        num_terms: int = 5,
    ) -> "Reformulator":
        """Build a reformulator from the paper's calibration parameters
        ``(C_e, C_f, C_d, Z)``."""
        return cls(
            content=ContentReformulator(
                decay=decay, expansion_factor=expansion_factor, num_terms=num_terms
            ),
            structure=StructureReformulator(adjustment_factor=adjustment_factor),
        )

    @property
    def uses_content(self) -> bool:
        return self.content.expansion_factor > 0.0

    @property
    def uses_structure(self) -> bool:
        return self.structure.adjustment_factor > 0.0

    def reformulate(
        self,
        query_vector: QueryVector,
        transfer_schema: AuthorityTransferSchemaGraph,
        explanations: list[FlowExplanation],
    ) -> ReformulatedQuery:
        """Reformulate from the explaining subgraphs of the feedback objects.

        With no explanations (the user marked nothing) the query is returned
        unchanged.
        """
        if not explanations:
            return ReformulatedQuery(query_vector.copy(), transfer_schema.copy())
        new_vector = (
            self.content.reformulate(query_vector, explanations)
            if self.uses_content
            else query_vector.copy()
        )
        new_schema = (
            self.structure.reformulate(transfer_schema, explanations)
            if self.uses_structure
            else transfer_schema.copy()
        )
        return ReformulatedQuery(new_vector, new_schema)
