"""Structure-based query reformulation (Section 5.2, Equation 13).

If edges of a type carry large authority in the explaining subgraph of a
feedback object, the user probably believes that edge type matters for the
query; its authority transfer rate is boosted accordingly:

    a'(e_S) = (1 + C_f * F_norm(e_S)) * a(e_S)              (Equation 13)

where ``F(e_S)`` is the total adjusted flow carried by edges of type ``e_S``
in the explaining subgraph (summed over feedback objects, Equation 15).

Normalization (reverse-engineered from the paper's Example 2, whose output
vector [0.67, 0.0, 0.24, 0.16, 0.24, 0.24, 0.24, 0.08] it reproduces to
rounding):

1. ``F_norm = F / max(F)`` — flow factors scaled so the largest is 1;
2. apply Equation 13;
3. divide every rate by ``max(a')`` so rates lie in [0, 1] — this is what
   makes *unboosted* types decay relative to boosted ones;
4. scale all rates by a single global factor so that every schema label's
   outgoing rate sum is at most 1 (required for ObjectRank2 convergence).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.explain.adjustment import FlowExplanation
from repro.graph.authority import AuthorityTransferSchemaGraph, EdgeType
from repro.reformulate.aggregation import AGGREGATORS, aggregate_maps

DEFAULT_ADJUSTMENT_FACTOR = 0.5  # C_f, "typically set to 0.5" (Section 5.2)


@dataclass
class StructureReformulator:
    """Adjusts authority transfer rates from explaining subgraphs."""

    adjustment_factor: float = DEFAULT_ADJUSTMENT_FACTOR
    aggregation: str = "sum"

    def __post_init__(self) -> None:
        if not 0.0 <= self.adjustment_factor <= 1.0:
            raise ValueError(
                f"adjustment factor C_f must be in [0, 1], got {self.adjustment_factor}"
            )
        if self.aggregation not in AGGREGATORS:
            raise ValueError(
                f"unknown aggregation {self.aggregation!r}; "
                f"known: {sorted(AGGREGATORS)}"
            )

    def flow_factors(self, explanations: list[FlowExplanation]) -> dict[EdgeType, float]:
        """``F(e_S)`` aggregated across feedback objects (Equation 15)."""
        return aggregate_maps(
            [e.flow_by_edge_type() for e in explanations], self.aggregation
        )

    def reformulate(
        self,
        transfer_schema: AuthorityTransferSchemaGraph,
        explanations: list[FlowExplanation],
    ) -> AuthorityTransferSchemaGraph:
        """Produce a new transfer schema with adjusted, normalized rates."""
        factors = self.flow_factors(explanations)
        maximum_factor = max(factors.values(), default=0.0)
        if maximum_factor <= 0.0:
            return transfer_schema.copy()

        edge_types = transfer_schema.edge_types()
        # Steps 1 + 2: normalize factors, apply Equation 13.
        rates = {
            edge_type: (
                1.0
                + self.adjustment_factor * factors.get(edge_type, 0.0) / maximum_factor
            )
            * transfer_schema.rate(edge_type)
            for edge_type in edge_types
        }

        # Step 3: scale so the maximum rate is 1.
        maximum_rate = max(rates.values())
        if maximum_rate > 0.0:
            rates = {t: r / maximum_rate for t, r in rates.items()}

        # Step 4: one global factor so every label's outgoing sum is <= 1.
        adjusted = transfer_schema.with_vector(
            [rates[t] for t in edge_types], edge_types
        )
        worst = max(
            (adjusted.outgoing_rate_sum(label) for label in adjusted.schema.labels),
            default=0.0,
        )
        if worst > 1.0:
            rates = {t: r / worst for t, r in rates.items()}
            adjusted = transfer_schema.with_vector(
                [rates[t] for t in edge_types], edge_types
            )
        return adjusted
