"""Monotone aggregation functions for multiple feedback objects (Section 5.3).

When the user marks several objects relevant, the per-object expansion-term
weights (Equation 14) and per-edge-type flow factors (Equation 15) must be
combined.  "Typical choices are sum, min, max and average.  We use summation
in our user surveys and experiments."  All four are provided; the ablation
benchmark compares them.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, TypeVar

K = TypeVar("K", bound=Hashable)

AGGREGATORS: dict[str, Callable[[list[float]], float]] = {
    "sum": sum,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values),
}


def aggregate_maps(maps: list[Mapping[K, float]], how: str = "sum") -> dict[K, float]:
    """Combine several key -> weight maps with the named aggregator.

    Keys missing from a map are treated as absent, not zero: ``min`` over
    {a: 1} and {a: 2, b: 3} gives {a: 1, b: 3}.  (Treating absence as zero
    would make ``min`` discard every key not present in *all* explanations,
    which is never what feedback aggregation wants.)
    """
    try:
        combine = AGGREGATORS[how]
    except KeyError:
        raise ValueError(f"unknown aggregation {how!r}; known: {sorted(AGGREGATORS)}") from None
    collected: dict[K, list[float]] = {}
    for mapping in maps:
        for key, value in mapping.items():
            collected.setdefault(key, []).append(value)
    return {key: combine(values) for key, values in collected.items()}
