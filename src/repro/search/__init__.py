"""Alternative search paradigms from the paper's related work."""

from repro.search.proximity import AnswerTree, ProximitySearcher

__all__ = ["AnswerTree", "ProximitySearcher"]
