"""Keyword proximity search — the DISCOVER/[HPB03] baseline paradigm.

The related work contrasts authority flow with proximity keyword search over
databases (DBXplorer [ACD02], DISCOVER [HP02], keyword proximity on XML
graphs [HPB03]): for a multi-keyword query, find small *connecting subtrees*
whose leaves cover all keywords, ranked by size (smaller = keywords more
tightly related).  This module implements that paradigm over our data graphs
so experiments can compare the two families directly:

* proximity answers are *structures* (trees), not single objects;
* relevance is distance-based, not authority-based — a tiny tree linking two
  keywords through an obscure node beats a highly-cited hub.

The implementation follows the classic BANKS-style backward expansion:
simultaneous BFS from each keyword's hit set (edges treated as undirected,
as proximity search does); when some node has been reached from *every*
keyword, the union of the BFS paths forms an answer tree rooted there.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import EmptyBaseSetError
from repro.graph.data_graph import DataGraph
from repro.ir.index import InvertedIndex


@dataclass(frozen=True)
class AnswerTree:
    """One proximity answer: a connecting tree covering all keywords."""

    root: str
    nodes: tuple[str, ...]
    edges: tuple[tuple[str, str], ...]
    size: int  # number of edges; the ranking key (smaller is better)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"AnswerTree(root={self.root}, size={self.size})"


class ProximitySearcher:
    """BANKS-style backward-expansion proximity search."""

    def __init__(self, graph: DataGraph, index: InvertedIndex):
        self.graph = graph
        self.index = index
        self._neighbors: dict[str, list[str]] = {}
        for node_id in graph.node_ids():
            undirected = [e.target for e in graph.out_edges(node_id)]
            undirected.extend(e.source for e in graph.in_edges(node_id))
            self._neighbors[node_id] = undirected

    def search(
        self, keywords: tuple[str, ...], top_k: int = 10, max_radius: int = 5
    ) -> list[AnswerTree]:
        """Top-``top_k`` smallest answer trees for the keyword tuple.

        Single-keyword queries degenerate to the hit nodes themselves (size-0
        trees).  Raises :class:`EmptyBaseSetError` when any keyword matches
        nothing — proximity semantics are conjunctive, unlike the base set's
        disjunction.
        """
        hit_sets = []
        for keyword in dict.fromkeys(keywords):
            hits = self.index.documents_with_term(keyword)
            if not hits:
                raise EmptyBaseSetError((keyword,))
            hit_sets.append(hits)

        if len(hit_sets) == 1:
            return [
                AnswerTree(node_id, (node_id,), (), 0)
                for node_id in hit_sets[0][:top_k]
            ]

        # Backward expansion: one BFS frontier per keyword; parent pointers
        # reconstruct the path from each root node back to a keyword hit.
        parents: list[dict[str, str | None]] = []
        frontiers: list[deque[str]] = []
        for hits in hit_sets:
            reached: dict[str, str | None] = {h: None for h in hits}
            parents.append(reached)
            frontiers.append(deque(hits))

        answers: dict[str, AnswerTree] = {}
        for _radius in range(max_radius + 1):
            # Check for cover points before expanding further, so smaller
            # trees are found first.
            covered = set(parents[0])
            for reached in parents[1:]:
                covered &= set(reached)
            for root in sorted(covered):
                if root not in answers:
                    answers[root] = self._assemble(root, parents)
            if len(answers) >= top_k * 3:
                break
            progressed = False
            for keyword_index, reached in enumerate(parents):
                frontier = frontiers[keyword_index]
                next_frontier: deque[str] = deque()
                while frontier:
                    node = frontier.popleft()
                    for neighbor in self._neighbors[node]:
                        if neighbor not in reached:
                            reached[neighbor] = node
                            next_frontier.append(neighbor)
                            progressed = True
                frontiers[keyword_index] = next_frontier
            if not progressed:
                break

        ranked = sorted(answers.values(), key=lambda t: (t.size, t.root))
        return ranked[:top_k]

    def _assemble(self, root: str, parents: list[dict[str, str | None]]) -> AnswerTree:
        nodes: set[str] = {root}
        edges: set[tuple[str, str]] = set()
        for reached in parents:
            node = root
            while reached[node] is not None:
                parent = reached[node]
                edges.add((parent, node) if parent < node else (node, parent))
                nodes.add(parent)
                node = parent
        return AnswerTree(root, tuple(sorted(nodes)), tuple(sorted(edges)), len(edges))
