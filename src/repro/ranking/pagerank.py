"""Generic personalized PageRank by power iteration.

Everything in the authority-flow family (PageRank, topic-sensitive PageRank,
ObjectRank, ObjectRank2) is the fixpoint of

    r = d A r + (1 - d) s                                  (Equation 4 shape)

for a (sub)stochastic transition matrix ``A``, damping factor ``d`` and a
restart (base-set) distribution ``s``.  This module implements that fixpoint
once; the callers differ only in how they build ``A`` and ``s``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ranking.convergence import PowerIterationResult

DEFAULT_DAMPING = 0.85
DEFAULT_TOLERANCE = 0.0001  # convergence threshold used in Section 6.2
DEFAULT_MAX_ITERATIONS = 500


def power_iteration(
    matrix: sparse.spmatrix,
    restart: np.ndarray,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    init: np.ndarray | None = None,
) -> PowerIterationResult:
    """Iterate ``r <- d A r + (1 - d) restart`` until the L1 change < tolerance.

    ``matrix`` must be oriented so that ``A[j, i]`` is the rate of edge
    ``i -> j`` (see :meth:`AuthorityTransferDataGraph.matrix`).  ``init`` seeds
    the iteration — passing the previous query's scores is the warm-start
    trick of Section 6.2 ("Manipulating Initial ObjectRank values"), which the
    benchmarks show cuts the iteration count for reformulated queries.
    """
    n = matrix.shape[0]
    if restart.shape != (n,):
        raise ValueError(f"restart vector has shape {restart.shape}, expected ({n},)")
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")

    scores = np.full(n, 1.0 / n) if init is None else np.asarray(init, dtype=np.float64).copy()
    jump = (1.0 - damping) * restart
    matrix = matrix.tocsr()

    residuals: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_scores = damping * (matrix @ scores) + jump
        residual = float(np.abs(new_scores - scores).sum())
        residuals.append(residual)
        scores = new_scores
        if residual < tolerance:
            converged = True
            break
    return PowerIterationResult(scores, iterations, converged, residuals)


def pagerank(
    matrix: sparse.spmatrix,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> PowerIterationResult:
    """Classic global PageRank: uniform restart over all nodes [BP98]."""
    n = matrix.shape[0]
    restart = np.full(n, 1.0 / n)
    return power_iteration(matrix, restart, damping, tolerance, max_iterations)


def restart_distribution(
    n: int,
    restart_nodes: np.ndarray,
    restart_weights: np.ndarray | None = None,
) -> np.ndarray:
    """The normalized restart vector over ``restart_nodes``.

    A node index appearing more than once (e.g. a base-set object matched by
    two keywords) *accumulates* its weight — ``np.add.at`` instead of fancy
    assignment, which would silently keep only the last occurrence's weight.
    """
    restart = np.zeros(n)
    nodes = np.asarray(restart_nodes, dtype=np.int64)
    if restart_weights is None:
        np.add.at(restart, nodes, 1.0)
    else:
        np.add.at(restart, nodes, np.asarray(restart_weights, dtype=np.float64))
    total = restart.sum()
    if total <= 0:
        raise ValueError("restart distribution is empty or non-positive")
    restart /= total
    return restart


def personalized_pagerank(
    matrix: sparse.spmatrix,
    restart_nodes: np.ndarray,
    restart_weights: np.ndarray | None = None,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    init: np.ndarray | None = None,
) -> PowerIterationResult:
    """PageRank with restarts confined to ``restart_nodes``.

    ``restart_weights`` (default uniform) is normalized to sum to one — the
    paper's base-set probabilities.  Duplicate node indices accumulate weight.
    """
    restart = restart_distribution(matrix.shape[0], restart_nodes, restart_weights)
    return power_iteration(matrix, restart, damping, tolerance, max_iterations, init)
