"""Precomputed per-keyword ObjectRank vectors (the [BHP04] execution mode).

Section 6.2 notes that on-the-fly ObjectRank2 over DBLPcomplete-scale graphs
is "clearly too long for exploratory searching" and lists the remedies: use
faster hardware, *precompute ObjectRank2 values as in [BHP04]*, or define
focused subsets.  This module implements the precomputation remedy: one
authority vector per index keyword, computed offline, combined at query time.

The offline build runs every keyword's fixpoint through the blocked engine of
:mod:`repro.ranking.batch` — one pass over the CSR matrix advances the whole
vocabulary at once, and ``workers`` spreads the block over a process pool —
instead of one serial power iteration per keyword.  Each vector is identical
to the serial computation.

Combination at query time follows the same weighted-base-set idea as
ObjectRank2: per-keyword vectors are blended linearly with weights
proportional to the query-vector weight times the keyword's idf — a standard
approximation of the exact weighted-base-set run (exact when base sets are
disjoint and per-document IR scores are constant per keyword, close
otherwise).  The trade-off is the classic one: instant queries, approximate
scores, rates frozen at precomputation time (a structure-based reformulation
invalidates the cache — :meth:`PrecomputedRanker.is_stale` detects that).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyBaseSetError, PrecomputedCoverageError
from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.index import InvertedIndex
from repro.ir.scoring import BM25Scorer
from repro.query.query import QueryVector
from repro.ranking.batch import batched_keyword_vectors
from repro.ranking.convergence import RankedResult
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
)


class PrecomputedRanker:
    """Per-keyword ObjectRank vectors with query-time linear blending.

    ``keywords=None`` precomputes every index term whose document frequency
    is at least ``min_document_frequency`` (rare terms are cheap to run
    on the fly and bloat the cache).  ``workers`` parallelizes the offline
    build over a process pool; ``min_coverage`` is the fraction of a query's
    positive term weight that must be cached for :meth:`rank` to answer —
    below it the ranker raises instead of silently dropping the uncached
    terms (the default ``1.0`` answers only fully covered queries).
    """

    def __init__(
        self,
        graph: AuthorityTransferDataGraph,
        index: InvertedIndex,
        keywords: list[str] | None = None,
        min_document_frequency: int = 2,
        damping: float = DEFAULT_DAMPING,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        workers: int | None = None,
        min_coverage: float = 1.0,
    ) -> None:
        if not 0.0 <= min_coverage <= 1.0:
            raise ValueError(f"min_coverage must be in [0, 1], got {min_coverage}")
        self.graph = graph
        self.index = index
        self.damping = damping
        self.min_coverage = min_coverage
        self._scorer = BM25Scorer(index)
        self._rates_snapshot = graph.transfer_schema.copy()
        self._graph_version = graph.data_graph.version
        if keywords is None:
            keywords = [
                term
                for term in index.vocabulary()
                if index.document_frequency(term) >= min_document_frequency
            ]
        built = batched_keyword_vectors(
            graph, index, keywords, damping, tolerance, max_iterations,
            workers=workers,
        )
        self._vectors: dict[str, np.ndarray] = {
            keyword: result.scores for keyword, result in built.items()
        }
        self.build_iterations = int(
            sum(result.iterations for result in built.values())
        )

    @classmethod
    def from_vectors(
        cls,
        graph: AuthorityTransferDataGraph,
        index: InvertedIndex,
        vectors: dict[str, np.ndarray],
        damping: float = DEFAULT_DAMPING,
        min_coverage: float = 1.0,
        build_iterations: int = 0,
    ) -> "PrecomputedRanker":
        """Assemble a ranker from already-computed per-keyword vectors.

        The incremental-refresh entry point (:mod:`repro.ingest`): carried
        and re-converged columns are combined outside and handed over here,
        skipping the constructor's full-vocabulary build.  ``vectors``
        insertion order becomes :attr:`keywords` order, so callers must
        supply it in the same vocabulary order a full rebuild would use for
        the two to be interchangeable.
        """
        if not 0.0 <= min_coverage <= 1.0:
            raise ValueError(f"min_coverage must be in [0, 1], got {min_coverage}")
        ranker = object.__new__(cls)
        ranker.graph = graph
        ranker.index = index
        ranker.damping = damping
        ranker.min_coverage = min_coverage
        ranker._scorer = BM25Scorer(index)
        ranker._rates_snapshot = graph.transfer_schema.copy()
        ranker._graph_version = graph.data_graph.version
        ranker._vectors = dict(vectors)
        ranker.build_iterations = int(build_iterations)
        return ranker

    # -- cache inspection ------------------------------------------------------

    @property
    def keywords(self) -> list[str]:
        return list(self._vectors)

    @property
    def node_ids(self) -> list[str]:
        """Node ids the vectors are indexed by (graph row order)."""
        return self.graph.node_ids

    @property
    def graph_version(self) -> int:
        """The data-graph version the vectors were computed at."""
        return self._graph_version

    @property
    def rates_snapshot(self) -> AuthorityTransferSchemaGraph:
        """The transfer rates the vectors were computed under (a copy)."""
        return self._rates_snapshot

    def has_keyword(self, keyword: str) -> bool:
        return keyword in self._vectors

    def vector(self, keyword: str) -> np.ndarray:
        """The precomputed authority vector of one cached keyword."""
        return self._vectors[keyword]

    def keyword_idf(self, keyword: str) -> float:
        """The raw BM25 idf :meth:`rank` blends with (before its 1e-6 floor).

        Exported into score stores so the mmap serving path can blend with
        the exact same float and stay bit-identical to this ranker.
        """
        return self._scorer.idf(keyword)

    def coverage(self, query_vector: QueryVector) -> float:
        """Fraction of the query's positive term weight that is cached."""
        considered = [
            (term, query_vector.weight(term))
            for term in query_vector.terms
            if query_vector.weight(term) > 0
        ]
        total = sum(weight for _, weight in considered)
        if total <= 0:
            return 0.0
        cached = sum(
            weight for term, weight in considered if term in self._vectors
        )
        return cached / total

    def is_stale(
        self,
        rates: AuthorityTransferSchemaGraph | None = None,
        graph_version: int | None = None,
    ) -> bool:
        """Whether the cache no longer matches the rates *or* the graph.

        Structure-based reformulation changes the transfer rates, which the
        precomputed vectors baked in; a graph mutation (node or edge added,
        removed or updated) changes the fixpoints themselves.  Either makes
        the cache stale.  The graph check compares ``graph_version`` (or,
        when omitted, the live data graph's current version) against the
        version snapshotted at build time — rates alone used to be checked
        here, which let serve keep answering from vectors of a graph that no
        longer existed.
        """
        current = rates if rates is not None else self.graph.transfer_schema
        if current != self._rates_snapshot:
            return True
        if graph_version is None:
            graph_version = self.graph.data_graph.version
        return graph_version != self._graph_version

    # -- query answering ---------------------------------------------------------

    def rank(self, query_vector: QueryVector) -> RankedResult:
        """Blend precomputed vectors for the query's cached keywords.

        If no positive-weight keyword is cached the query cannot be answered
        at all and :class:`~repro.errors.EmptyBaseSetError` is raised; if the
        cached fraction of the query weight is positive but below
        ``min_coverage`` (e.g. content-based reformulation added expansion
        terms the cache never saw), :class:`~repro.errors.PrecomputedCoverageError`
        is raised instead of silently ignoring the uncached terms.  Callers
        fall back to on-the-fly ObjectRank2 in both cases.  The achieved
        coverage fraction is reported on the result.
        """
        blended = np.zeros(self.graph.num_nodes)
        total_weight = 0.0
        matched: dict[str, float] = {}
        missing: list[str] = []
        considered_weight = 0.0
        covered_weight = 0.0
        for term in query_vector.terms:
            weight = query_vector.weight(term)
            if weight <= 0:
                continue
            considered_weight += weight
            if term not in self._vectors:
                missing.append(term)
                continue
            covered_weight += weight
            blend_weight = weight * max(self._scorer.idf(term), 1e-6)
            blended += blend_weight * self._vectors[term]
            total_weight += blend_weight
            matched[term] = blend_weight
        # total_weight accumulates strictly positive blend weights, so "no
        # cached keyword matched" is exactly total_weight <= 0.0 — an exact
        # == 0.0 would miss a (theoretical) underflow-to-subnormal sum and
        # then divide by it below.  considered_weight can only be zero when
        # total_weight is (a term contributes to the latter only after the
        # former), so the second disjunct never changes behavior — it makes
        # the coverage division's guard locally checkable.
        if total_weight <= 0.0 or considered_weight <= 0.0:
            raise EmptyBaseSetError(tuple(query_vector.terms))
        coverage = covered_weight / considered_weight
        if coverage < self.min_coverage:
            raise PrecomputedCoverageError(
                tuple(missing), coverage, self.min_coverage
            )
        blended /= total_weight
        return RankedResult(
            node_ids=self.graph.node_ids,
            scores=blended,
            iterations=0,  # query time does no power iteration
            converged=True,
            base_weights={t: w / total_weight for t, w in matched.items()},
            coverage=coverage,
        )
