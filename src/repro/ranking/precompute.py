"""Precomputed per-keyword ObjectRank vectors (the [BHP04] execution mode).

Section 6.2 notes that on-the-fly ObjectRank2 over DBLPcomplete-scale graphs
is "clearly too long for exploratory searching" and lists the remedies: use
faster hardware, *precompute ObjectRank2 values as in [BHP04]*, or define
focused subsets.  This module implements the precomputation remedy: one
authority vector per index keyword, computed offline, combined at query time.

Combination at query time follows the same weighted-base-set idea as
ObjectRank2: per-keyword vectors are blended linearly with weights
proportional to the query-vector weight times the keyword's idf — a standard
approximation of the exact weighted-base-set run (exact when base sets are
disjoint and per-document IR scores are constant per keyword, close
otherwise).  The trade-off is the classic one: instant queries, approximate
scores, rates frozen at precomputation time (a structure-based reformulation
invalidates the cache — :meth:`PrecomputedRanker.is_stale` detects that).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyBaseSetError
from repro.graph.authority import AuthorityTransferSchemaGraph
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.index import InvertedIndex
from repro.ir.scoring import BM25Scorer
from repro.query.query import QueryVector
from repro.ranking.convergence import RankedResult
from repro.ranking.objectrank import objectrank
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
)


class PrecomputedRanker:
    """Per-keyword ObjectRank vectors with query-time linear blending.

    ``keywords=None`` precomputes every index term whose document frequency
    is at least ``min_document_frequency`` (rare terms are cheap to run
    on the fly and bloat the cache).
    """

    def __init__(
        self,
        graph: AuthorityTransferDataGraph,
        index: InvertedIndex,
        keywords: list[str] | None = None,
        min_document_frequency: int = 2,
        damping: float = DEFAULT_DAMPING,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
    ) -> None:
        self.graph = graph
        self.index = index
        self.damping = damping
        self._scorer = BM25Scorer(index)
        self._rates_snapshot = graph.transfer_schema.copy()
        if keywords is None:
            keywords = [
                term
                for term in index.vocabulary()
                if index.document_frequency(term) >= min_document_frequency
            ]
        self._vectors: dict[str, np.ndarray] = {}
        for keyword in keywords:
            base = index.documents_with_term(keyword)
            if not base:
                continue
            self._vectors[keyword] = objectrank(
                graph, base, damping, tolerance, max_iterations
            ).scores

    # -- cache inspection ------------------------------------------------------

    @property
    def keywords(self) -> list[str]:
        return list(self._vectors)

    def has_keyword(self, keyword: str) -> bool:
        return keyword in self._vectors

    def is_stale(self, rates: AuthorityTransferSchemaGraph | None = None) -> bool:
        """Whether the cache no longer matches the (possibly learned) rates.

        Structure-based reformulation changes the transfer rates, which the
        precomputed vectors baked in; a stale cache must be rebuilt (or the
        query answered on the fly).
        """
        current = rates if rates is not None else self.graph.transfer_schema
        return current != self._rates_snapshot

    # -- query answering ---------------------------------------------------------

    def rank(self, query_vector: QueryVector) -> RankedResult:
        """Blend precomputed vectors for the query's cached keywords.

        Keywords without a cached vector are skipped; if none remain the
        query cannot be answered from the cache and
        :class:`~repro.errors.EmptyBaseSetError` is raised (callers fall back
        to on-the-fly ObjectRank2).
        """
        blended = np.zeros(self.graph.num_nodes)
        total_weight = 0.0
        matched: dict[str, float] = {}
        for term in query_vector.terms:
            weight = query_vector.weight(term)
            if weight <= 0 or term not in self._vectors:
                continue
            blend_weight = weight * max(self._scorer.idf(term), 1e-6)
            blended += blend_weight * self._vectors[term]
            total_weight += blend_weight
            matched[term] = blend_weight
        if total_weight == 0.0:
            raise EmptyBaseSetError(tuple(query_vector.terms))
        blended /= total_weight
        return RankedResult(
            node_ids=self.graph.node_ids,
            scores=blended,
            iterations=0,  # query time does no power iteration
            converged=True,
            base_weights={t: w / total_weight for t, w in matched.items()},
        )
