"""Authority-flow ranking: PageRank, ObjectRank, ObjectRank2 and baselines
(Section 3, Equations 4 and 16)."""

from repro.ranking.batch import (
    BatchedPowerIterationResult,
    batched_keyword_vectors,
    batched_objectrank,
    batched_objectrank2,
    batched_power_iteration,
)
from repro.ranking.compare import RankChange, RankingDelta, ranking_delta
from repro.ranking.convergence import PowerIterationResult, RankedResult
from repro.ranking.focused import FocusedResult, focused_neighborhood, focused_objectrank2
from repro.ranking.hits import HitsResult, hits
from repro.ranking.ir_only import ir_only_rank
from repro.ranking.objectrank import (
    base_set,
    global_objectrank,
    keyword_objectrank,
    multi_keyword_objectrank,
    normalizing_exponent,
    objectrank,
)
from repro.ranking.objectrank2 import objectrank2, weighted_base_set
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    pagerank,
    personalized_pagerank,
    power_iteration,
    restart_distribution,
)
from repro.ranking.precompute import PrecomputedRanker
from repro.ranking.topk import objectrank2_topk
from repro.ranking.topic_sensitive import TopicSensitiveRanker

__all__ = [
    "BatchedPowerIterationResult",
    "DEFAULT_DAMPING",
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_TOLERANCE",
    "FocusedResult",
    "HitsResult",
    "PowerIterationResult",
    "PrecomputedRanker",
    "RankChange",
    "RankedResult",
    "RankingDelta",
    "TopicSensitiveRanker",
    "base_set",
    "batched_keyword_vectors",
    "batched_objectrank",
    "batched_objectrank2",
    "batched_power_iteration",
    "focused_neighborhood",
    "focused_objectrank2",
    "global_objectrank",
    "hits",
    "ir_only_rank",
    "keyword_objectrank",
    "multi_keyword_objectrank",
    "normalizing_exponent",
    "objectrank",
    "objectrank2",
    "objectrank2_topk",
    "pagerank",
    "personalized_pagerank",
    "power_iteration",
    "ranking_delta",
    "restart_distribution",
    "weighted_base_set",
]
