"""Query-focused subgraph execution of ObjectRank2.

Section 6.2 lists "define focused subsets like DBLPtop and DS7cancer" as one
remedy for slow full-graph ObjectRank2; the related work cites the Hubs of
Knowledge project [SIY06], which "applies the PageRank algorithm on a
query-dependent subgraph of the original biological graph".  This module
implements that execution mode *per query*, with no offline subsetting:

1. expand the query's base set to its k-hop neighborhood (both edge
   directions, positive-rate edges only);
2. run the ObjectRank2 power iteration on the induced submatrix;
3. report scores for subgraph nodes (everything outside scores 0).

The approximation is good because authority decays geometrically with
distance from the base set (damping times per-edge rates < 1 per hop), so a
small horizon captures almost all the mass — the same locality that makes
the explaining subgraph's radius L=3 adequate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np
from scipy import sparse

from repro.errors import EmptyBaseSetError
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.scoring import Scorer
from repro.query.query import QueryVector
from repro.ranking.convergence import PowerIterationResult, RankedResult
from repro.ranking.objectrank2 import weighted_base_set
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    power_iteration,
)
from repro.ranking.topk import topk_power_iteration

DEFAULT_HORIZON = 3


@dataclass
class FocusedResult:
    """A focused-execution ranking plus accounting about the subgraph."""

    ranked: RankedResult
    subgraph_nodes: int
    subgraph_edges: int
    horizon: int

    @property
    def coverage(self) -> float:
        """Fraction of all graph nodes inside the focused subgraph."""
        total = len(self.ranked.node_ids)
        return self.subgraph_nodes / total if total else 0.0


def focused_neighborhood(
    graph: AuthorityTransferDataGraph,
    seed_indices: Iterable[int],
    horizon: int,
    expand_cap: int | None = None,
    node_budget: int | None = None,
    max_horizon: int | None = None,
) -> np.ndarray:
    """Node indices within ``horizon`` hops of the seeds (either direction),
    as a sorted array.

    Level-synchronous frontier expansion with vectorized incidence gathers
    (:meth:`AuthorityTransferDataGraph.out_edge_ids_many`): each hop costs
    numpy work proportional to the edges touched by the frontier, never a
    Python loop over nodes — what keeps focused and two-stage execution
    proportional to the answer neighborhood.

    ``expand_cap`` bounds which nodes the expansion passes *through*: a
    frontier node with transfer-edge degree above the cap is still included
    in the neighborhood, but its own neighbors are not enumerated.  On
    citation-style graphs a handful of hub nodes (years, venues) otherwise
    pull in a constant fraction of the corpus at hop 2, destroying the
    page-proportional cost the two-stage engine is built around; authority
    mass through such hubs is tiny anyway because their transfer rates are
    split over thousands of out-edges.  ``None`` (the default) expands
    everything — the exact semantics focused ObjectRank2 is specified with.

    ``node_budget`` with ``max_horizon`` makes the horizon *adaptively
    deeper*: the first ``horizon`` hops always run, then extra hops up to
    ``max_horizon`` run only while the neighborhood is still smaller than
    the budget.  Selective queries (a handful of seeds) then deepen for
    nearly free — shallow truncation is what biases their page — while hot
    queries whose base horizon already exceeds the budget never pay an
    extra hop.  The budget is soft: it is checked *between* hops, never
    mid-hop, so the last hop may overshoot it.  ``None`` keeps the
    fixed-horizon semantics.
    """
    visited = np.zeros(graph.num_nodes, dtype=bool)
    frontier = np.unique(np.asarray(list(seed_indices), dtype=np.int64))
    if frontier.size:
        visited[frontier] = True
    reached = int(frontier.size)
    degrees = graph.node_degrees() if expand_cap is not None else None
    deepen = node_budget is not None and max_horizon is not None
    total_hops = max(horizon, max_horizon) if deepen else horizon
    for hop in range(total_hops):
        if deepen and hop >= horizon and reached >= node_budget:
            break
        if degrees is not None and frontier.size:
            frontier = frontier[degrees[frontier] <= expand_cap]
        if frontier.size == 0:
            break
        out = graph.out_edge_ids_many(frontier)
        inc = graph.in_edge_ids_many(frontier)
        neighbors = np.concatenate(
            (
                graph.edge_target[out[graph.edge_rate[out] > 0]],
                graph.edge_source[inc[graph.edge_rate[inc] > 0]],
            )
        )
        # Deduplicate by scattering into a fresh mask instead of sorting the
        # (large, duplicate-heavy) neighbor array — O(nodes) beats O(E log E).
        fresh = np.zeros(graph.num_nodes, dtype=bool)
        fresh[neighbors] = True
        fresh &= ~visited
        visited |= fresh
        frontier = np.flatnonzero(fresh)
        reached += int(frontier.size)
    return np.flatnonzero(visited)


@dataclass
class InducedRun:
    """One ObjectRank2 power iteration over an induced subgraph."""

    outcome: PowerIterationResult
    #: Full-length score vector (zeros outside the subgraph).
    scores: np.ndarray
    #: Sorted node indices of the subgraph.
    nodes: np.ndarray
    #: Positive-rate transition entries inside (parallel edges merged).
    edge_count: int


def induced_transition_matrix(
    graph: AuthorityTransferDataGraph, nodes: np.ndarray
) -> tuple[sparse.csr_matrix, int, np.ndarray]:
    """Transition submatrix induced by ``nodes`` (sorted node indices).

    Sliced out of the cached full transition matrix
    (:meth:`AuthorityTransferDataGraph.matrix`) by row/column selection, so
    the kept entries carry exactly the full matrix's floats (parallel edges
    already merged) and the build cost is C-level row gathering instead of a
    per-query COO sort.  Returns the matrix, the positive-rate entry count
    and the full->local index map (-1 outside).
    """
    local = np.full(graph.num_nodes, -1, dtype=np.int64)
    # repro-lint: ignore[RL001] nodes is sorted-unique, no duplicate indices
    local[nodes] = np.arange(nodes.size, dtype=np.int64)
    full = graph.matrix()
    starts = full.indptr[nodes]
    counts = full.indptr[nodes + 1] - starts
    total = int(counts.sum())
    # Flat positions of the selected rows' entries: for entry j of row r the
    # position is starts[r] + j, built without any Python-level loop.
    row_offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
    flat = np.repeat(starts - row_offsets, counts) + np.arange(total)
    columns = local[full.indices[flat]]
    values = full.data[flat]
    keep = (columns >= 0) & (values != 0)
    rows = np.repeat(np.arange(nodes.size), counts)[keep]
    row_counts = np.bincount(rows, minlength=nodes.size)
    indptr = np.concatenate(([0], np.cumsum(row_counts)))
    matrix = sparse.csr_matrix(
        (values[keep], columns[keep], indptr), shape=(nodes.size, nodes.size)
    )
    return matrix, int(matrix.nnz), local


def induced_objectrank(
    graph: AuthorityTransferDataGraph,
    nodes: np.ndarray,
    base: dict[str, float],
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    early_k: int | None = None,
    stable_iterations: int = 3,
    residual_guard: float = 0.05,
) -> InducedRun:
    """Run the ObjectRank2 fixpoint on the subgraph induced by ``nodes``.

    ``base`` maps node ids (all inside ``nodes``) to restart weights.  This is
    the shared execution core of :func:`focused_objectrank2` and the two-stage
    engine's rerank stage — sharing it is what makes their degenerate configs
    bit-identical.  ``early_k`` switches the exact power iteration for the
    top-k-stability early exit of :func:`repro.ranking.topk.topk_power_iteration`.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    matrix, edge_count, local = induced_transition_matrix(graph, nodes)
    restart = np.zeros(nodes.size)
    for node_id, weight in base.items():
        restart[local[graph.index_of(node_id)]] = weight
    if early_k is None:
        outcome = power_iteration(matrix, restart, damping, tolerance, max_iterations)
    else:
        outcome = topk_power_iteration(
            matrix, restart, early_k, damping,
            stable_iterations, residual_guard, max_iterations,
        )
    scores = np.zeros(graph.num_nodes)
    # repro-lint: ignore[RL001] nodes is sorted-unique, no duplicate indices
    scores[nodes] = outcome.scores
    return InducedRun(outcome, scores, nodes, edge_count)


def focused_objectrank2(
    graph: AuthorityTransferDataGraph,
    scorer: Scorer,
    query_vector: QueryVector,
    horizon: int = DEFAULT_HORIZON,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> FocusedResult:
    """ObjectRank2 restricted to the base set's ``horizon``-hop neighborhood.

    Returns full-length score vectors (zeros outside the subgraph) so results
    compose with everything else in the library.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    base = weighted_base_set(scorer, query_vector)
    if not base:
        raise EmptyBaseSetError(tuple(query_vector.terms))
    seeds = [graph.index_of(node_id) for node_id in base]
    nodes = focused_neighborhood(graph, seeds, horizon)
    run = induced_objectrank(
        graph, np.asarray(nodes, dtype=np.int64), base,
        damping, tolerance, max_iterations,
    )
    ranked = RankedResult(
        node_ids=graph.node_ids,
        scores=run.scores,
        iterations=run.outcome.iterations,
        converged=run.outcome.converged,
        base_weights=base,
        residuals=run.outcome.residuals,
    )
    return FocusedResult(ranked, len(nodes), run.edge_count, horizon)
