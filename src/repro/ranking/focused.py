"""Query-focused subgraph execution of ObjectRank2.

Section 6.2 lists "define focused subsets like DBLPtop and DS7cancer" as one
remedy for slow full-graph ObjectRank2; the related work cites the Hubs of
Knowledge project [SIY06], which "applies the PageRank algorithm on a
query-dependent subgraph of the original biological graph".  This module
implements that execution mode *per query*, with no offline subsetting:

1. expand the query's base set to its k-hop neighborhood (both edge
   directions, positive-rate edges only);
2. run the ObjectRank2 power iteration on the induced submatrix;
3. report scores for subgraph nodes (everything outside scores 0).

The approximation is good because authority decays geometrically with
distance from the base set (damping times per-edge rates < 1 per hop), so a
small horizon captures almost all the mass — the same locality that makes
the explaining subgraph's radius L=3 adequate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.errors import EmptyBaseSetError
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.scoring import Scorer
from repro.query.query import QueryVector
from repro.ranking.convergence import RankedResult
from repro.ranking.objectrank2 import weighted_base_set
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    power_iteration,
)

DEFAULT_HORIZON = 3


@dataclass
class FocusedResult:
    """A focused-execution ranking plus accounting about the subgraph."""

    ranked: RankedResult
    subgraph_nodes: int
    subgraph_edges: int
    horizon: int

    @property
    def coverage(self) -> float:
        """Fraction of all graph nodes inside the focused subgraph."""
        total = len(self.ranked.node_ids)
        return self.subgraph_nodes / total if total else 0.0


def focused_neighborhood(
    graph: AuthorityTransferDataGraph,
    seed_indices: list[int],
    horizon: int,
) -> list[int]:
    """Node indices within ``horizon`` hops of the seeds (either direction)."""
    depth: dict[int, int] = {int(s): 0 for s in seed_indices}
    frontier: deque[int] = deque(depth)
    while frontier:
        node = frontier.popleft()
        node_depth = depth[node]
        if node_depth >= horizon:
            continue
        for edge_id in graph.out_edge_ids(node):
            if graph.edge_rate[edge_id] <= 0:
                continue
            neighbor = int(graph.edge_target[edge_id])
            if neighbor not in depth:
                depth[neighbor] = node_depth + 1
                frontier.append(neighbor)
        for edge_id in graph.in_edge_ids(node):
            if graph.edge_rate[edge_id] <= 0:
                continue
            neighbor = int(graph.edge_source[edge_id])
            if neighbor not in depth:
                depth[neighbor] = node_depth + 1
                frontier.append(neighbor)
    return sorted(depth)


def focused_objectrank2(
    graph: AuthorityTransferDataGraph,
    scorer: Scorer,
    query_vector: QueryVector,
    horizon: int = DEFAULT_HORIZON,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> FocusedResult:
    """ObjectRank2 restricted to the base set's ``horizon``-hop neighborhood.

    Returns full-length score vectors (zeros outside the subgraph) so results
    compose with everything else in the library.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    base = weighted_base_set(scorer, query_vector)
    if not base:
        raise EmptyBaseSetError(tuple(query_vector.terms))
    seeds = [graph.index_of(node_id) for node_id in base]
    nodes = focused_neighborhood(graph, seeds, horizon)
    local_index = {node: i for i, node in enumerate(nodes)}

    # Induced submatrix: keep transfer edges with both endpoints inside.
    rows: list[int] = []
    cols: list[int] = []
    rates: list[float] = []
    edge_count = 0
    for node in nodes:
        for edge_id in graph.out_edge_ids(node):
            rate = graph.edge_rate[edge_id]
            if rate <= 0:
                continue
            dest = int(graph.edge_target[edge_id])
            if dest in local_index:
                rows.append(local_index[dest])
                cols.append(local_index[node])
                rates.append(float(rate))
                edge_count += 1
    matrix = sparse.csr_matrix(
        (rates, (rows, cols)), shape=(len(nodes), len(nodes))
    )

    restart = np.zeros(len(nodes))
    for node_id, weight in base.items():
        restart[local_index[graph.index_of(node_id)]] = weight
    outcome = power_iteration(
        matrix, restart, damping, tolerance, max_iterations
    )

    scores = np.zeros(graph.num_nodes)
    scores[nodes] = outcome.scores
    ranked = RankedResult(
        node_ids=graph.node_ids,
        scores=scores,
        iterations=outcome.iterations,
        converged=outcome.converged,
        base_weights=base,
        residuals=outcome.residuals,
    )
    return FocusedResult(ranked, len(nodes), edge_count, horizon)
