"""Top-k ObjectRank2 with early termination.

The interactive system only ever shows the user the top-k objects, so the
power iteration can stop as soon as the *identity and order* of the top-k is
stable, well before the scores themselves converge to the tolerance — the
classic iterative-ranking optimization in the ObjectRank family.

The stopping rule: after each iteration, compare the top-k id sequence to the
previous iteration's; after ``stable_iterations`` consecutive identical
sequences (and a residual below a loose guard), stop.  The guard prevents
declaring stability during the first flat iterations of a cold start.
"""

from __future__ import annotations

import numpy as np

from scipy import sparse

from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.scoring import Scorer
from repro.query.query import QueryVector
from repro.ranking.convergence import PowerIterationResult, RankedResult
from repro.ranking.objectrank2 import weighted_base_set
from repro.ranking.pagerank import DEFAULT_DAMPING, DEFAULT_MAX_ITERATIONS


def topk_power_iteration(
    matrix: sparse.spmatrix,
    restart: np.ndarray,
    k: int,
    damping: float = DEFAULT_DAMPING,
    stable_iterations: int = 3,
    residual_guard: float = 0.05,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    init: np.ndarray | None = None,
) -> PowerIterationResult:
    """Power iteration that stops once the top-``k`` id sequence is stable.

    The matrix-agnostic core of :func:`objectrank2_topk`, reused by the
    two-stage engine's rerank stage on induced submatrices.  ``converged``
    means "top-k stable", not "residual below tolerance".
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if stable_iterations < 1:
        raise ValueError(f"stable_iterations must be positive, got {stable_iterations}")

    n = matrix.shape[0]
    jump = (1.0 - damping) * restart
    scores = (
        np.full(n, 1.0 / max(n, 1))
        if init is None
        else np.asarray(init, dtype=np.float64).copy()
    )

    def top_ids(vector: np.ndarray) -> tuple[int, ...]:
        head = min(k, len(vector))
        if head == len(vector):
            candidates = np.arange(len(vector))
        else:
            # argpartition is O(n); only the k candidates need full sorting.
            candidates = np.argpartition(-vector, head - 1)[:head]
        order = candidates[np.argsort(-vector[candidates], kind="stable")]
        return tuple(int(i) for i in order)

    previous_top: tuple[int, ...] | None = None
    stable = 0
    residuals: list[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_scores = damping * (matrix @ scores) + jump
        residual = float(np.abs(new_scores - scores).sum())
        residuals.append(residual)
        scores = new_scores
        if residual >= residual_guard:
            # Stability cannot count yet; skip the top-k extraction entirely
            # so the guard phase costs nothing beyond the matvec.
            stable = 0
            previous_top = None
            continue
        current_top = top_ids(scores)
        if current_top == previous_top:
            stable += 1
            if stable >= stable_iterations:
                converged = True
                break
        else:
            stable = 0
        previous_top = current_top

    return PowerIterationResult(scores, iterations, converged, residuals)


def objectrank2_topk(
    graph: AuthorityTransferDataGraph,
    scorer: Scorer,
    query_vector: QueryVector,
    k: int = 10,
    damping: float = DEFAULT_DAMPING,
    stable_iterations: int = 3,
    residual_guard: float = 0.05,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    init: np.ndarray | None = None,
) -> RankedResult:
    """ObjectRank2 that stops once the top-``k`` ranking is stable.

    Returns the same :class:`RankedResult` shape as exact ObjectRank2; the
    scores are the (slightly unconverged) iterates, which is fine for
    ranking but not for flow explanation — explain with exact scores.
    """
    base = weighted_base_set(scorer, query_vector)
    restart = np.zeros(graph.num_nodes)
    for node_id, weight in base.items():
        restart[graph.index_of(node_id)] = weight

    outcome = topk_power_iteration(
        graph.matrix(),
        restart,
        k,
        damping,
        stable_iterations,
        residual_guard,
        max_iterations,
        init,
    )
    return RankedResult(
        node_ids=graph.node_ids,
        scores=outcome.scores,
        iterations=outcome.iterations,
        converged=outcome.converged,
        base_weights=base,
        residuals=outcome.residuals,
    )
