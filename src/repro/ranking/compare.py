"""Ranking comparison: what changed after a reformulation.

The interactive loop shows users a new ranking after each feedback round;
understanding *what moved and why* is half the value of explanation.  This
module diffs two rankings into a structured, displayable delta: entries that
rose, fell, entered or left the visible window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class RankChange:
    """One item's movement between two rankings (1-based positions)."""

    node_id: str
    before: int | None  # None = not in the previous window
    after: int | None  # None = dropped out of the new window

    @property
    def kind(self) -> str:
        """One of ``entered``, ``dropped``, ``up``, ``down``, ``same``."""
        if self.before is None:
            return "entered"
        if self.after is None:
            return "dropped"
        if self.after < self.before:
            return "up"
        if self.after > self.before:
            return "down"
        return "same"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == "entered":
            return f"+ {self.node_id} (new at #{self.after})"
        if self.kind == "dropped":
            return f"- {self.node_id} (was #{self.before})"
        arrow = {"up": "^", "down": "v", "same": "="}[self.kind]
        return f"{arrow} {self.node_id} (#{self.before} -> #{self.after})"


@dataclass(frozen=True)
class RankingDelta:
    """The full diff of two ranking windows."""

    changes: tuple[RankChange, ...]

    def of_kind(self, kind: str) -> list[RankChange]:
        """Changes of one movement kind (entered/dropped/up/down/same)."""
        return [change for change in self.changes if change.kind == kind]

    @property
    def stable_fraction(self) -> float:
        """Fraction of the union of both windows that kept its position."""
        if not self.changes:
            return 1.0
        return len(self.of_kind("same")) / len(self.changes)

    def summary(self) -> str:
        """One line: counts per movement kind."""
        kinds = ("up", "down", "entered", "dropped", "same")
        parts = [f"{kind}: {len(self.of_kind(kind))}" for kind in kinds]
        return ", ".join(parts)


def ranking_delta(
    before: Sequence[str], after: Sequence[str], window: int | None = None
) -> RankingDelta:
    """Diff two rankings, optionally restricted to the top-``window``.

    Changes are ordered: risers first (largest jump first), then new
    entries, then fallers, drops, and unchanged items.
    """
    before = list(before)[:window] if window else list(before)
    after = list(after)[:window] if window else list(after)
    before_pos = {node_id: i + 1 for i, node_id in enumerate(before)}
    after_pos = {node_id: i + 1 for i, node_id in enumerate(after)}

    changes = []
    for node_id in dict.fromkeys([*after, *before]):
        changes.append(
            RankChange(node_id, before_pos.get(node_id), after_pos.get(node_id))
        )

    def sort_key(change: RankChange):
        order = {"up": 0, "entered": 1, "down": 2, "dropped": 3, "same": 4}
        movement = 0
        if change.before is not None and change.after is not None:
            movement = change.after - change.before
        return (order[change.kind], movement, change.node_id)

    return RankingDelta(tuple(sorted(changes, key=sort_key)))
