"""Blocked multi-restart power iteration (topic-sensitive-style batching).

Every precomputation family in this package — per-keyword [BHP04] vectors,
per-topic [Hav02] vectors, the per-keyword fixpoints of Equation 16 — runs
the *same* fixpoint

    r = d A r + (1 - d) s                                   (Equation 4 shape)

over the *same* CSR matrix, varying only the restart vector ``s``.  Running
them one at a time re-streams the matrix once per vector.  This module stacks
the ``k`` restart vectors into an ``(n, k)`` block ``S`` and iterates

    R <- d · A @ R + (1 - d) · S

so one pass over the matrix advances every column at once (the classic
blocked fixpoint of topic-sensitive PageRank precomputation).  Columns
converge independently: a converged column is *frozen* (its scores stop
changing and it leaves the residual check) and, with ``compact=True``,
dropped from the active block so late stragglers don't pay for finished
columns.  ``workers`` optionally splits the block across a process (or
thread) pool for very large vocabularies.

This is a performance change, not an approximation: per column, the blocked
engine performs bit-for-bit the same floating-point operations in the same
order as :func:`repro.ranking.pagerank.power_iteration` — same scores, same
iteration counts.  (A CSR matrix–block product accumulates each output
column in the same nonzero order as the matrix–vector product, and a
convergence decision that falls near the tolerance is re-checked with the
serial engine's exact contiguous reduction, so every column converges on
exactly the serial iteration.)  Only the recorded residual *traces* are
computed in a different summation order (the kernel's sequential row-order
sum, or a vectorized axis-0 reduction on the scipy path, instead of the
serial pairwise sum) and may differ from the serial trace by a few ulps —
``O(n · eps)`` relative, far below any tolerance in use.

Columns are processed in cache-sized chunks (``block_width``, default 32)
rather than one giant block: the CSR matrix and a ~32-column slab stay
resident in cache while a full-vocabulary block would stream from DRAM every
iteration and lose to the serial loop outright.  When a C compiler is
available, each chunk step runs through a width-specialized compiled kernel
(:mod:`repro.ranking._native`) that keeps the per-row accumulators in
registers and fuses the residual sums into the matrix pass.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

import numpy as np
from scipy import sparse

from repro.errors import EmptyBaseSetError
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ranking import _native
from repro.ir.scoring import Scorer
from repro.ranking.convergence import PowerIterationResult, RankedResult
from repro.ranking.objectrank2 import weighted_base_set
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    restart_distribution,
)

if TYPE_CHECKING:  # avoid a circular import: repro.query depends on ranking
    from repro.query.query import QueryVector


class BatchedPowerIterationResult:
    """Per-column outcomes of one blocked power-iteration run.

    ``scores`` is ``(n, k)`` — column ``j`` is the fixpoint of restart column
    ``j``.  ``iterations``/``converged`` are per-column, matching what the
    serial engine would have reported for that restart vector alone.

    After a chunked run the scores live in per-chunk slabs; :meth:`column`
    serves a column straight from its owning chunk (one copy) and the full
    ``(n, k)`` matrix is only assembled — once, lazily — if ``scores`` is
    actually read.  Consumers that fan the block back out into per-column
    results (every ranker in this module) never pay for the big scatter.
    """

    def __init__(
        self,
        scores: np.ndarray | None,
        iterations: np.ndarray,
        converged: np.ndarray,
        residuals: list[list[float]],
        *,
        parts: list[tuple[int, np.ndarray]] | None = None,
        num_rows: int = 0,
    ) -> None:
        self.iterations = iterations
        self.converged = converged
        self.residuals = residuals
        self._scores = scores
        self._parts = parts  # [(first column id, (n, chunk) scores)]
        self._num_rows = int(scores.shape[0]) if scores is not None else num_rows

    @property
    def scores(self) -> np.ndarray:
        if self._scores is None:
            assembled = np.empty((self._num_rows, len(self.iterations)))
            for first, part in self._parts or []:
                assembled[:, first : first + part.shape[1]] = part
            self._scores = assembled
        return self._scores

    @property
    def num_columns(self) -> int:
        return len(self.iterations)

    def column(self, j: int) -> PowerIterationResult:
        """Column ``j`` repackaged as a serial-engine result."""
        scores = None
        if self._scores is None and self._parts is not None:
            for first, part in self._parts:
                if first <= j < first + part.shape[1]:
                    scores = np.ascontiguousarray(part[:, j - first])
                    break
        if scores is None:
            scores = np.ascontiguousarray(self.scores[:, j])
        return PowerIterationResult(
            scores=scores,
            iterations=int(self.iterations[j]),
            converged=bool(self.converged[j]),
            residuals=list(self.residuals[j]) if self.residuals else [],
        )


#: Columns iterated together per chunk.  Sized so the CSR matrix plus a
#: working set (block, new block) of this width stays in cache on ordinary
#: hardware, and matching a register-specialized width of the compiled
#: kernel; wider blocks spill accumulators and stream from DRAM.
DEFAULT_BLOCK_WIDTH = 32

#: Relative safety band around the tolerance inside which a convergence
#: decision is re-checked with the serial engine's exact reduction.  The fast
#: axis-0 residual differs from the exact pairwise sum by at most ~``n·eps``
#: relative (≈1e-11 at a million nodes), five orders below this band, so a
#: decision taken outside the band provably agrees with the serial engine.
_EXACT_CHECK_BAND = 1e-6


def _padded_width(k: int) -> int:
    """Next specialized kernel width, when padding beats the generic body.

    The compiled kernel's runtime-width fallback runs at roughly half the
    per-column speed of its unrolled widths, so a near-miss chunk (e.g. the
    29-column tail of a vocabulary) is cheaper to pad up to the next
    specialized width than to run as-is.  Only pads within 25% extra work.
    """
    if k in _native.SPECIALIZED_WIDTHS:
        return k
    for width in _native.SPECIALIZED_WIDTHS:
        if k < width <= k * 1.25:
            return width
    return k


def _iterate_block(
    matrix: sparse.csr_matrix,
    restarts: np.ndarray,
    scores: np.ndarray | None,
    damping: float,
    tolerance: float,
    max_iterations: int,
    compact: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[list[float]]]:
    """Run the blocked fixpoint on one ``(n, k)`` block.

    Module-level (not a closure) so a process pool can pickle it.  ``scores``
    may be ``None`` for the default uniform ``1/n`` start — the chunk fills
    its own slab instead of the caller materializing a full-width init.
    Residuals for all active columns come fused out of the kernel's matrix
    pass (or from one vectorized ``|new - old|`` pass on the scipy
    fallback); a column whose fast residual lands inside
    ``_EXACT_CHECK_BAND`` of the tolerance is re-reduced over a contiguous
    copy — the serial engine's pairwise summation — so iteration counts
    match serial bit-for-bit.

    A converged column's scores are captured into ``out`` immediately; the
    column then *coasts* in the block (its values keep refining harmlessly)
    until amortized compaction drops it, instead of paying a block copy per
    convergence event or a masked write per iteration.
    """
    n, k = restarts.shape
    requested = k
    use_native = _native.available()
    padded = _padded_width(k) if use_native else k
    if padded != k:
        # Pad with copies of column 0 so the extra columns trace exactly the
        # same (already-sparse) iteration sequence as a real column instead
        # of adding new jump rows or a slow-converging straggler.
        extra = padded - k
        restarts = np.concatenate(
            [restarts, np.repeat(restarts[:, :1], extra, axis=1)], axis=1
        )
        if scores is not None:
            scores = np.concatenate(
                [scores, np.repeat(scores[:, :1], extra, axis=1)], axis=1
            )
        k = padded

    def alloc(shape: tuple[int, int]) -> np.ndarray:
        # Kernel slabs go on hugepage-backed memory (TLB relief); the scipy
        # path allocates its own outputs, so plain buffers suffice there.
        return _native.slab_empty(shape) if use_native else np.empty(shape)

    jump = (1.0 - damping) * restarts
    out = np.empty((n, k), dtype=np.float64)
    iterations = np.full(k, max_iterations, dtype=np.int64)
    converged = np.zeros(k, dtype=bool)
    residuals: list[list[float]] = [[] for _ in range(k)]

    active = np.arange(k)  # original column ids still in the block
    live = np.ones(k, dtype=bool)  # not yet converged
    block = alloc((n, k))
    if scores is None:
        block.fill(1.0 / n if n else 0.0)
    else:
        block[:] = scores
    block_jump = jump
    # Restart mass sits on a few base-set rows; the kernel takes the jump
    # term row-compacted so the mostly-zero dense slab is never streamed.
    jump_rows = np.flatnonzero(restarts.any(axis=1)).astype(np.int32)
    packed_jump = np.ascontiguousarray(block_jump[jump_rows])
    # Kernel result buffers, ping-ponged with `block`: a fresh multi-MB
    # allocation per step costs more in page faults than the step itself.
    spare: np.ndarray | None = None
    resid_buf: np.ndarray | None = None
    # Per-iteration (active ids, live mask, residuals); the per-column trace
    # lists are filled from this after the loop so the hot path stays
    # vectorized instead of appending k python floats per iteration.
    trace: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for iteration in range(1, max_iterations + 1):
        if active.size == 0 or not live[active].any():
            break
        if spare is None or spare.shape != block.shape:
            spare = alloc(block.shape)
            resid_buf = np.empty(block.shape[1])
        step = _native.blocked_step(
            matrix, block, jump_rows, packed_jump, damping,
            out=spare, resid=resid_buf,
        )
        if step is not None:
            new_block, fast_residuals = step
            spare = block  # recycled as the next step's output buffer
        else:  # no compiled kernel: same score ops through scipy
            new_block = matrix @ block
            new_block *= damping
            new_block += block_jump
            delta = new_block - block
            np.abs(delta, out=delta)
            fast_residuals = delta.sum(axis=0)
        live_local = live[active]
        res = fast_residuals.copy()  # resid_buf is recycled next step
        near = np.abs(res - tolerance) <= _EXACT_CHECK_BAND * (res + tolerance)
        for local in np.flatnonzero(near & live_local):
            res[local] = np.abs(new_block[:, local] - block[:, local]).sum()
        trace.append((active, live_local, res))
        newly = np.flatnonzero(live_local & (res < tolerance))
        if newly.size:
            cols = active[newly]
            out[:, cols] = new_block[:, newly]
            live[cols] = False
            iterations[cols] = iteration
            converged[cols] = True
        block = new_block
        if compact:
            dead = ~live[active]
            if dead.any() and 4 * int(dead.sum()) >= active.size:
                keep = ~dead
                active = active[keep]
                narrowed = alloc((n, int(active.size)))
                narrowed[:] = block[:, keep]
                block = narrowed
                block_jump = np.ascontiguousarray(block_jump[:, keep])
                packed_jump = np.ascontiguousarray(block_jump[jump_rows])
                spare = None  # width changed; reallocated next step

    for local, col in enumerate(active):
        if not converged[col]:
            out[:, col] = block[:, local]
    for active_ids, live_mask, res in trace:
        for local in np.flatnonzero(live_mask):
            residuals[active_ids[local]].append(float(res[local]))
    if k != requested:
        return (
            out[:, :requested],
            iterations[:requested],
            converged[:requested],
            residuals[:requested],
        )
    return out, iterations, converged, residuals


def batched_power_iteration(
    matrix: sparse.spmatrix,
    restarts: np.ndarray,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    init: np.ndarray | None = None,
    compact: bool = True,
    workers: int | None = None,
    pool: str = "process",
    block_width: int = DEFAULT_BLOCK_WIDTH,
) -> BatchedPowerIterationResult:
    """Iterate ``R <- d A R + (1 - d) S`` with per-column convergence.

    ``restarts`` is ``(n, k)`` — one restart distribution per column.
    ``init`` seeds every column (``(n,)`` broadcast, or ``(n, k)`` per
    column); the default is the serial engine's uniform ``1/n`` start.
    ``compact`` drops converged columns from the active block (they coast
    otherwise).  Columns are processed in chunks of ``block_width`` so the
    matrix and the working slab stay cache-resident; ``workers > 1``
    distributes those chunks over a ``pool`` of processes (default; falls
    back in-process if the pool cannot start) or threads (``pool="thread"``).

    Each column's scores and iteration count are identical to a serial
    :func:`~repro.ranking.pagerank.power_iteration` run with the same
    restart column and init; the residual trace matches to ``O(n·eps)``
    relative (see :data:`_EXACT_CHECK_BAND`).
    """
    restarts = np.asarray(restarts, dtype=np.float64)
    if restarts.ndim != 2:
        raise ValueError(f"restarts must be (n, k), got shape {restarts.shape}")
    n, k = restarts.shape
    if matrix.shape[0] != n:
        raise ValueError(
            f"matrix has {matrix.shape[0]} rows, restart block has {n}"
        )
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if pool not in ("process", "thread"):
        raise ValueError(f"pool must be 'process' or 'thread', got {pool!r}")
    matrix = matrix.tocsr()
    if _native.available():
        # The CSR streams are re-read every iteration of every chunk; one
        # upfront copy onto hugepage-backed arrays cuts TLB pressure for
        # the whole run (a few ms against seconds of iteration).
        matrix = _native.hugepage_csr(matrix)

    if init is None:
        scores = None  # each chunk fills its own uniform 1/n slab
    else:
        init = np.asarray(init, dtype=np.float64)
        if init.ndim == 1:
            if init.shape != (n,):
                raise ValueError(f"init has shape {init.shape}, expected ({n},)")
            scores = np.repeat(init[:, None], k, axis=1)
        elif init.shape == (n, k):
            scores = init.copy()
        else:
            raise ValueError(f"init has shape {init.shape}, expected ({n},) or ({n}, {k})")

    if k == 0:
        return BatchedPowerIterationResult(
            scores=np.empty((n, 0)),
            iterations=np.zeros(0, dtype=np.int64),
            converged=np.zeros(0, dtype=bool),
            residuals=[],
        )

    chunks = _column_chunks(k, workers, block_width)
    if len(chunks) == 1:
        out, iterations, converged, residuals = _iterate_block(
            matrix, restarts, scores, damping, tolerance, max_iterations, compact
        )
        return BatchedPowerIterationResult(out, iterations, converged, residuals)

    parts = _run_chunks(
        matrix, restarts, scores, damping, tolerance, max_iterations, compact,
        chunks, pool, workers,
    )
    iterations = np.empty(k, dtype=np.int64)
    converged = np.empty(k, dtype=bool)
    residuals: list[list[float]] = [[] for _ in range(k)]
    score_parts: list[tuple[int, np.ndarray]] = []
    for columns, (part_scores, part_iters, part_conv, part_res) in zip(chunks, parts):
        iterations[columns] = part_iters
        converged[columns] = part_conv
        for local, col in enumerate(columns):
            residuals[col] = part_res[local]
        score_parts.append((int(columns[0]), part_scores))
    # Chunk scores stay in their slabs; the (n, k) matrix assembles lazily.
    return BatchedPowerIterationResult(
        None, iterations, converged, residuals, parts=score_parts, num_rows=n
    )


def _column_chunks(
    k: int, workers: int | None, block_width: int = DEFAULT_BLOCK_WIDTH
) -> list[np.ndarray]:
    """Split ``k`` column indices into cache-sized contiguous chunks.

    Every chunk except possibly the last is exactly ``block_width`` wide —
    full-width chunks hit the compiled kernel's width-specialized fast path,
    so the remainder is concentrated in one trailing chunk rather than
    spread across several slightly-narrow ones (``np.array_split`` balance).
    With ``workers > 1`` the width also shrinks so every worker gets at
    least one chunk.
    """
    if k <= 1:
        return [np.arange(k)]
    width = max(1, min(block_width, k))
    if workers and workers > 1:
        width = min(width, -(-k // min(workers, k)))
    return [np.arange(i, min(i + width, k)) for i in range(0, k, width)]


def _run_chunks(
    matrix: sparse.csr_matrix,
    restarts: np.ndarray,
    scores: np.ndarray,
    damping: float,
    tolerance: float,
    max_iterations: int,
    compact: bool,
    chunks: list[np.ndarray],
    pool: str,
    workers: int | None,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, list[list[float]]]]:
    """Run each column chunk through its own blocked iteration.

    Column independence makes any chunking exact.  Without workers the
    chunks run sequentially in-process (still blocked — this is the main
    single-process fast path); with workers they are distributed over a
    pool.  A pool that cannot start (restricted environments forbid
    fork/spawn) degrades to the in-process loop rather than failing.
    """
    tasks = [
        (
            matrix,
            np.ascontiguousarray(restarts[:, columns]),
            None if scores is None else np.ascontiguousarray(scores[:, columns]),
            damping,
            tolerance,
            max_iterations,
            compact,
        )
        for columns in chunks
    ]
    if not workers or workers <= 1:
        return [_iterate_block(*task) for task in tasks]
    executor_type = ProcessPoolExecutor if pool == "process" else ThreadPoolExecutor
    try:
        with executor_type(max_workers=min(workers, len(tasks))) as executor:
            futures = [executor.submit(_iterate_block, *task) for task in tasks]
            return [future.result() for future in futures]
    except (OSError, PermissionError, RuntimeError):
        return [_iterate_block(*task) for task in tasks]


# -- graph-level batched rankers --------------------------------------------


def batched_objectrank(
    graph: AuthorityTransferDataGraph,
    base_sets: Sequence[Sequence[str]],
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    compact: bool = True,
    workers: int | None = None,
    pool: str = "process",
    init: np.ndarray | None = None,
) -> list[RankedResult]:
    """One :func:`~repro.ranking.objectrank.objectrank` per base set, blocked.

    All base sets share one CSR matrix and one blocked fixpoint; each
    returned :class:`RankedResult` is identical to the serial call for its
    base set (scores, iteration count, residuals, uniform base weights).
    ``init`` seeds the iteration (``(n,)`` broadcast or ``(n, k)`` per base
    set) — the Section 6.2 warm start for incremental re-convergence.
    """
    if not base_sets:
        return []
    n = graph.num_nodes
    # Built transposed (one contiguous row per base set) so each write is a
    # contiguous fill; the engine's per-chunk column slices then read
    # contiguous rows of this F-ordered view.
    transposed = np.empty((len(base_sets), n), dtype=np.float64)
    for j, base_nodes in enumerate(base_sets):
        if not base_nodes:
            raise EmptyBaseSetError(())
        transposed[j] = restart_distribution(n, graph.indices_of(list(base_nodes)))
    outcome = batched_power_iteration(
        graph.matrix(), transposed.T, damping, tolerance, max_iterations,
        init=init, compact=compact, workers=workers, pool=pool,
    )
    results = []
    for j, base_nodes in enumerate(base_sets):
        column = outcome.column(j)
        uniform = 1.0 / len(base_nodes)  # repro-lint: ignore[RL015] every base set was rejected as EmptyBaseSetError in the build loop above
        results.append(
            RankedResult(
                node_ids=graph.node_ids,
                scores=column.scores,
                iterations=column.iterations,
                converged=column.converged,
                base_weights={node_id: uniform for node_id in base_nodes},
                residuals=column.residuals,
            )
        )
    return results


def batched_keyword_vectors(
    graph: AuthorityTransferDataGraph,
    index,
    keywords: Sequence[str],
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    workers: int | None = None,
    pool: str = "process",
    init: dict[str, np.ndarray] | None = None,
) -> dict[str, RankedResult]:
    """Per-keyword ObjectRank for every keyword with a non-empty base set.

    The [BHP04]/[Hav02] precomputation core: one blocked run over the whole
    keyword family instead of ``|keywords|`` serial fixpoints.  Keywords that
    match no document are skipped (they have no authority vector).  ``init``
    optionally maps keywords to ``(n,)`` warm-start vectors (incremental
    refresh seeds dirty columns with their previous fixpoints); keywords not
    in the map start at the default uniform ``1/n``, exactly as with no
    ``init`` at all.
    """
    matched = [
        (keyword, index.documents_with_term(keyword))
        for keyword in dict.fromkeys(keywords)
    ]
    matched = [(keyword, base) for keyword, base in matched if base]
    block_init: np.ndarray | None = None
    if init is not None and matched:
        n = graph.num_nodes
        # Explicit uniform fill for unmapped columns is bit-identical to the
        # engine's own default start (`block[:] = scores` writes the same
        # floats `block.fill(1/n)` would).
        block_init = np.full((n, len(matched)), 1.0 / n if n else 0.0)
        for j, (keyword, _) in enumerate(matched):
            seed = init.get(keyword)
            if seed is not None:
                block_init[:, j] = seed
    results = batched_objectrank(
        graph,
        [base for _, base in matched],
        damping,
        tolerance,
        max_iterations,
        workers=workers,
        pool=pool,
        init=block_init,
    )
    return {keyword: result for (keyword, _), result in zip(matched, results)}


def batched_objectrank2(
    graph: AuthorityTransferDataGraph,
    scorer: Scorer,
    query_vectors: Sequence["QueryVector"],
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    init: np.ndarray | None = None,
    workers: int | None = None,
    pool: str = "process",
) -> list[RankedResult]:
    """One :func:`~repro.ranking.objectrank2.objectrank2` per query, blocked.

    The repeated-evaluation workhorse: training and benchmarking loops that
    evaluate many query vectors against one rate setting (one matrix) get all
    their IR-weighted fixpoints from a single blocked run.  ``init`` is the
    shared warm-start vector (e.g. global ObjectRank scores, Section 6.2).
    """
    if not query_vectors:
        return []
    bases = [weighted_base_set(scorer, vector) for vector in query_vectors]
    n = graph.num_nodes
    restarts = np.zeros((n, len(bases)), dtype=np.float64)
    for j, base in enumerate(bases):
        for node_id, weight in base.items():
            restarts[graph.index_of(node_id), j] = weight
    outcome = batched_power_iteration(
        graph.matrix(), restarts, damping, tolerance, max_iterations,
        init=init, workers=workers, pool=pool,
    )
    results = []
    for j, base in enumerate(bases):
        column = outcome.column(j)
        results.append(
            RankedResult(
                node_ids=graph.node_ids,
                scores=column.scores,
                iterations=column.iterations,
                converged=column.converged,
                base_weights=base,
                residuals=column.residuals,
            )
        )
    return results
