"""Result types and convergence accounting for iterative rankings.

The paper's performance study reports the *number of iterations* ObjectRank2
needs for initial vs. reformulated queries (Figures 14b-17b) and for the
explaining fixpoint (Table 3), so every iterative routine in this package
returns its iteration count and residual trace alongside the scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class PowerIterationResult:
    """Outcome of one power-iteration run.

    ``residuals`` holds the L1 change of the score vector after each
    iteration, so convergence curves can be plotted or asserted on.
    """

    scores: np.ndarray
    iterations: int
    converged: bool
    residuals: list[float] = field(default_factory=list)

    @property
    def residual(self) -> float:
        """Final residual (L1 change of the last iteration)."""
        return self.residuals[-1] if self.residuals else 0.0


@dataclass
class RankedResult:
    """A ranking over the nodes of an authority transfer data graph."""

    node_ids: list[str]
    scores: np.ndarray
    iterations: int
    converged: bool
    base_weights: dict[str, float] = field(default_factory=dict)
    residuals: list[float] = field(default_factory=list)
    #: Fraction of the query's positive term weight the ranking actually
    #: used.  1.0 for exact runs; below 1.0 when a precomputed cache had no
    #: vector for some query terms (see ``PrecomputedRanker.rank``).
    coverage: float = 1.0

    def score_of(self, node_id: str) -> float:
        # O(n) lookup is fine for tests/examples; hot paths use the array.
        return float(self.scores[self.node_ids.index(node_id)])

    def top_k(self, k: int) -> list[tuple[str, float]]:
        """The ``k`` highest-scored nodes as ``(node_id, score)`` pairs.

        Ties are broken by node order (deterministic for a fixed graph).
        """
        k = min(k, len(self.node_ids))
        if k <= 0:
            return []
        # argsort on (-score, index) via stable sort of negated scores.
        order = np.argsort(-self.scores, kind="stable")[:k]
        return [(self.node_ids[i], float(self.scores[i])) for i in order]

    def ranking(self) -> list[str]:
        """All node ids in descending score order."""
        order = np.argsort(-self.scores, kind="stable")
        return [self.node_ids[i] for i in order]
