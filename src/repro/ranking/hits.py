"""HITS [Kle99]: hub/authority scores, as a link-analysis baseline.

The related-work section contrasts ObjectRank with Kleinberg's HITS, which
computes two mutually dependent values per node.  We include it so the
benchmark suite can sanity-check that authority-flow ranking with typed rates
behaves differently from (and for keyword queries, better than) untyped
hub/authority analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.ranking.pagerank import DEFAULT_MAX_ITERATIONS, DEFAULT_TOLERANCE


@dataclass
class HitsResult:
    """Hub and authority vectors plus convergence accounting."""

    hubs: np.ndarray
    authorities: np.ndarray
    iterations: int
    converged: bool


def hits(
    adjacency: sparse.spmatrix,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> HitsResult:
    """Run HITS on an adjacency matrix with ``adjacency[i, j] = 1`` for i->j.

    Both vectors are L1-normalized each round; convergence is measured on the
    authority vector.
    """
    n = adjacency.shape[0]
    adjacency = adjacency.tocsr()
    transpose = adjacency.T.tocsr()
    hubs = np.full(n, 1.0 / n)
    authorities = np.full(n, 1.0 / n)

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_authorities = transpose @ hubs
        total = new_authorities.sum()
        if total > 0:
            new_authorities /= total
        new_hubs = adjacency @ new_authorities
        total = new_hubs.sum()
        if total > 0:
            new_hubs /= total
        residual = float(np.abs(new_authorities - authorities).sum())
        hubs, authorities = new_hubs, new_authorities
        if residual < tolerance:
            converged = True
            break
    return HitsResult(hubs, authorities, iterations, converged)
